"""Command-line interface: run experiments and print paper-style tables.

Installed as ``afraid-sim``::

    afraid-sim workloads                     # list the trace catalog
    afraid-sim run cello-usr --policy afraid --duration 30
    afraid-sim compare ATT --duration 20     # RAID 0 / AFRAID / RAID 5
    afraid-sim sweep --jobs 4                # Figure 3/4 grid, in parallel
    afraid-sim availability --fraction 0.05  # Section 3 calculator
    afraid-sim trace snake --policy afraid --out trace.json  # Perfetto trace
    afraid-sim report snake --policy afraid  # per-class latency percentiles
    afraid-sim exposure cello-usr --slo "parity_lag_bytes < 5e6"  # live telemetry
    afraid-sim profile cello-usr --policy raid5 --top 15  # hot-path table
    afraid-sim nemesis --duration 60 --report nemesis-run  # SLO-gated chaos
    afraid-sim serve --port 8642 --jobs 4   # simulation-as-a-service daemon
    afraid-sim submit hplajw --url http://127.0.0.1:8642 --wait  # client
    afraid-sim status --url http://127.0.0.1:8642  # job table
"""

from __future__ import annotations

import argparse
import sys

from repro.availability import (
    CONSERVATIVE_SUPPORT,
    TABLE_1,
    afraid_mttdl,
    loss_probability,
    combine_mttdl,
    raid5_mttdl_catastrophic,
)
from repro.harness import DEFAULT_CACHE_DIR, format_quantity, format_table, run_experiment
from repro.metrics import PerfCounters
from repro.obs import (
    ExposureMonitor,
    HistogramSet,
    MetricsRegistry,
    SloEngine,
    SloRule,
    start_exposure_poller,
)
from repro.policy import (
    AlwaysRaid5Policy,
    BaselineAfraidPolicy,
    MttdlTargetPolicy,
    NeverScrubPolicy,
    ParityPolicy,
)
from repro.traces import CATALOG, workload_names


def _make_policy(name: str, mttdl_target: float | None) -> ParityPolicy:
    if name == "afraid":
        return BaselineAfraidPolicy()
    if name == "raid5":
        return AlwaysRaid5Policy()
    if name == "raid0":
        return NeverScrubPolicy()
    if name == "mttdl":
        if mttdl_target is None:
            raise SystemExit("--policy mttdl requires --mttdl-target HOURS")
        return MttdlTargetPolicy(mttdl_target)
    raise SystemExit(f"unknown policy {name!r}")


#: Redundancy schemes the CLI can build (see repro.layout.organization).
ORGANIZATION_CHOICES = ("raid5", "raid5d", "raid1", "raid10", "raid15")

#: Disk counts used when --ndisks is omitted: the paper's 5 for the
#: RAID 5 family, each mirrored scheme's smallest sensible array.
_ORGANIZATION_DEFAULT_NDISKS = {
    "raid5": 5,
    "raid5d": 5,
    "raid1": 2,
    "raid10": 6,
    "raid15": 6,
}


def _resolve_organization(args: argparse.Namespace) -> tuple[str, int]:
    """(organization, ndisks) from the common CLI knobs, validated early."""
    from repro.layout import get_organization

    organization = getattr(args, "organization", "raid5") or "raid5"
    ndisks = getattr(args, "ndisks", None)
    if ndisks is None:
        ndisks = _ORGANIZATION_DEFAULT_NDISKS[organization]
    try:
        get_organization(organization).validate(ndisks)
    except ValueError as exc:
        raise SystemExit(f"--ndisks: {exc}") from None
    return organization, ndisks


def _result_rows(result) -> list[list[str]]:
    return [
        ["requests", str(result.nrequests)],
        ["mean I/O time", f"{result.mean_io_time_ms:.2f} ms"],
        ["95th percentile", f"{result.io_time.p95 * 1e3:.2f} ms"],
        ["unprotected time", f"{result.unprotected_fraction:.1%}"],
        ["mean parity lag", f"{result.mean_parity_lag_bytes / 1024:.1f} KB"],
        ["stripes scrubbed", str(result.stripes_scrubbed)],
        ["disk MTTDL", format_quantity(result.mttdl_disk_h, " h")],
        ["overall MTTDL", format_quantity(result.mttdl_overall_h, " h")],
        ["MDLR (unprotected)", f"{result.mdlr_unprotected_bytes_per_h:.3f} B/h"],
        ["MDLR (overall)", format_quantity(result.mdlr_overall_bytes_per_h, " B/h")],
    ]


def cmd_workloads(_args: argparse.Namespace) -> int:
    rows = [
        [name, f"{CATALOG[name].write_fraction:.0%}", CATALOG[name].description]
        for name in workload_names()
    ]
    print(format_table(["workload", "writes", "description"], rows))
    return 0


def _resolve_workload(name: str, duration_s: float, seed: int):
    """A catalog name passes through; anything else synthesises a generic
    bursty trace under that name (with a note), so ad-hoc labels work."""
    if name in CATALOG:
        return name
    from repro.traces import make_trace

    print(
        f"note: {name!r} is not in the workload catalog; "
        "synthesising a generic bursty workload under that name",
        file=sys.stderr,
    )
    return make_trace(name, duration_s=duration_s, seed=seed, allow_generic=True)


def _parse_slo_rules(texts) -> list[SloRule]:
    """``--slo`` strings to rules; a bad rule is a usage error, not a crash."""
    try:
        return [SloRule.parse(text) for text in texts or ()]
    except ValueError as exc:
        raise SystemExit(f"--slo: {exc}") from None


def _run_with_slo(
    workload,
    policy: ParityPolicy,
    duration_s: float,
    seed: int,
    rules: list[SloRule],
    window_s: float = 5.0,
    period_s: float = 0.050,
    counters: PerfCounters | None = None,
    **experiment_kwargs,
):
    """One experiment with live exposure telemetry and SLO evaluation.

    Returns (result, registry, engine, snapshotter) — the registry holds
    the final metric values, the engine the breach/recovery history.
    """
    from repro.obs import RegistrySnapshotter

    registry = MetricsRegistry()
    monitor = ExposureMonitor(window_s=window_s, params=TABLE_1)
    engine = SloEngine(rules)
    snapshotter = RegistrySnapshotter(registry)

    def instrument(sim, array) -> None:
        start_exposure_poller(
            sim,
            monitor,
            period_s=period_s,
            engine=engine,
            snapshotter=snapshotter,
            until=duration_s,
        )

    result = run_experiment(
        workload,
        policy,
        duration_s=duration_s,
        seed=seed,
        counters=counters,
        registry=registry,
        exposure=monitor,
        on_array=instrument,
        **experiment_kwargs,
    )
    engine.finish(result.horizon_s)
    return result, registry, engine, snapshotter


def _slo_report(engine: SloEngine) -> str:
    """The SLO summary table plus the breach/recovery timeline."""
    lines = [format_table(SloEngine.table_header(), engine.summary_rows(), title="SLOs")]
    if engine.events:
        lines.append("")
        for event in engine.events:
            lines.append(
                f"  {event.time_s:10.3f}s  {event.kind.upper():9}  "
                f"{event.rule.describe()}  (value {format_quantity(event.value)})"
            )
    return "\n".join(lines)


def cmd_run(args: argparse.Namespace) -> int:
    policy = _make_policy(args.policy, args.mttdl_target)
    organization, ndisks = _resolve_organization(args)
    counters = PerfCounters() if args.stats else None
    rules = _parse_slo_rules(getattr(args, "slo", None))
    engine = None
    if rules:
        result, _registry, engine, _snaps = _run_with_slo(
            args.workload, policy, args.duration, args.seed, rules, counters=counters,
            organization=organization, ndisks=ndisks,
        )
    else:
        result = run_experiment(
            args.workload, policy, duration_s=args.duration, seed=args.seed,
            counters=counters, organization=organization, ndisks=ndisks,
        )
    if args.json:
        import json

        payload = result.to_dict()
        if counters is not None:
            payload["perf"] = counters.snapshot()
        if engine is not None:
            payload["slo"] = {
                "rules": [rule.describe() for rule in rules],
                "breached": engine.any_breached_ever,
                "events": [
                    {"time_s": e.time_s, "kind": e.kind, "rule": e.rule.describe()}
                    for e in engine.events
                ],
            }
        print(json.dumps(payload, indent=2))
        return 0
    title = f"{args.workload} under {policy.describe()} ({args.duration:g}s, seed {args.seed})"
    if organization != "raid5":
        title += f" [{organization}, {ndisks} disks]"
    print(format_table(["metric", "value"], _result_rows(result), title=title))
    if engine is not None:
        print()
        print(_slo_report(engine))
    if counters is not None:
        print()
        print(format_table(["counter", "value"], counters.rows(), title="perf counters"))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    rows = []
    results = {}
    organization, ndisks = _resolve_organization(args)
    rules = _parse_slo_rules(getattr(args, "slo", None))
    engines = {}
    for name in ("raid0", "afraid", "raid5"):
        if rules:
            results[name], _reg, engines[name], _snaps = _run_with_slo(
                args.workload, _make_policy(name, None), args.duration, args.seed, rules,
                organization=organization, ndisks=ndisks,
            )
        else:
            results[name] = run_experiment(
                args.workload, _make_policy(name, None), duration_s=args.duration,
                seed=args.seed, organization=organization, ndisks=ndisks,
            )
    raid5_mean = results["raid5"].io_time.mean
    header = ["model", "mean I/O (ms)", "vs RAID5", "unprot time", "disk MTTDL (h)"]
    if rules:
        header.append("SLO breaches")
    for name in ("raid0", "afraid", "raid5"):
        result = results[name]
        row = [
            name,
            f"{result.mean_io_time_ms:.2f}",
            f"{raid5_mean / result.io_time.mean:.2f}x",
            f"{result.unprotected_fraction:.1%}",
            format_quantity(result.mttdl_disk_h),
        ]
        if rules:
            row.append(str(sum(engines[name].breach_count(rule) for rule in rules)))
        rows.append(row)
    print(
        format_table(
            header,
            rows,
            title=f"{args.workload}, {args.duration:g}s, seed {args.seed}",
        )
    )
    if rules:
        for name in ("raid0", "afraid", "raid5"):
            print(f"\n{name}:")
            print(_slo_report(engines[name]))
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.traces import analyze, make_trace, read_trace_csv

    if args.workload.endswith(".csv"):
        trace = read_trace_csv(args.workload)
    else:
        trace = make_trace(args.workload, duration_s=args.duration, seed=args.seed)
    report = analyze(trace, gap_threshold_s=args.gap)
    print(format_table(["property", "value"], report.rows(), title=f"trace: {report.name}"))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.perf import dump_pstats, format_hot_path, profile_call

    policy = _make_policy(args.policy, args.mttdl_target)
    result, profile = profile_call(
        run_experiment, args.workload, policy, duration_s=args.duration, seed=args.seed
    )
    print(
        f"profile: {args.workload} under {policy.describe()} "
        f"({args.duration:g}s, seed {args.seed}, {result.nrequests} requests)"
    )
    print(format_hot_path(profile, top=args.top, sort=args.sort))
    if args.dump:
        dump_pstats(profile, args.dump)
        print(f"wrote pstats dump to {args.dump}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.harness import (
        DEFAULT_MTTDL_TARGETS,
        ResultCache,
        SweepInterrupted,
        ladder_specs,
        run_cells,
        tradeoff_curve,
    )

    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")
    workloads = args.workloads or workload_names()
    for workload in workloads:
        if workload not in CATALOG:
            raise SystemExit(f"unknown workload {workload!r}; choose from {workload_names()}")
    targets = args.targets if args.targets else list(DEFAULT_MTTDL_TARGETS)
    organization, ndisks = _resolve_organization(args)
    specs = ladder_specs(
        workloads,
        targets,
        duration_s=args.duration,
        seed=args.seed,
        organization=organization,
        ndisks=ndisks,
    )
    labels = []
    for spec in specs:
        label = spec.key[1]  # policy label, organization-suffixed if non-default
        if label not in labels:
            labels.append(label)
    cache_dir = None if args.no_cache else args.cache_dir
    counters = PerfCounters() if args.stats else None
    try:
        outcome = run_cells(
            specs,
            jobs=args.jobs,
            cache_dir=cache_dir,
            counters=counters,
            checkpoint_dir=args.checkpoint_dir,
        )
    except SweepInterrupted as interrupted:
        print(
            f"\ninterrupted: {interrupted.completed}/{interrupted.total} cells "
            "completed (finished cells are cached; rerun to resume)",
            file=sys.stderr,
        )
        return 130
    if cache_dir is not None and args.cache_max_bytes is not None:
        removed, freed = ResultCache(cache_dir).prune(args.cache_max_bytes)
        if removed and not args.json:
            print(
                f"cache pruned: {removed} entries, {freed / 1024:.0f} KB freed",
                file=sys.stderr,
            )
    baseline_label = "raid5" if organization == "raid5" else f"raid5@{organization}"
    points = tradeoff_curve(outcome.results, workloads, labels, baseline_label=baseline_label)

    if args.json:
        import json

        payload = {
            "workloads": list(workloads),
            "cells": {f"{w}/{p}": r.to_dict() for (w, p), r in sorted(outcome.results.items())},
            "tradeoff": [
                {
                    "policy": point.label,
                    "relative_performance": point.relative_performance,
                    "relative_availability": point.relative_availability,
                }
                for point in points
            ],
            "simulated": outcome.simulated,
            "cached": outcome.cached,
            "wall_s": outcome.wall_s,
        }
        if counters is not None:
            payload["perf"] = counters.snapshot()
        print(json.dumps(payload, indent=2))
        return 0

    rows = [
        [
            point.label,
            f"{point.relative_performance:.2f}",
            f"{point.relative_availability:.2f}",
        ]
        for point in points
    ]
    print(
        format_table(
            ["policy", "rel. perf", "rel. avail"],
            rows,
            title=(
                f"{len(specs)} cells over {len(workloads)} workloads "
                f"({args.duration:g}s, seed {args.seed}); both axes relative to RAID 5"
            ),
        )
    )
    print(
        f"\n{outcome.simulated} simulated, {outcome.cached} from cache, "
        f"{outcome.wall_s:.1f}s wall-clock with --jobs {args.jobs}"
    )
    if counters is not None:
        print()
        print(format_table(["counter", "value"], counters.rows(), title="perf counters"))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs import PeriodicSampler, Tracer, attach_array_probes

    policy = _make_policy(args.policy, args.mttdl_target)
    tracer = Tracer(max_records=args.max_records)
    workload = _resolve_workload(args.workload, args.duration, args.seed)

    def instrument(sim, array) -> None:
        if args.kernel:
            tracer.attach_kernel(sim)
        sampler = PeriodicSampler(sim, period_s=args.sample_period, tracer=tracer)
        attach_array_probes(sampler, array)
        sampler.start()

    result = run_experiment(
        workload,
        policy,
        duration_s=args.duration,
        seed=args.seed,
        tracer=tracer,
        on_array=instrument,
    )
    tracer.write_chrome(args.out)
    if args.jsonl:
        tracer.write_jsonl(args.jsonl)
    if args.hist_out:
        with open(args.hist_out, "w") as handle:
            json.dump(
                {
                    "workload": result.workload,
                    "policy": result.policy,
                    "histograms": result.latency_hists,
                },
                handle,
                indent=2,
            )

    hists = result.histogram_set()
    assert hists is not None  # run_experiment always collects
    title = f"{result.workload} under {result.policy} ({args.duration:g}s, seed {args.seed})"
    print(format_table(HistogramSet.table_header(), hists.rows(), title=title))
    dropped = f" ({tracer.dropped} dropped)" if tracer.dropped else ""
    print(f"\n{len(tracer)} trace records{dropped} -> {args.out}")
    print("open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def _hists_from_event_log(text: str, path: str, expected: str) -> HistogramSet:
    """Cell-latency histograms from a service NDJSON event log.

    Accepts the stream ``GET /jobs/<id>/events`` (or ``GET /timeline``
    filtered to job events) produces: one JSON object per line with an
    ``event`` key.  ``cell_completed`` events contribute their
    ``latency_s`` under their cell label.
    """
    import json

    hists = HistogramSet()
    hists.hists.clear()  # only the classes the log actually names
    events = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            raise SystemExit(
                f"--from: {path}: line {lineno} is not valid JSON; {expected}"
            ) from None
        if not isinstance(entry, dict) or ("event" not in entry and "kind" not in entry):
            raise SystemExit(
                f"--from: {path}: line {lineno} is not a service event "
                f"(no 'event' key); {expected}"
            )
        events += 1
        if entry.get("event") == "cell_completed" and "latency_s" in entry:
            hists.record(str(entry.get("cell", "cell")), float(entry["latency_s"]))
    if not events:
        raise SystemExit(f"--from: {path}: no events in file; {expected}")
    return hists


def cmd_report(args: argparse.Namespace) -> int:
    if args.from_file is not None:
        import json

        expected = (
            "accepted formats: histogram JSON with keys min_latency_s, "
            "buckets_per_decade, classes as written by `afraid-sim trace "
            "--hist-out FILE`, or a service NDJSON event log as streamed by "
            "`GET /jobs/<id>/events`"
        )
        try:
            with open(args.from_file) as handle:
                text = handle.read()
        except FileNotFoundError:
            raise SystemExit(f"--from: {args.from_file}: no such file; {expected}") from None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            payload = None
        if payload is None or (isinstance(payload, dict) and "event" in payload):
            # Not a single JSON document (or a single event line): treat
            # it as an NDJSON service event log.
            hists = _hists_from_event_log(text, args.from_file, expected)
            title = f"cell latencies from service event log {args.from_file}"
        else:
            try:
                hists = HistogramSet.from_payload(payload.get("histograms", payload))
            except (KeyError, TypeError, AttributeError):
                raise SystemExit(
                    f"--from: {args.from_file}: JSON has the wrong shape; {expected}"
                ) from None
            title = f"latency percentiles from {args.from_file}"
    else:
        if args.workload is None:
            raise SystemExit("report needs a workload name or --from FILE")
        policy = _make_policy(args.policy, args.mttdl_target)
        workload = _resolve_workload(args.workload, args.duration, args.seed)
        result = run_experiment(workload, policy, duration_s=args.duration, seed=args.seed)
        hists = result.histogram_set()
        assert hists is not None
        title = f"{result.workload} under {result.policy} ({args.duration:g}s, seed {args.seed})"
    rows = hists.rows()
    if not rows:
        print("no latencies recorded")
        return 0
    print(format_table(HistogramSet.table_header(), rows, title=title))
    return 0


def cmd_availability(args: argparse.Namespace) -> int:
    from repro.availability import organization_mttdl
    from repro.layout import get_organization

    params = TABLE_1
    organization = getattr(args, "organization", "raid5") or "raid5"
    org = get_organization(organization)
    ndisks = (
        args.ndisks if args.ndisks is not None else _ORGANIZATION_DEFAULT_NDISKS[organization]
    )
    try:
        org.validate(ndisks)
    except ValueError as exc:
        raise SystemExit(f"--ndisks: {exc}") from None
    # Zero exposure gives the organization's catastrophic-only MTTDL
    # (for RAID 5 that is exactly eq. (1)).
    sync = organization_mttdl(organization, ndisks, params.mttf_disk_h, params.mttr_h, 0.0)
    deferred = organization_mttdl(
        organization, ndisks, params.mttf_disk_h, params.mttr_h, args.fraction
    )
    overall = combine_mttdl(deferred, CONSERVATIVE_SUPPORT.mttdl_h)
    lifetime_h = args.years * 24 * 365.25
    p_loss = loss_probability(overall, lifetime_h)
    if args.format == "json":
        import json

        def jsonable(value):
            if isinstance(value, float) and value == float("inf"):
                return "inf"
            return value

        payload = {
            "ndisks": ndisks,
            "organization": organization,
            "unprotected_fraction": args.fraction,
            "years": args.years,
            # Historical key names: "raid5" = the catastrophic-only term,
            # "afraid" = with deferred-update exposure folded in.
            "raid5_mttdl_h": sync,
            "afraid_mttdl_h": deferred,
            "support_mttdl_h": CONSERVATIVE_SUPPORT.mttdl_h,
            "overall_mttdl_h": overall,
            "loss_probability": p_loss,
        }
        print(json.dumps({key: jsonable(value) for key, value in payload.items()}, indent=2))
        return 0
    rows = [
        [f"{org.display} disk MTTDL (catastrophic)", format_quantity(sync, " h")],
        [
            f"deferred {org.display} disk MTTDL @ {args.fraction:.1%} exposure",
            format_quantity(deferred, " h"),
        ],
        ["support MTTDL (Table 1)", format_quantity(CONSERVATIVE_SUPPORT.mttdl_h, " h")],
        ["overall MTTDL", format_quantity(overall, " h")],
        [
            f"P(loss in {args.years:g} years)",
            f"{loss_probability(overall, lifetime_h):.2%}",
        ],
    ]
    print(
        format_table(
            ["quantity", "value"],
            rows,
            title=f"{ndisks}-disk {org.display} array",
        )
    )
    return 0


def cmd_exposure(args: argparse.Namespace) -> int:
    """Live redundancy-exposure telemetry for one run.

    Runs the workload with a :class:`~repro.obs.MetricsRegistry` attached,
    a periodic poller refreshing the windowed achieved-MTTDL/MDLR
    estimators, and (optionally) SLO rules evaluated at every tick.  The
    final registry state can be exported in Prometheus text exposition
    format (``--prom``) and the full sampled time series as JSON lines
    (``--jsonl``).
    """
    policy = _make_policy(args.policy, args.mttdl_target)
    rules = _parse_slo_rules(args.slo)
    workload = _resolve_workload(args.workload, args.duration, args.seed)
    result, registry, engine, snapshotter = _run_with_slo(
        workload,
        policy,
        args.duration,
        args.seed,
        rules,
        window_s=args.window,
        period_s=args.period,
    )
    exposure_hists = result.exposure_histogram_set()

    analytic_mttdl = afraid_mttdl(
        result.ndisks, result.params.mttf_disk_h, result.params.mttr_h,
        result.unprotected_fraction,
    )

    if args.prom:
        from repro.obs import write_prometheus

        write_prometheus(registry, args.prom)
    if args.jsonl:
        snapshotter.write_jsonl(args.jsonl)

    if args.json:
        import json

        def jsonable(value):
            if isinstance(value, float) and value == float("inf"):
                return "inf"
            return value

        payload = {
            "result": result.to_dict(),
            "metrics": {k: jsonable(v) for k, v in registry.snapshot().items()},
            "slo": {
                "rules": [rule.describe() for rule in rules],
                "breached": engine.any_breached_ever,
                "events": [
                    {"time_s": e.time_s, "kind": e.kind, "rule": e.rule.describe()}
                    for e in engine.events
                ],
            },
            "snapshots": len(snapshotter.snaps),
        }
        print(json.dumps(payload, indent=2))
    else:
        title = (
            f"{result.workload} under {result.policy} "
            f"({args.duration:g}s, seed {args.seed}, window {args.window:g}s)"
        )
        metric_rows = [
            [name, format_quantity(value)]
            for name, value in sorted(registry.snapshot().items())
        ]
        print(format_table(["metric", "value"], metric_rows, title=title))
        print()
        print(
            format_table(
                ["quantity", "windowed", "whole-run analytic"],
                [
                    [
                        "achieved MTTDL",
                        format_quantity(registry.value("windowed_mttdl_h", float("inf")), " h"),
                        format_quantity(analytic_mttdl, " h"),
                    ],
                    [
                        "unprotected fraction",
                        f"{registry.value('windowed_unprotected_fraction', 0.0):.2%}",
                        f"{result.unprotected_fraction:.2%}",
                    ],
                ],
                title="windowed estimators vs eq. (2c)",
            )
        )
        if exposure_hists is not None and exposure_hists.rows():
            print()
            print(
                format_table(
                    HistogramSet.table_header(),
                    exposure_hists.rows(),
                    title="dirty-stripe dwell times",
                )
            )
        if rules:
            print()
            print(_slo_report(engine))
        if args.prom:
            print(f"\nPrometheus metrics -> {args.prom}")
        if args.jsonl:
            print(f"{len(snapshotter.snaps)} registry snapshots -> {args.jsonl}")
    if args.fail_on_breach and engine.any_breached_ever:
        return 1
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    import json

    from repro.harness.sharding import run_sharded_replay

    result, digest = run_sharded_replay(
        args.workload,
        policy=args.policy,
        duration_s=args.duration,
        seed=args.seed,
        shards=args.shards,
        workers=args.workers,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_max_bytes=args.checkpoint_max_bytes,
    )
    if args.report_json:
        report = {
            "workload": args.workload,
            "policy": args.policy,
            "duration_s": args.duration,
            "seed": args.seed,
            "shards": args.shards,
            "digest": digest,
            "events_simulated": result.events_simulated,
            "requests": len(result.outcome.requests),
        }
        with open(args.report_json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
    if args.digest:
        print(digest)
        return 0
    outcome = result.outcome
    io_times = outcome.io_times
    mean_ms = (sum(io_times) / len(io_times) * 1e3) if io_times else 0.0
    rows = [
        ["requests", str(len(outcome.requests))],
        ["shards", str(args.shards)],
        ["mean I/O time", f"{mean_ms:.2f} ms"],
        ["events simulated", str(result.events_simulated)],
        ["unprotected time", f"{result.parity_lag[0]:.1%}"],
        ["stripes scrubbed", str(result.stats.stripes_scrubbed)],
        ["horizon", f"{outcome.horizon_s:g} s"],
        ["digest", digest],
    ]
    title = (
        f"{args.workload} under {args.policy} "
        f"({args.duration:g}s, seed {args.seed}, {args.shards} shard(s))"
    )
    print(format_table(["metric", "value"], rows, title=title))
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """Run a deterministic fault campaign (or a multi-seed suite).

    The default spec exercises every fault type lightly; ``--campaign``
    loads a JSON :class:`~repro.faults.CampaignSpec` instead.  Reports
    are byte-stable for a given (spec, seed) — rerunning and diffing is
    the determinism check CI performs.
    """
    import json

    from repro.faults import CampaignSpec
    from repro.harness import run_campaign_suite, write_campaign_reports

    if args.campaign:
        try:
            spec = CampaignSpec.from_file(args.campaign)
        except FileNotFoundError:
            raise SystemExit(f"--campaign: {args.campaign}: no such file") from None
        except (ValueError, json.JSONDecodeError) as exc:
            raise SystemExit(f"--campaign: {args.campaign}: {exc}") from None
    else:
        organization, ndisks = _resolve_organization(args)
        spec = CampaignSpec(
            disk_failures=1.0, nvram_losses=0.5, latent_errors=1.0, crashes=0.5,
            organization=organization, ndisks=ndisks,
        )
    seeds = list(range(args.seeds)) if args.seeds else [args.seed]
    outcome = run_campaign_suite(spec, seeds)

    if args.out:
        paths = write_campaign_reports(outcome, args.out)
        if not args.json:
            print(f"{len(paths)} report file(s) -> {args.out}")
    if args.json:
        if len(outcome.reports) == 1:
            print(outcome.reports[0].to_json(), end="")
        else:
            print(outcome.to_json(), end="")
    else:
        rows = []
        for report in outcome.reports:
            summary = report.payload["summary"]
            rows.append(
                [
                    str(report.seed),
                    str(summary["segments"]),
                    str(summary["disk_failures"]),
                    format_quantity(float(summary["predicted_loss_bytes"]), " B"),
                    format_quantity(float(summary["actual_loss_bytes"]), " B"),
                    str(summary["latent_sectors_repaired"]),
                    str(summary["spares_used"]),
                    "ok" if report.ok else f"{len(report.violations)} VIOLATIONS",
                ]
            )
        print(
            format_table(
                [
                    "seed", "segments", "failures", "predicted loss",
                    "actual loss", "LSE repairs", "spares", "invariants",
                ],
                rows,
                title=(
                    f"fault campaign: {spec.workload} under {spec.policy} "
                    f"({spec.duration_s:g}s, {len(seeds)} seed(s))"
                ),
            )
        )
        if not outcome.ok:
            for report in outcome.reports:
                for violation in report.violations:
                    print(
                        f"seed {report.seed}: {violation['name']} "
                        f"at t={violation['time_s']:.3f}: "
                        f"{json.dumps(violation['detail'], sort_keys=True)}"
                    )
    if args.fail_on_invariant and not outcome.ok:
        return 1
    return 0


#: Gate rules a nemesis run uses when no ``--slo`` is given: both are
#: provably fault-caused (a member death, a §3.1 remark flood) and both
#: genuinely recover (spare rebuild, scrub drain), so a default run
#: exhibits the full breach → hold → recovery → resume cycle.
DEFAULT_NEMESIS_SLOS = ("degraded_disks < 1", "scrub_backlog_marks <= 64")


def cmd_nemesis(args: argparse.Namespace) -> int:
    """Continuous chaos against live traffic, SLO-gated, fully correlated.

    Draws faults from the campaign distributions while the workload runs,
    holds injections while an exposure SLO is breached, and merges every
    stream — faults, breaches, rebuilds, exposure samples, latency
    windows, hold/resume decisions — into one correlated timeline.
    ``--report DIR`` writes the artefacts (timeline JSONL, Chrome trace,
    Prometheus text, markdown incident report, JSON summary), all
    byte-stable for a given (spec, seed).
    """
    import json

    from repro.faults.nemesis import NemesisSpec
    from repro.harness.nemesis import run_nemesis, write_nemesis_report

    rules = _parse_slo_rules(args.slo)
    if not rules:
        rules = [SloRule.parse(text) for text in DEFAULT_NEMESIS_SLOS]
    organization, ndisks = _resolve_organization(args)
    try:
        spec = NemesisSpec(
            workload=args.workload,
            duration_s=args.duration,
            ndisks=ndisks,
            organization=organization,
            policy=args.policy,
            disk_model=args.disk_model,
            disk_failures=args.disk_failures,
            nvram_losses=args.nvram_losses,
            latent_errors=args.latent_errors,
            spare_pool=args.spares,
            repair_delay_s=args.repair_delay,
            period_s=args.period,
            sample_period_s=args.sample_period,
            mttdl_floor_h=args.mttdl_floor,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    outcome = run_nemesis(spec, seed=args.seed, rules=rules, window_s=args.window)

    if args.report:
        paths = write_nemesis_report(outcome, args.report)
        if not args.json:
            print(f"{len(paths)} artefact(s) -> {args.report}")
    if args.json:
        print(json.dumps(outcome.summary_payload(), indent=2, sort_keys=True))
    else:
        tracker = outcome.loop.tracker
        rows = [
            [kind, str(count)] for kind, count in sorted(tracker.counts().items())
        ] or [["(none)", "0"]]
        print(
            format_table(
                ["fault kind", "injected"],
                rows,
                title=(
                    f"nemesis: {spec.workload} under {spec.policy} "
                    f"({spec.duration_s:g}s, seed {args.seed})"
                ),
            )
        )
        print()
        print(_slo_report(outcome.engine))
        print()
        holds = outcome.loop.holds
        print(
            f"injection gate: {holds} hold(s), {outcome.loop.resumes} resume(s), "
            f"{len(outcome.loop.dropped)} fault(s) dropped at the horizon"
        )
        open_rows = tracker.inventory_rows(outcome.horizon_s)
        if open_rows:
            print(format_table(["id", "kind", "disk", "open (s)"], open_rows, title="still open"))
        kinds = ", ".join(
            f"{kind}×{count}" for kind, count in sorted(outcome.timeline.kinds().items())
        )
        print(f"timeline: {len(outcome.timeline)} events ({kinds})")
        for violation in outcome.violations:
            print(f"INVARIANT VIOLATION: {violation}")
    if args.fail_on_violation and not outcome.ok:
        return 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the simulation-as-a-service daemon until SIGTERM/SIGINT."""
    from repro.service import JobManager, run_server

    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")
    if args.queue_limit < 1:
        raise SystemExit(f"--queue-limit must be >= 1, got {args.queue_limit}")
    manager = JobManager(
        jobs=args.jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
        queue_limit=args.queue_limit,
        max_attempts=args.max_attempts,
        cache_max_bytes=args.cache_max_bytes,
        checkpoint_dir=args.checkpoint_dir,
    )

    def banner(server) -> None:
        host, port = server.server_address[:2]
        print(
            f"afraid-sim serve: listening on http://{host}:{port} "
            f"({args.jobs} worker(s), queue limit {args.queue_limit} cells)"
        )
        print("endpoints: POST /jobs  GET /jobs[/<id>[/events|/result]]  "
              "GET /healthz  GET /metrics")

    run_server(
        manager,
        host=args.host,
        port=args.port,
        quiet=not args.verbose,
        on_ready=banner,
    )
    print("drained; bye")
    return 0


def _submit_payload(args: argparse.Namespace) -> dict:
    payload: dict = {"duration_s": args.duration, "seed": args.seed}
    if args.policy:
        payload["cells"] = [
            {"workload": workload, "policy": policy}
            for workload in args.workloads
            for policy in args.policy
        ]
    else:
        payload["workloads"] = list(args.workloads)
        if args.targets:
            payload["targets"] = args.targets
    return payload


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit a job to a running daemon; optionally wait / stream events."""
    import json

    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url, timeout=args.timeout)
    try:
        snapshot = client.submit_with_backoff(_submit_payload(args))
    except ServiceError as exc:
        raise SystemExit(f"submit failed: {exc}") from None
    except OSError as exc:
        raise SystemExit(f"cannot reach {args.url}: {exc}") from None
    job_id = snapshot["id"]
    if args.stream:
        for event in client.stream_events(job_id):
            print(json.dumps(event), flush=True)
        snapshot = client.job(job_id)
    elif args.wait:
        snapshot = client.wait(job_id, timeout=args.timeout)
    if args.json and not args.stream:
        print(json.dumps(snapshot, indent=2))
    elif not args.stream:
        print(
            f"{job_id}: {snapshot['state']} "
            f"({snapshot['cells_completed']}/{snapshot['cells_total']} cells, "
            f"{snapshot['cells_cached']} cached)"
        )
    if snapshot["state"] == "failed":
        print(f"{job_id} failed: {snapshot.get('error')}", file=sys.stderr)
        return 3
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    """Show one job (or the whole job table) of a running daemon."""
    import json

    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url, timeout=args.timeout)
    try:
        if args.job_id:
            payload = client.result(args.job_id) if args.result else client.job(args.job_id)
            if args.json or args.result:
                print(json.dumps(payload, indent=2))
            else:
                print(
                    f"{payload['id']}: {payload['state']} "
                    f"({payload['cells_completed']}/{payload['cells_total']} cells, "
                    f"{payload['cells_cached']} cached, "
                    f"{payload['cells_retried']} retried)"
                )
            return 0
        jobs = client.jobs()
        health = client.health()
    except ServiceError as exc:
        raise SystemExit(f"status failed: {exc}") from None
    except OSError as exc:
        raise SystemExit(f"cannot reach {args.url}: {exc}") from None
    if args.json:
        print(json.dumps({"health": health, "jobs": jobs}, indent=2))
        return 0
    rows = [
        [
            job["id"], job["state"],
            f"{job['cells_completed']}/{job['cells_total']}",
            str(job["cells_cached"]), str(job["cells_retried"]),
        ]
        for job in jobs
    ]
    title = (
        f"{args.url}: {health['status']}, {health['jobs_active']} active job(s), "
        f"{health['pending_cells']}/{health['queue_limit']} cells pending"
    )
    print(format_table(["job", "state", "cells", "cached", "retried"], rows, title=title))
    return 0


def _package_version() -> str:
    """The installed distribution version, falling back to the source tree."""
    try:
        from importlib import metadata

        return metadata.version("repro")
    except Exception:
        from repro import __version__

        return __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="afraid-sim",
        description="AFRAID (USENIX 1996) reproduction: trace-driven array simulation",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_package_version()}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("workloads", help="list the workload catalog").set_defaults(
        handler=cmd_workloads
    )

    run_parser = commands.add_parser("run", help="run one workload under one policy")
    run_parser.add_argument("workload", choices=workload_names())
    run_parser.add_argument("--policy", default="afraid", choices=["afraid", "raid5", "raid0", "mttdl"])
    run_parser.add_argument("--mttdl-target", type=float, default=None, help="hours, for --policy mttdl")
    run_parser.add_argument(
        "--organization", default="raid5", choices=ORGANIZATION_CHOICES,
        help="redundancy scheme (default: the paper's RAID 5)",
    )
    run_parser.add_argument(
        "--ndisks", type=int, default=None,
        help="member disks (default: organization-appropriate count)",
    )
    run_parser.add_argument("--duration", type=float, default=30.0, help="trace duration (simulated s)")
    run_parser.add_argument("--seed", type=int, default=42)
    run_parser.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    run_parser.add_argument(
        "--stats", action="store_true", help="also print simulator perf counters"
    )
    run_parser.add_argument(
        "--slo", action="append", default=None, metavar="RULE",
        help='SLO rule like "parity_lag_bytes < 5e6"; repeatable',
    )
    run_parser.set_defaults(handler=cmd_run)

    compare_parser = commands.add_parser("compare", help="RAID 0 vs AFRAID vs RAID 5 on one workload")
    compare_parser.add_argument("workload", choices=workload_names())
    compare_parser.add_argument(
        "--organization", default="raid5", choices=ORGANIZATION_CHOICES,
        help="redundancy scheme the three policies run over",
    )
    compare_parser.add_argument(
        "--ndisks", type=int, default=None,
        help="member disks (default: organization-appropriate count)",
    )
    compare_parser.add_argument("--duration", type=float, default=20.0)
    compare_parser.add_argument("--seed", type=int, default=42)
    compare_parser.add_argument(
        "--slo", action="append", default=None, metavar="RULE",
        help='SLO rule like "parity_lag_bytes < 5e6"; repeatable, checked per model',
    )
    compare_parser.set_defaults(handler=cmd_compare)

    analyze_parser = commands.add_parser("analyze", help="characterise a workload (catalog name or trace CSV)")
    analyze_parser.add_argument("workload", help="catalog name, or a path ending in .csv")
    analyze_parser.add_argument("--duration", type=float, default=60.0)
    analyze_parser.add_argument("--seed", type=int, default=42)
    analyze_parser.add_argument("--gap", type=float, default=0.1, help="burst-splitting gap (s)")
    analyze_parser.set_defaults(handler=cmd_analyze)

    profile_parser = commands.add_parser(
        "profile", help="cProfile one replay and print the hot-path table"
    )
    profile_parser.add_argument("workload", choices=workload_names())
    profile_parser.add_argument(
        "--policy", default="afraid", choices=["afraid", "raid5", "raid0", "mttdl"]
    )
    profile_parser.add_argument(
        "--mttdl-target", type=float, default=None, help="hours, for --policy mttdl"
    )
    profile_parser.add_argument("--duration", type=float, default=10.0)
    profile_parser.add_argument("--seed", type=int, default=42)
    profile_parser.add_argument("--top", type=int, default=20, help="rows in the hot-path table")
    profile_parser.add_argument(
        "--sort", default="cumulative", choices=["cumulative", "tottime"]
    )
    profile_parser.add_argument(
        "--dump", metavar="PATH", default=None, help="also write a raw pstats dump"
    )
    profile_parser.set_defaults(handler=cmd_profile)

    sweep_parser = commands.add_parser(
        "sweep", help="run the Figure 3/4 policy-ladder grid via the parallel sweep engine"
    )
    sweep_parser.add_argument(
        "workloads", nargs="*", help="workload names (default: the full catalog)"
    )
    sweep_parser.add_argument(
        "--targets", type=float, nargs="+", default=None, help="MTTDL_x targets in hours"
    )
    sweep_parser.add_argument("--jobs", type=int, default=1, help="worker processes")
    sweep_parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    sweep_parser.add_argument(
        "--no-cache", action="store_true", help="always re-simulate, never touch the cache"
    )
    sweep_parser.add_argument(
        "--cache-max-bytes", type=int, default=None, metavar="N",
        help="after the sweep, evict oldest cache entries until the cache fits N bytes",
    )
    sweep_parser.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="replay checkpoint store: simulated cells resume from the deepest "
        "stored quiescent cut (composes with the result cache)",
    )
    sweep_parser.add_argument(
        "--organization", default="raid5", choices=ORGANIZATION_CHOICES,
        help="redundancy scheme every cell runs over",
    )
    sweep_parser.add_argument(
        "--ndisks", type=int, default=None,
        help="member disks (default: organization-appropriate count)",
    )
    sweep_parser.add_argument("--duration", type=float, default=30.0)
    sweep_parser.add_argument("--seed", type=int, default=42)
    sweep_parser.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    sweep_parser.add_argument(
        "--stats", action="store_true", help="also print sweep perf counters"
    )
    sweep_parser.set_defaults(handler=cmd_sweep)

    trace_parser = commands.add_parser(
        "trace", help="run one workload and export a Perfetto-loadable trace"
    )
    trace_parser.add_argument(
        "workload", help="catalog name (unknown names synthesise a generic workload)"
    )
    trace_parser.add_argument("--policy", default="afraid", choices=["afraid", "raid5", "raid0", "mttdl"])
    trace_parser.add_argument("--mttdl-target", type=float, default=None, help="hours, for --policy mttdl")
    trace_parser.add_argument("--duration", type=float, default=30.0, help="trace duration (simulated s)")
    trace_parser.add_argument("--seed", type=int, default=42)
    trace_parser.add_argument("--out", default="trace.json", help="Chrome trace-event JSON output path")
    trace_parser.add_argument("--jsonl", default=None, help="also write raw records as JSON lines")
    trace_parser.add_argument("--hist-out", default=None, help="write latency histograms as JSON")
    trace_parser.add_argument(
        "--sample-period", type=float, default=0.010, help="sampler period (simulated s)"
    )
    trace_parser.add_argument(
        "--max-records", type=int, default=1_000_000, help="tracer memory bound (records)"
    )
    trace_parser.add_argument(
        "--kernel", action="store_true", help="also record per-event kernel dispatch instants (verbose)"
    )
    trace_parser.set_defaults(handler=cmd_trace)

    report_parser = commands.add_parser(
        "report", help="per-request-class latency percentile table"
    )
    report_parser.add_argument(
        "workload", nargs="?", default=None, help="catalog name (or use --from)"
    )
    report_parser.add_argument("--policy", default="afraid", choices=["afraid", "raid5", "raid0", "mttdl"])
    report_parser.add_argument("--mttdl-target", type=float, default=None, help="hours, for --policy mttdl")
    report_parser.add_argument("--duration", type=float, default=30.0)
    report_parser.add_argument("--seed", type=int, default=42)
    report_parser.add_argument(
        "--from", dest="from_file", default=None, metavar="FILE",
        help="report from a histogram JSON written by `trace --hist-out`",
    )
    report_parser.set_defaults(handler=cmd_report)

    avail_parser = commands.add_parser("availability", help="Section 3 analytic calculator")
    avail_parser.add_argument("--ndisks", type=int, default=None)
    avail_parser.add_argument(
        "--organization", default="raid5", choices=ORGANIZATION_CHOICES,
        help="redundancy scheme the models describe",
    )
    avail_parser.add_argument("--fraction", type=float, default=0.05, help="unprotected-time fraction")
    avail_parser.add_argument("--years", type=float, default=3.0)
    avail_parser.add_argument(
        "--format", choices=["table", "json"], default="table", help="output format"
    )
    avail_parser.set_defaults(handler=cmd_availability)

    exposure_parser = commands.add_parser(
        "exposure", help="live redundancy-exposure telemetry, SLO checks, and metric export"
    )
    exposure_parser.add_argument(
        "workload", help="catalog name (unknown names synthesise a generic workload)"
    )
    exposure_parser.add_argument("--policy", default="afraid", choices=["afraid", "raid5", "raid0", "mttdl"])
    exposure_parser.add_argument("--mttdl-target", type=float, default=None, help="hours, for --policy mttdl")
    exposure_parser.add_argument("--duration", type=float, default=30.0, help="trace duration (simulated s)")
    exposure_parser.add_argument("--seed", type=int, default=42)
    exposure_parser.add_argument(
        "--window", type=float, default=5.0, help="estimator sliding window (simulated s)"
    )
    exposure_parser.add_argument(
        "--period", type=float, default=0.050, help="poller/snapshot period (simulated s)"
    )
    exposure_parser.add_argument(
        "--slo", action="append", default=None, metavar="RULE",
        help='SLO rule like "parity_lag_bytes < 5e6"; repeatable',
    )
    exposure_parser.add_argument(
        "--prom", default=None, metavar="FILE",
        help="write final registry state in Prometheus text exposition format",
    )
    exposure_parser.add_argument(
        "--jsonl", default=None, metavar="FILE",
        help="write the sampled registry time series as JSON lines",
    )
    exposure_parser.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    exposure_parser.add_argument(
        "--fail-on-breach", action="store_true",
        help="exit 1 if any SLO rule was ever breached",
    )
    exposure_parser.set_defaults(handler=cmd_exposure)

    replay_parser = commands.add_parser(
        "replay",
        help="time-sliced (sharded) trace replay with deterministic handoff",
    )
    replay_parser.add_argument("workload", choices=workload_names())
    replay_parser.add_argument(
        "--policy", default="afraid", choices=["afraid", "raid5", "raid0"]
    )
    replay_parser.add_argument("--duration", type=float, default=30.0, help="trace duration (simulated s)")
    replay_parser.add_argument("--seed", type=int, default=42)
    replay_parser.add_argument(
        "--shards", type=int, default=1,
        help="number of consecutive time slices (results are byte-identical for any value)",
    )
    replay_parser.add_argument(
        "--workers", type=int, default=None,
        help="run shard steps in a process pool of this size "
        "(0 = in-process; default: min(shards, CPU count) when --shards > 1, "
        "else in-process)",
    )
    replay_parser.add_argument(
        "--digest", action="store_true",
        help="print only the result fingerprint (for determinism checks)",
    )
    replay_parser.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="persist quiescent-cut checkpoints (and the final result) in DIR; "
        "re-runs resume from the deepest matching trace prefix",
    )
    replay_parser.add_argument(
        "--checkpoint-max-bytes", type=int, default=None, metavar="N",
        help="bound checkpoint-store growth: prune oldest entries past N bytes",
    )
    replay_parser.add_argument(
        "--report-json", default=None, metavar="PATH",
        help="write digest/events-simulated run metadata as JSON",
    )
    replay_parser.set_defaults(handler=cmd_replay)

    faults_parser = commands.add_parser(
        "faults",
        help="run a seeded fault campaign with crash-recovery invariant checks",
    )
    faults_parser.add_argument("--seed", type=int, default=0, help="campaign seed (default 0)")
    faults_parser.add_argument(
        "--seeds", type=int, default=0, metavar="K",
        help="run seeds 0..K-1 as a suite instead of a single --seed",
    )
    faults_parser.add_argument(
        "--campaign", default=None, metavar="SPEC.json",
        help="JSON campaign spec (defaults to a light all-fault-types campaign)",
    )
    faults_parser.add_argument(
        "--organization", default="raid5", choices=ORGANIZATION_CHOICES,
        help="redundancy organization for the default campaign spec "
        "(ignored with --campaign; default raid5)",
    )
    faults_parser.add_argument(
        "--ndisks", type=int, default=None,
        help="member disks for the default campaign spec "
        "(default: the organization's natural size)",
    )
    faults_parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="write per-seed JSON reports (plus suite.json) into DIR",
    )
    faults_parser.add_argument("--json", action="store_true", help="print the report as JSON")
    faults_parser.add_argument(
        "--fail-on-invariant", action="store_true",
        help="exit 1 if any loss invariant was violated",
    )
    faults_parser.set_defaults(handler=cmd_faults)

    nemesis_parser = commands.add_parser(
        "nemesis",
        help="continuous SLO-gated chaos with a correlated incident timeline",
    )
    nemesis_parser.add_argument(
        "workload", nargs="?", default="snake", help="catalog workload (default snake)"
    )
    nemesis_parser.add_argument(
        "--duration", type=float, default=30.0, help="injection window, seconds (default 30)"
    )
    nemesis_parser.add_argument("--seed", type=int, default=0, help="schedule seed (default 0)")
    nemesis_parser.add_argument(
        "--policy", default="afraid", choices=["afraid", "raid5", "raid0"]
    )
    nemesis_parser.add_argument(
        "--ndisks", type=int, default=None,
        help="member disks (default: the organization's natural size)",
    )
    nemesis_parser.add_argument(
        "--organization", default="raid5", choices=ORGANIZATION_CHOICES,
        help="redundancy organization under chaos (default raid5)",
    )
    nemesis_parser.add_argument("--disk-model", default="toy", choices=["toy", "hp_c3325"])
    nemesis_parser.add_argument(
        "--disk-failures", type=float, default=2.0, metavar="N",
        help="expected member deaths over the run (default 2)",
    )
    nemesis_parser.add_argument(
        "--nvram-losses", type=float, default=1.0, metavar="N",
        help="expected marking-memory losses (default 1)",
    )
    nemesis_parser.add_argument(
        "--latent-errors", type=float, default=2.0, metavar="N",
        help="expected latent sector errors (default 2)",
    )
    nemesis_parser.add_argument(
        "--spares", type=int, default=16, help="spare-disk pool (default 16)"
    )
    nemesis_parser.add_argument(
        "--repair-delay", type=float, default=0.5, metavar="S",
        help="technician delay before a spare rebuild starts (default 0.5)",
    )
    nemesis_parser.add_argument(
        "--period", type=float, default=0.05, metavar="S",
        help="gate/telemetry tick (default 0.05)",
    )
    nemesis_parser.add_argument(
        "--sample-period", type=float, default=0.5, metavar="S",
        help="exposure/latency timeline sample period (default 0.5)",
    )
    nemesis_parser.add_argument(
        "--window", type=float, default=2.0, metavar="S",
        help="sliding exposure window (default 2)",
    )
    nemesis_parser.add_argument(
        "--slo", action="append", metavar="RULE",
        help=(
            "gate rule, e.g. 'degraded_disks < 1' (repeatable; defaults to "
            + " and ".join(repr(text) for text in DEFAULT_NEMESIS_SLOS)
            + ")"
        ),
    )
    nemesis_parser.add_argument(
        "--mttdl-floor", type=float, default=None, metavar="HOURS",
        help="also hold injections while windowed achieved MTTDL is below this",
    )
    nemesis_parser.add_argument(
        "--report", default=None, metavar="DIR",
        help="write timeline.jsonl, trace.json, metrics.prom, incident.md, summary.json",
    )
    nemesis_parser.add_argument("--json", action="store_true", help="print the JSON summary")
    nemesis_parser.add_argument(
        "--fail-on-violation", action="store_true",
        help="exit 1 if the timeline violates a correlation invariant",
    )
    nemesis_parser.set_defaults(handler=cmd_nemesis)

    serve_parser = commands.add_parser(
        "serve", help="run the simulation-as-a-service daemon (HTTP/JSON API)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8642)
    serve_parser.add_argument("--jobs", type=int, default=2, help="worker processes")
    serve_parser.add_argument(
        "--queue-limit", type=int, default=1024, metavar="CELLS",
        help="max admitted-but-unfinished cells before submissions get 429",
    )
    serve_parser.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="pool submissions per cell before a crashing cell fails the job",
    )
    serve_parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    serve_parser.add_argument(
        "--no-cache", action="store_true", help="simulate every cell, never touch the cache"
    )
    serve_parser.add_argument(
        "--cache-max-bytes", type=int, default=None, metavar="N",
        help="bound on-disk cache growth: prune oldest entries past N bytes",
    )
    serve_parser.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="replay checkpoint store: cache-miss cells resume from the deepest "
        "stored quiescent cut instead of simulating from t=0",
    )
    serve_parser.add_argument(
        "--verbose", action="store_true", help="log every HTTP request to stderr"
    )
    serve_parser.set_defaults(handler=cmd_serve)

    submit_parser = commands.add_parser(
        "submit", help="submit a job to a running serve daemon"
    )
    submit_parser.add_argument(
        "workloads", nargs="+", help="workload names (the ladder grid, like sweep)"
    )
    submit_parser.add_argument(
        "--url", default="http://127.0.0.1:8642", help="daemon base URL"
    )
    submit_parser.add_argument(
        "--targets", type=float, nargs="+", default=None, help="MTTDL_x targets in hours"
    )
    submit_parser.add_argument(
        "--policy", action="append", default=None, metavar="KIND",
        help="submit explicit (workload x policy) cells instead of the full ladder; repeatable",
    )
    submit_parser.add_argument("--duration", type=float, default=30.0)
    submit_parser.add_argument("--seed", type=int, default=42)
    submit_parser.add_argument(
        "--wait", action="store_true", help="block until the job is terminal"
    )
    submit_parser.add_argument(
        "--stream", action="store_true",
        help="stream the job's NDJSON events to stdout until it finishes",
    )
    submit_parser.add_argument("--timeout", type=float, default=600.0)
    submit_parser.add_argument("--json", action="store_true", help="print the job snapshot as JSON")
    submit_parser.set_defaults(handler=cmd_submit)

    status_parser = commands.add_parser(
        "status", help="job table (or one job) of a running serve daemon"
    )
    status_parser.add_argument("job_id", nargs="?", default=None)
    status_parser.add_argument(
        "--url", default="http://127.0.0.1:8642", help="daemon base URL"
    )
    status_parser.add_argument(
        "--result", action="store_true",
        help="with a job id: print the job's full per-cell result payload",
    )
    status_parser.add_argument("--timeout", type=float, default=30.0)
    status_parser.add_argument("--json", action="store_true", help="machine-readable output")
    status_parser.set_defaults(handler=cmd_status)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; silence the stack trace.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


if __name__ == "__main__":
    sys.exit(main())
