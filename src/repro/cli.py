"""Command-line interface: run experiments and print paper-style tables.

Installed as ``afraid-sim``::

    afraid-sim workloads                     # list the trace catalog
    afraid-sim run cello-usr --policy afraid --duration 30
    afraid-sim compare ATT --duration 20     # RAID 0 / AFRAID / RAID 5
    afraid-sim sweep --jobs 4                # Figure 3/4 grid, in parallel
    afraid-sim availability --fraction 0.05  # Section 3 calculator
    afraid-sim trace snake --policy afraid --out trace.json  # Perfetto trace
    afraid-sim report snake --policy afraid  # per-class latency percentiles
"""

from __future__ import annotations

import argparse
import sys

from repro.availability import (
    CONSERVATIVE_SUPPORT,
    TABLE_1,
    afraid_mttdl,
    loss_probability,
    combine_mttdl,
    raid5_mttdl_catastrophic,
)
from repro.harness import DEFAULT_CACHE_DIR, format_quantity, format_table, run_experiment
from repro.metrics import PerfCounters
from repro.obs import HistogramSet
from repro.policy import (
    AlwaysRaid5Policy,
    BaselineAfraidPolicy,
    MttdlTargetPolicy,
    NeverScrubPolicy,
    ParityPolicy,
)
from repro.traces import CATALOG, workload_names


def _make_policy(name: str, mttdl_target: float | None) -> ParityPolicy:
    if name == "afraid":
        return BaselineAfraidPolicy()
    if name == "raid5":
        return AlwaysRaid5Policy()
    if name == "raid0":
        return NeverScrubPolicy()
    if name == "mttdl":
        if mttdl_target is None:
            raise SystemExit("--policy mttdl requires --mttdl-target HOURS")
        return MttdlTargetPolicy(mttdl_target)
    raise SystemExit(f"unknown policy {name!r}")


def _result_rows(result) -> list[list[str]]:
    return [
        ["requests", str(result.nrequests)],
        ["mean I/O time", f"{result.mean_io_time_ms:.2f} ms"],
        ["95th percentile", f"{result.io_time.p95 * 1e3:.2f} ms"],
        ["unprotected time", f"{result.unprotected_fraction:.1%}"],
        ["mean parity lag", f"{result.mean_parity_lag_bytes / 1024:.1f} KB"],
        ["stripes scrubbed", str(result.stripes_scrubbed)],
        ["disk MTTDL", format_quantity(result.mttdl_disk_h, " h")],
        ["overall MTTDL", format_quantity(result.mttdl_overall_h, " h")],
        ["MDLR (unprotected)", f"{result.mdlr_unprotected_bytes_per_h:.3f} B/h"],
        ["MDLR (overall)", format_quantity(result.mdlr_overall_bytes_per_h, " B/h")],
    ]


def cmd_workloads(_args: argparse.Namespace) -> int:
    rows = [
        [name, f"{CATALOG[name].write_fraction:.0%}", CATALOG[name].description]
        for name in workload_names()
    ]
    print(format_table(["workload", "writes", "description"], rows))
    return 0


def _resolve_workload(name: str, duration_s: float, seed: int):
    """A catalog name passes through; anything else synthesises a generic
    bursty trace under that name (with a note), so ad-hoc labels work."""
    if name in CATALOG:
        return name
    from repro.traces import make_trace

    print(
        f"note: {name!r} is not in the workload catalog; "
        "synthesising a generic bursty workload under that name",
        file=sys.stderr,
    )
    return make_trace(name, duration_s=duration_s, seed=seed, allow_generic=True)


def cmd_run(args: argparse.Namespace) -> int:
    policy = _make_policy(args.policy, args.mttdl_target)
    counters = PerfCounters() if args.stats else None
    result = run_experiment(
        args.workload, policy, duration_s=args.duration, seed=args.seed, counters=counters
    )
    if args.json:
        import json

        payload = result.to_dict()
        if counters is not None:
            payload["perf"] = counters.snapshot()
        print(json.dumps(payload, indent=2))
        return 0
    title = f"{args.workload} under {policy.describe()} ({args.duration:g}s, seed {args.seed})"
    print(format_table(["metric", "value"], _result_rows(result), title=title))
    if counters is not None:
        print()
        print(format_table(["counter", "value"], counters.rows(), title="perf counters"))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    rows = []
    results = {}
    for name in ("raid0", "afraid", "raid5"):
        results[name] = run_experiment(
            args.workload, _make_policy(name, None), duration_s=args.duration, seed=args.seed
        )
    raid5_mean = results["raid5"].io_time.mean
    for name in ("raid0", "afraid", "raid5"):
        result = results[name]
        rows.append(
            [
                name,
                f"{result.mean_io_time_ms:.2f}",
                f"{raid5_mean / result.io_time.mean:.2f}x",
                f"{result.unprotected_fraction:.1%}",
                format_quantity(result.mttdl_disk_h),
            ]
        )
    print(
        format_table(
            ["model", "mean I/O (ms)", "vs RAID5", "unprot time", "disk MTTDL (h)"],
            rows,
            title=f"{args.workload}, {args.duration:g}s, seed {args.seed}",
        )
    )
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.traces import analyze, make_trace, read_trace_csv

    if args.workload.endswith(".csv"):
        trace = read_trace_csv(args.workload)
    else:
        trace = make_trace(args.workload, duration_s=args.duration, seed=args.seed)
    report = analyze(trace, gap_threshold_s=args.gap)
    print(format_table(["property", "value"], report.rows(), title=f"trace: {report.name}"))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.harness import (
        DEFAULT_MTTDL_TARGETS,
        ladder_specs,
        run_cells,
        tradeoff_curve,
    )

    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")
    workloads = args.workloads or workload_names()
    for workload in workloads:
        if workload not in CATALOG:
            raise SystemExit(f"unknown workload {workload!r}; choose from {workload_names()}")
    targets = args.targets if args.targets else list(DEFAULT_MTTDL_TARGETS)
    specs = ladder_specs(workloads, targets, duration_s=args.duration, seed=args.seed)
    labels = []
    for spec in specs:
        if spec.policy.label not in labels:
            labels.append(spec.policy.label)
    cache_dir = None if args.no_cache else args.cache_dir
    counters = PerfCounters() if args.stats else None
    outcome = run_cells(specs, jobs=args.jobs, cache_dir=cache_dir, counters=counters)
    points = tradeoff_curve(outcome.results, workloads, labels)

    if args.json:
        import json

        payload = {
            "workloads": list(workloads),
            "cells": {f"{w}/{p}": r.to_dict() for (w, p), r in sorted(outcome.results.items())},
            "tradeoff": [
                {
                    "policy": point.label,
                    "relative_performance": point.relative_performance,
                    "relative_availability": point.relative_availability,
                }
                for point in points
            ],
            "simulated": outcome.simulated,
            "cached": outcome.cached,
            "wall_s": outcome.wall_s,
        }
        if counters is not None:
            payload["perf"] = counters.snapshot()
        print(json.dumps(payload, indent=2))
        return 0

    rows = [
        [
            point.label,
            f"{point.relative_performance:.2f}",
            f"{point.relative_availability:.2f}",
        ]
        for point in points
    ]
    print(
        format_table(
            ["policy", "rel. perf", "rel. avail"],
            rows,
            title=(
                f"{len(specs)} cells over {len(workloads)} workloads "
                f"({args.duration:g}s, seed {args.seed}); both axes relative to RAID 5"
            ),
        )
    )
    print(
        f"\n{outcome.simulated} simulated, {outcome.cached} from cache, "
        f"{outcome.wall_s:.1f}s wall-clock with --jobs {args.jobs}"
    )
    if counters is not None:
        print()
        print(format_table(["counter", "value"], counters.rows(), title="perf counters"))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs import PeriodicSampler, Tracer, attach_array_probes

    policy = _make_policy(args.policy, args.mttdl_target)
    tracer = Tracer(max_records=args.max_records)
    workload = _resolve_workload(args.workload, args.duration, args.seed)

    def instrument(sim, array) -> None:
        if args.kernel:
            tracer.attach_kernel(sim)
        sampler = PeriodicSampler(sim, period_s=args.sample_period, tracer=tracer)
        attach_array_probes(sampler, array)
        sampler.start()

    result = run_experiment(
        workload,
        policy,
        duration_s=args.duration,
        seed=args.seed,
        tracer=tracer,
        on_array=instrument,
    )
    tracer.write_chrome(args.out)
    if args.jsonl:
        tracer.write_jsonl(args.jsonl)
    if args.hist_out:
        with open(args.hist_out, "w") as handle:
            json.dump(
                {
                    "workload": result.workload,
                    "policy": result.policy,
                    "histograms": result.latency_hists,
                },
                handle,
                indent=2,
            )

    hists = result.histogram_set()
    assert hists is not None  # run_experiment always collects
    title = f"{result.workload} under {result.policy} ({args.duration:g}s, seed {args.seed})"
    print(format_table(HistogramSet.table_header(), hists.rows(), title=title))
    dropped = f" ({tracer.dropped} dropped)" if tracer.dropped else ""
    print(f"\n{len(tracer)} trace records{dropped} -> {args.out}")
    print("open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    if args.from_file is not None:
        import json

        with open(args.from_file) as handle:
            payload = json.load(handle)
        hists = HistogramSet.from_payload(payload.get("histograms", payload))
        title = f"latency percentiles from {args.from_file}"
    else:
        if args.workload is None:
            raise SystemExit("report needs a workload name or --from FILE")
        policy = _make_policy(args.policy, args.mttdl_target)
        workload = _resolve_workload(args.workload, args.duration, args.seed)
        result = run_experiment(workload, policy, duration_s=args.duration, seed=args.seed)
        hists = result.histogram_set()
        assert hists is not None
        title = f"{result.workload} under {result.policy} ({args.duration:g}s, seed {args.seed})"
    rows = hists.rows()
    if not rows:
        print("no latencies recorded")
        return 0
    print(format_table(HistogramSet.table_header(), rows, title=title))
    return 0


def cmd_availability(args: argparse.Namespace) -> int:
    params = TABLE_1
    raid5 = raid5_mttdl_catastrophic(args.ndisks, params.mttf_disk_h, params.mttr_h)
    afraid = afraid_mttdl(args.ndisks, params.mttf_disk_h, params.mttr_h, args.fraction)
    overall = combine_mttdl(afraid, CONSERVATIVE_SUPPORT.mttdl_h)
    lifetime_h = args.years * 24 * 365.25
    rows = [
        ["RAID 5 disk MTTDL (eq. 1)", format_quantity(raid5, " h")],
        [f"AFRAID disk MTTDL @ {args.fraction:.1%} exposure", format_quantity(afraid, " h")],
        ["support MTTDL (Table 1)", format_quantity(CONSERVATIVE_SUPPORT.mttdl_h, " h")],
        ["overall MTTDL", format_quantity(overall, " h")],
        [
            f"P(loss in {args.years:g} years)",
            f"{loss_probability(overall, lifetime_h):.2%}",
        ],
    ]
    print(format_table(["quantity", "value"], rows, title=f"{args.ndisks}-disk array"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="afraid-sim",
        description="AFRAID (USENIX 1996) reproduction: trace-driven array simulation",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("workloads", help="list the workload catalog").set_defaults(
        handler=cmd_workloads
    )

    run_parser = commands.add_parser("run", help="run one workload under one policy")
    run_parser.add_argument("workload", choices=workload_names())
    run_parser.add_argument("--policy", default="afraid", choices=["afraid", "raid5", "raid0", "mttdl"])
    run_parser.add_argument("--mttdl-target", type=float, default=None, help="hours, for --policy mttdl")
    run_parser.add_argument("--duration", type=float, default=30.0, help="trace duration (simulated s)")
    run_parser.add_argument("--seed", type=int, default=42)
    run_parser.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    run_parser.add_argument(
        "--stats", action="store_true", help="also print simulator perf counters"
    )
    run_parser.set_defaults(handler=cmd_run)

    compare_parser = commands.add_parser("compare", help="RAID 0 vs AFRAID vs RAID 5 on one workload")
    compare_parser.add_argument("workload", choices=workload_names())
    compare_parser.add_argument("--duration", type=float, default=20.0)
    compare_parser.add_argument("--seed", type=int, default=42)
    compare_parser.set_defaults(handler=cmd_compare)

    analyze_parser = commands.add_parser("analyze", help="characterise a workload (catalog name or trace CSV)")
    analyze_parser.add_argument("workload", help="catalog name, or a path ending in .csv")
    analyze_parser.add_argument("--duration", type=float, default=60.0)
    analyze_parser.add_argument("--seed", type=int, default=42)
    analyze_parser.add_argument("--gap", type=float, default=0.1, help="burst-splitting gap (s)")
    analyze_parser.set_defaults(handler=cmd_analyze)

    sweep_parser = commands.add_parser(
        "sweep", help="run the Figure 3/4 policy-ladder grid via the parallel sweep engine"
    )
    sweep_parser.add_argument(
        "workloads", nargs="*", help="workload names (default: the full catalog)"
    )
    sweep_parser.add_argument(
        "--targets", type=float, nargs="+", default=None, help="MTTDL_x targets in hours"
    )
    sweep_parser.add_argument("--jobs", type=int, default=1, help="worker processes")
    sweep_parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    sweep_parser.add_argument(
        "--no-cache", action="store_true", help="always re-simulate, never touch the cache"
    )
    sweep_parser.add_argument("--duration", type=float, default=30.0)
    sweep_parser.add_argument("--seed", type=int, default=42)
    sweep_parser.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    sweep_parser.add_argument(
        "--stats", action="store_true", help="also print sweep perf counters"
    )
    sweep_parser.set_defaults(handler=cmd_sweep)

    trace_parser = commands.add_parser(
        "trace", help="run one workload and export a Perfetto-loadable trace"
    )
    trace_parser.add_argument(
        "workload", help="catalog name (unknown names synthesise a generic workload)"
    )
    trace_parser.add_argument("--policy", default="afraid", choices=["afraid", "raid5", "raid0", "mttdl"])
    trace_parser.add_argument("--mttdl-target", type=float, default=None, help="hours, for --policy mttdl")
    trace_parser.add_argument("--duration", type=float, default=30.0, help="trace duration (simulated s)")
    trace_parser.add_argument("--seed", type=int, default=42)
    trace_parser.add_argument("--out", default="trace.json", help="Chrome trace-event JSON output path")
    trace_parser.add_argument("--jsonl", default=None, help="also write raw records as JSON lines")
    trace_parser.add_argument("--hist-out", default=None, help="write latency histograms as JSON")
    trace_parser.add_argument(
        "--sample-period", type=float, default=0.010, help="sampler period (simulated s)"
    )
    trace_parser.add_argument(
        "--max-records", type=int, default=1_000_000, help="tracer memory bound (records)"
    )
    trace_parser.add_argument(
        "--kernel", action="store_true", help="also record per-event kernel dispatch instants (verbose)"
    )
    trace_parser.set_defaults(handler=cmd_trace)

    report_parser = commands.add_parser(
        "report", help="per-request-class latency percentile table"
    )
    report_parser.add_argument(
        "workload", nargs="?", default=None, help="catalog name (or use --from)"
    )
    report_parser.add_argument("--policy", default="afraid", choices=["afraid", "raid5", "raid0", "mttdl"])
    report_parser.add_argument("--mttdl-target", type=float, default=None, help="hours, for --policy mttdl")
    report_parser.add_argument("--duration", type=float, default=30.0)
    report_parser.add_argument("--seed", type=int, default=42)
    report_parser.add_argument(
        "--from", dest="from_file", default=None, metavar="FILE",
        help="report from a histogram JSON written by `trace --hist-out`",
    )
    report_parser.set_defaults(handler=cmd_report)

    avail_parser = commands.add_parser("availability", help="Section 3 analytic calculator")
    avail_parser.add_argument("--ndisks", type=int, default=5)
    avail_parser.add_argument("--fraction", type=float, default=0.05, help="unprotected-time fraction")
    avail_parser.add_argument("--years", type=float, default=3.0)
    avail_parser.set_defaults(handler=cmd_availability)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
