"""Parallel sweep engine with a content-addressed on-disk result cache.

Every headline figure is a grid of independent (workload, policy, seed)
cells, each a fresh simulator — embarrassingly parallel.  This module
fans cells out over :class:`concurrent.futures.ProcessPoolExecutor` and
memoises finished cells on disk, keyed by a hash of everything that can
change the answer: the cell's full configuration plus a fingerprint of
the installed ``repro`` source tree.  Re-running a sweep after an edit
re-simulates only what the edit could have affected; re-running with no
edits is pure cache reads.

Cells are described by :class:`CellSpec` — plain data, picklable, and
hashable into a cache key — rather than by policy *instances* (policies
carry per-run state and closures don't cross process boundaries).
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import hashlib
import json
import os
import pathlib
import time
import typing

from repro.array.factory import PAPER_NDISKS, PAPER_STRIPE_UNIT_SECTORS
from repro.availability import ReliabilityParams, TABLE_1
from repro.harness.experiment import ExperimentResult, run_experiment
from repro.metrics import PerfCounters, Summary
from repro.obs import HistogramSet
from repro.policy import (
    AlwaysRaid5Policy,
    BaselineAfraidPolicy,
    MttdlTargetPolicy,
    NeverScrubPolicy,
    ParityPolicy,
)

#: Bump when the cached payload layout (not the results) changes shape.
#: 2: results grew per-class latency histograms (``latency_hists``).
#: 3: results grew dirty-dwell exposure histograms (``exposure_hists``).
CACHE_SCHEMA = 3

#: Default cache location (gitignored).
DEFAULT_CACHE_DIR = ".repro-cache"


# -- cell specification -----------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class PolicySpec:
    """A picklable, hashable description of a parity policy.

    ``kind`` is one of ``raid5`` / ``afraid`` / ``raid0`` / ``mttdl``;
    ``mttdl`` additionally needs ``mttdl_target`` (hours).
    """

    kind: str
    mttdl_target: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("raid5", "afraid", "raid0", "mttdl"):
            raise ValueError(f"unknown policy kind {self.kind!r}")
        if self.kind == "mttdl" and self.mttdl_target is None:
            raise ValueError("mttdl policy needs mttdl_target")

    def build(self, params: ReliabilityParams = TABLE_1) -> ParityPolicy:
        """A fresh policy instance (policies carry per-run state)."""
        if self.kind == "raid5":
            return AlwaysRaid5Policy()
        if self.kind == "afraid":
            return BaselineAfraidPolicy()
        if self.kind == "raid0":
            return NeverScrubPolicy()
        return MttdlTargetPolicy(self.mttdl_target, params=params)

    @property
    def label(self) -> str:
        """The ladder label used in figures and grid keys."""
        if self.kind == "mttdl":
            return f"MTTDL_{self.mttdl_target:.0e}"
        return self.kind


@dataclasses.dataclass(frozen=True)
class CellSpec:
    """One experiment cell: everything :func:`run_experiment` needs, as data.

    The spec deliberately covers only the picklable subset of
    ``run_experiment``'s signature — cells always use the default disk
    model.  Two equal specs (plus equal code) produce identical results,
    which is what makes the cache sound.
    """

    workload: str
    policy: PolicySpec
    duration_s: float = 40.0
    seed: int = 42
    ndisks: int = PAPER_NDISKS
    stripe_unit_sectors: int = PAPER_STRIPE_UNIT_SECTORS
    idle_threshold_s: float = 0.100
    extra_settle_s: float = 0.0

    @property
    def key(self) -> tuple[str, str]:
        """The (workload, policy label) grid key."""
        return (self.workload, self.policy.label)

    def to_config(self) -> dict:
        """The flat, JSON-stable dict hashed into the cache key."""
        config = dataclasses.asdict(self)
        config["policy"] = dataclasses.asdict(self.policy)
        return config


# -- cache keys -------------------------------------------------------------------


def code_fingerprint(refresh: bool = False) -> str:
    """A hash of every ``repro`` source file, so code edits invalidate results.

    Computed once per process; ``refresh=True`` forces a rescan (tests).
    """
    global _FINGERPRINT
    if _FINGERPRINT is None or refresh:
        package_root = pathlib.Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


_FINGERPRINT: str | None = None


def cache_key(spec: CellSpec) -> str:
    """Content address of one cell: config + schema + code fingerprint."""
    payload = {
        "schema": CACHE_SCHEMA,
        "code": code_fingerprint(),
        "cell": spec.to_config(),
    }
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode()).hexdigest()


# -- result (de)serialisation -----------------------------------------------------


def result_to_payload(result: ExperimentResult) -> dict:
    """A JSON-shaped dict that round-trips through :func:`result_from_payload`.

    Infinities become the string ``"inf"`` so the files are strict JSON.
    """

    def encode(value):
        if isinstance(value, float) and value == float("inf"):
            return "inf"
        if isinstance(value, dict):
            return {key: encode(item) for key, item in value.items()}
        return value

    return {key: encode(value) for key, value in dataclasses.asdict(result).items()}


def result_from_payload(payload: dict) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from a cached payload."""

    def revive(value):
        if value == "inf":
            return float("inf")
        if isinstance(value, dict):
            return {key: revive(item) for key, item in value.items()}
        return value

    data = {key: revive(value) for key, value in payload.items()}
    data["io_time"] = Summary(**data["io_time"])
    data["params"] = ReliabilityParams(**data["params"])
    return ExperimentResult(**data)


class ResultCache:
    """Directory of ``<key>.json`` result files.

    Corrupt or unreadable entries are treated as misses — a sweep must
    never crash because a cache file was truncated mid-write (entries are
    written via a temp file + rename to keep that window small).
    """

    def __init__(self, cache_dir: str | os.PathLike) -> None:
        self.root = pathlib.Path(cache_dir)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    def load(self, key: str) -> ExperimentResult | None:
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            return result_from_payload(payload)
        except FileNotFoundError:
            return None
        except Exception:
            # Corrupted / stale-schema entry: drop it and recompute.
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
            return None

    def store(self, key: str, result: ExperimentResult) -> None:
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(result_to_payload(result)))
        tmp.replace(path)


# -- execution --------------------------------------------------------------------


@dataclasses.dataclass
class SweepOutcome:
    """A finished sweep: the grid plus where each cell came from."""

    results: dict[tuple[str, str], ExperimentResult]
    simulated: int
    cached: int
    wall_s: float

    def __getitem__(self, key: tuple[str, str]) -> ExperimentResult:
        return self.results[key]


def run_cell(spec: CellSpec) -> ExperimentResult:
    """Simulate one cell (the process-pool work function)."""
    return run_experiment(
        spec.workload,
        spec.policy.build(),
        duration_s=spec.duration_s,
        seed=spec.seed,
        ndisks=spec.ndisks,
        stripe_unit_sectors=spec.stripe_unit_sectors,
        idle_threshold_s=spec.idle_threshold_s,
        extra_settle_s=spec.extra_settle_s,
    )


def run_cells(
    specs: typing.Sequence[CellSpec],
    jobs: int = 1,
    cache_dir: str | os.PathLike | None = None,
    counters: PerfCounters | None = None,
) -> SweepOutcome:
    """Run every cell, in parallel when ``jobs > 1``, through the cache.

    Results are keyed by ``(workload, policy label)``.  ``jobs`` counts
    worker processes; cells already in the cache never reach a worker, so
    a warm rerun is pure I/O.  Cell order never affects results — each
    cell is a fresh simulator with its own explicitly-seeded RNG.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    started = time.perf_counter()
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    results: dict[tuple[str, str], ExperimentResult] = {}
    pending: list[tuple[CellSpec, str | None]] = []

    for spec in specs:
        key = cache_key(spec) if cache is not None else None
        hit = cache.load(key) if cache is not None else None
        if hit is not None:
            results[spec.key] = hit
        else:
            pending.append((spec, key))

    cached = len(results)
    if counters is not None:
        counters.count("cells_cached", cached)

    if pending:
        if jobs == 1:
            computed = [run_cell(spec) for spec, _key in pending]
        else:
            with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
                computed = list(pool.map(run_cell, [spec for spec, _key in pending]))
        for (spec, key), result in zip(pending, computed):
            results[spec.key] = result
            if cache is not None and key is not None:
                cache.store(key, result)

    if counters is not None:
        counters.count("cells_simulated", len(pending))
        counters.count("ios_serviced", sum(r.reads + r.writes for r in results.values()))
    return SweepOutcome(
        results=results,
        simulated=len(pending),
        cached=cached,
        wall_s=time.perf_counter() - started,
    )


def merged_histograms(results: typing.Iterable[ExperimentResult]) -> HistogramSet:
    """Merge every result's latency histograms into one set.

    Merging is *exact*: bucket counts add elementwise, so the percentiles
    of the merged set equal those of a single-process run over the same
    cells — the property that makes ``jobs=4`` results trustworthy.
    Results without histograms (pre-observability cache entries) are
    skipped.
    """
    merged = HistogramSet()
    for result in results:
        hists = result.histogram_set()
        if hists is not None:
            merged.merge(hists)
    return merged


def merged_exposure_histograms(results: typing.Iterable[ExperimentResult]) -> HistogramSet:
    """Merge every result's dirty-dwell exposure histograms into one set.

    Same exact-merge guarantee as :func:`merged_histograms`, applied to
    the ``dirty_dwell*`` classes the per-worker
    :class:`~repro.obs.ExposureMonitor` recorded.  Results without
    exposure histograms (pre-exposure cache entries) are skipped.
    """
    merged = HistogramSet()
    for result in results:
        hists = result.exposure_histogram_set()
        if hists is not None:
            merged.merge(hists)
    return merged


def ladder_specs(
    workloads: typing.Sequence[str],
    targets: typing.Sequence[float],
    include_raid5: bool = True,
    include_raid0: bool = True,
    **cell_kwargs,
) -> list[CellSpec]:
    """The full (workload × policy ladder) grid as cell specs.

    Mirrors :func:`repro.harness.sweeps.policy_ladder`'s ordering: RAID 5,
    MTTDL_x targets tight to loose, baseline AFRAID, RAID 0.
    """
    policies: list[PolicySpec] = []
    if include_raid5:
        policies.append(PolicySpec("raid5"))
    for target in sorted(targets, reverse=True):
        policies.append(PolicySpec("mttdl", mttdl_target=target))
    policies.append(PolicySpec("afraid"))
    if include_raid0:
        policies.append(PolicySpec("raid0"))
    return [
        CellSpec(workload=workload, policy=policy, **cell_kwargs)
        for workload in workloads
        for policy in policies
    ]
