"""Parallel sweep engine with a content-addressed on-disk result cache.

Every headline figure is a grid of independent (workload, policy, seed)
cells, each a fresh simulator — embarrassingly parallel.  This module
fans cells out over :class:`concurrent.futures.ProcessPoolExecutor` and
memoises finished cells on disk, keyed by a hash of everything that can
change the answer: the cell's full configuration plus a fingerprint of
the installed ``repro`` source tree.  Re-running a sweep after an edit
re-simulates only what the edit could have affected; re-running with no
edits is pure cache reads.

Cells are described by :class:`CellSpec` — plain data, picklable, and
hashable into a cache key — rather than by policy *instances* (policies
carry per-run state and closures don't cross process boundaries).
"""

from __future__ import annotations

import collections
import concurrent.futures
import dataclasses
import functools
import hashlib
import json
import os
import pathlib
import threading
import time
import typing

from repro.array.factory import PAPER_NDISKS, PAPER_STRIPE_UNIT_SECTORS
from repro.availability import ReliabilityParams, TABLE_1
from repro.harness.experiment import ExperimentResult, run_experiment
from repro.metrics import PerfCounters, Summary
from repro.obs import HistogramSet
from repro.policy import (
    AlwaysRaid5Policy,
    BaselineAfraidPolicy,
    MttdlTargetPolicy,
    NeverScrubPolicy,
    ParityPolicy,
)

#: Bump when the cached payload layout (not the results) changes shape.
#: 2: results grew per-class latency histograms (``latency_hists``).
#: 3: results grew dirty-dwell exposure histograms (``exposure_hists``).
CACHE_SCHEMA = 3

#: Default cache location (gitignored).
DEFAULT_CACHE_DIR = ".repro-cache"


# -- cell specification -----------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class PolicySpec:
    """A picklable, hashable description of a parity policy.

    ``kind`` is one of ``raid5`` / ``afraid`` / ``raid0`` / ``mttdl``;
    ``mttdl`` additionally needs ``mttdl_target`` (hours).
    """

    kind: str
    mttdl_target: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("raid5", "afraid", "raid0", "mttdl"):
            raise ValueError(f"unknown policy kind {self.kind!r}")
        if self.kind == "mttdl" and self.mttdl_target is None:
            raise ValueError("mttdl policy needs mttdl_target")

    def build(self, params: ReliabilityParams = TABLE_1) -> ParityPolicy:
        """A fresh policy instance (policies carry per-run state)."""
        if self.kind == "raid5":
            return AlwaysRaid5Policy()
        if self.kind == "afraid":
            return BaselineAfraidPolicy()
        if self.kind == "raid0":
            return NeverScrubPolicy()
        return MttdlTargetPolicy(self.mttdl_target, params=params)

    @property
    def label(self) -> str:
        """The ladder label used in figures and grid keys."""
        if self.kind == "mttdl":
            return f"MTTDL_{self.mttdl_target:.0e}"
        return self.kind


@dataclasses.dataclass(frozen=True)
class CellSpec:
    """One experiment cell: everything :func:`run_experiment` needs, as data.

    The spec deliberately covers only the picklable subset of
    ``run_experiment``'s signature — cells always use the default disk
    model.  Two equal specs (plus equal code) produce identical results,
    which is what makes the cache sound.
    """

    workload: str
    policy: PolicySpec
    duration_s: float = 40.0
    seed: int = 42
    ndisks: int = PAPER_NDISKS
    stripe_unit_sectors: int = PAPER_STRIPE_UNIT_SECTORS
    idle_threshold_s: float = 0.100
    extra_settle_s: float = 0.0
    organization: str = "raid5"

    @property
    def key(self) -> tuple[str, str]:
        """The (workload, policy label) grid key.

        Non-default organizations suffix the label so the same policy
        over different redundancy schemes occupies distinct grid cells.
        """
        if self.organization != "raid5":
            return (self.workload, f"{self.policy.label}@{self.organization}")
        return (self.workload, self.policy.label)

    def to_config(self) -> dict:
        """The flat, JSON-stable dict hashed into the cache key."""
        config = dataclasses.asdict(self)
        config["policy"] = dataclasses.asdict(self.policy)
        if config["organization"] == "raid5":
            # Keep the default-organization config byte-identical to what
            # was hashed before the knob existed.
            del config["organization"]
        return config


# -- cache keys -------------------------------------------------------------------


def code_fingerprint(refresh: bool = False) -> str:
    """A hash of every ``repro`` source file, so code edits invalidate results.

    Computed once per process; ``refresh=True`` forces a rescan (tests).
    """
    global _FINGERPRINT
    if _FINGERPRINT is None or refresh:
        package_root = pathlib.Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


_FINGERPRINT: str | None = None


def cache_key(spec: CellSpec) -> str:
    """Content address of one cell: config + schema + code fingerprint."""
    payload = {
        "schema": CACHE_SCHEMA,
        "code": code_fingerprint(),
        "cell": spec.to_config(),
    }
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode()).hexdigest()


# -- result (de)serialisation -----------------------------------------------------


def result_to_payload(result: ExperimentResult) -> dict:
    """A JSON-shaped dict that round-trips through :func:`result_from_payload`.

    Infinities become the string ``"inf"`` so the files are strict JSON.
    """

    def encode(value):
        if isinstance(value, float) and value == float("inf"):
            return "inf"
        if isinstance(value, dict):
            return {key: encode(item) for key, item in value.items()}
        return value

    return {key: encode(value) for key, value in dataclasses.asdict(result).items()}


def result_from_payload(payload: dict) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from a cached payload."""

    def revive(value):
        if value == "inf":
            return float("inf")
        if isinstance(value, dict):
            return {key: revive(item) for key, item in value.items()}
        return value

    data = {key: revive(value) for key, value in payload.items()}
    data["io_time"] = Summary(**data["io_time"])
    data["params"] = ReliabilityParams(**data["params"])
    return ExperimentResult(**data)


class ResultCache:
    """Directory of ``<key>.json`` result files.

    Corrupt or unreadable entries are treated as misses — a sweep must
    never crash because a cache file was truncated mid-write (entries are
    written via a temp file + rename to keep that window small).
    """

    def __init__(self, cache_dir: str | os.PathLike) -> None:
        self.root = pathlib.Path(cache_dir)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    def load(self, key: str) -> ExperimentResult | None:
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            return result_from_payload(payload)
        except FileNotFoundError:
            return None
        except Exception:
            # Corrupted / stale-schema entry: drop it and recompute.
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
            return None

    def store(self, key: str, result: ExperimentResult) -> None:
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(result_to_payload(result)))
        tmp.replace(path)

    def size_bytes(self) -> int:
        """Total on-disk size of every cache entry."""
        total = 0
        for path in self.root.glob("*.json"):
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def prune(self, max_bytes: int) -> tuple[int, int]:
        """Evict oldest entries (by mtime) until the cache fits ``max_bytes``.

        Returns ``(entries_removed, bytes_freed)``.  Entries that vanish
        concurrently (another process pruning, or a store racing) are
        simply skipped — pruning is advisory, never load-bearing.
        """
        entries = []
        for path in self.root.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        total = sum(size for _mtime, size, _path in entries)
        removed = freed = 0
        for _mtime, size, path in sorted(entries):
            if total <= max_bytes:
                break
            try:
                path.unlink(missing_ok=True)
            except OSError:
                continue
            total -= size
            removed += 1
            freed += size
        return removed, freed


# -- execution --------------------------------------------------------------------


class SweepInterrupted(KeyboardInterrupt):
    """Ctrl-C landed mid-sweep; pending cells were cancelled cleanly.

    Subclasses :class:`KeyboardInterrupt` so callers that don't care still
    unwind the usual way, while the CLI can report how far the sweep got
    instead of dumping a traceback.  Cells completed before the interrupt
    were already written through to the cache, so a rerun resumes there.
    """

    def __init__(self, completed: int, total: int) -> None:
        super().__init__(f"interrupted after {completed}/{total} cells")
        self.completed = completed
        self.total = total


@dataclasses.dataclass
class CellOutcome:
    """What :class:`CellExecutor` hands the per-cell callback.

    Exactly one of ``result`` / ``error`` is set.  ``attempts`` counts
    pool submissions (> 1 means the cell survived a worker crash);
    ``from_cache`` marks cells answered by the content-addressed cache
    without ever reaching a worker.
    """

    spec: CellSpec
    result: ExperimentResult | None = None
    error: str | None = None
    from_cache: bool = False
    attempts: int = 0


class _CellTicket:
    """One submitted cell's handle: cancellation flag + retry count."""

    __slots__ = ("spec", "key", "callback", "attempts", "cancelled")

    def __init__(self, spec: CellSpec, key: str | None, callback) -> None:
        self.spec = spec
        self.key = key
        self.callback = callback
        self.attempts = 0
        self.cancelled = False


class CellExecutor:
    """A persistent worker pool executing cells one callback at a time.

    This is ``run_cells``'s engine, factored out so long-lived callers
    (the ``afraid-sim serve`` job manager) can drive cells incrementally:
    submit whenever work arrives, observe each completion the moment it
    happens, and keep the pool warm across submissions instead of paying
    process startup per sweep.

    Guarantees:

    * **Cache write-through** — a finished cell is persisted before its
      callback fires, so identical future cells are cache hits.
    * **Crash-safe requeue** — a worker dying mid-cell (``os._exit``,
      OOM-kill, segfault) breaks the whole ``ProcessPoolExecutor``; the
      executor rebuilds the pool and resubmits every in-flight cell, up
      to ``max_attempts`` tries each, before reporting failure.
    * **Ordinary exceptions stay fatal** — a cell that *raises* is
      deterministic (fresh simulator, explicit seed) and would fail again,
      so it is reported immediately rather than retried.

    Callbacks run on the dispatcher thread; keep them short.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        cell_fn: typing.Callable[[CellSpec], ExperimentResult] | None = None,
        max_attempts: int = 3,
        on_worker_restart: typing.Callable[[], None] | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.jobs = jobs
        self.cache = cache
        self.cell_fn = cell_fn if cell_fn is not None else run_cell
        self.max_attempts = max_attempts
        self.on_worker_restart = on_worker_restart
        self.worker_restarts = 0
        self._queue: collections.deque[_CellTicket] = collections.deque()
        self._wake = threading.Condition()
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None
        self._thread: threading.Thread | None = None
        self._stopping = False
        self._discard = False
        self._inflight_count = 0

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "CellExecutor":
        """Start the dispatcher thread (idempotent); returns self."""
        with self._wake:
            if self._thread is None:
                self._stopping = False
                self._thread = threading.Thread(
                    target=self._dispatch_loop, name="cell-executor", daemon=True
                )
                self._thread.start()
        return self

    def shutdown(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the dispatcher.

        ``drain=True`` finishes every queued and in-flight cell first
        (callbacks included); ``drain=False`` discards the queue and
        abandons in-flight work without waiting for it.
        """
        with self._wake:
            self._stopping = True
            self._discard = not drain
            if self._discard:
                for ticket in self._queue:
                    ticket.cancelled = True
                self._queue.clear()
            self._wake.notify_all()
            thread = self._thread
        if thread is not None:
            thread.join(timeout)
        pool = self._pool
        if pool is not None:
            pool.shutdown(wait=drain, cancel_futures=not drain)
            self._pool = None

    # -- submission --------------------------------------------------------------

    def probe_cache(self, spec: CellSpec) -> tuple[str | None, ExperimentResult | None]:
        """The cell's cache key and its cached result, if any."""
        if self.cache is None:
            return None, None
        key = cache_key(spec)
        return key, self.cache.load(key)

    def submit(
        self,
        spec: CellSpec,
        callback: typing.Callable[[CellOutcome], None],
        key: str | None = None,
        probe_cache: bool = True,
    ) -> _CellTicket:
        """Queue one cell; ``callback`` fires exactly once with its outcome.

        When ``probe_cache`` is true and the cell is already cached, the
        callback fires synchronously on the *calling* thread with
        ``from_cache=True`` — the warm path never touches the queue, the
        dispatcher, or the worker pool.
        """
        if probe_cache and self.cache is not None:
            if key is None:
                key = cache_key(spec)
            hit = self.cache.load(key)
            if hit is not None:
                ticket = _CellTicket(spec, key, callback)
                callback(CellOutcome(spec=spec, result=hit, from_cache=True))
                return ticket
        ticket = _CellTicket(spec, key, callback)
        with self._wake:
            if self._stopping:
                raise RuntimeError("CellExecutor is shut down")
            self._queue.append(ticket)
            self._wake.notify_all()
        return ticket

    def cancel(self, ticket: _CellTicket) -> None:
        """Drop a queued cell; an already-running cell finishes silently."""
        ticket.cancelled = True

    @property
    def queue_depth(self) -> int:
        """Cells waiting for a worker (in-flight cells not included)."""
        return len(self._queue)

    @property
    def inflight(self) -> int:
        """Cells currently running on a worker."""
        return self._inflight_count

    # -- dispatcher --------------------------------------------------------------

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def _restart_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
            self.worker_restarts += 1
            if self.on_worker_restart is not None:
                self.on_worker_restart()

    def _finish(self, ticket: _CellTicket, outcome: CellOutcome) -> None:
        if outcome.result is not None and self.cache is not None and ticket.key is not None:
            self.cache.store(ticket.key, outcome.result)
        if not ticket.cancelled:
            ticket.callback(outcome)

    def _dispatch_loop(self) -> None:
        inflight: dict[concurrent.futures.Future, _CellTicket] = {}
        while True:
            with self._wake:
                while not self._stopping and not self._queue and not inflight:
                    self._wake.wait()
                if self._stopping and self._discard:
                    # Abandon in-flight work: tickets are cancelled so their
                    # callbacks never fire; the workers' current cells finish
                    # in the background and are discarded.
                    for ticket in inflight.values():
                        ticket.cancelled = True
                    break
                if self._stopping and not inflight and not self._queue:
                    break
                while self._queue and len(inflight) < self.jobs:
                    ticket = self._queue.popleft()
                    if ticket.cancelled:
                        continue
                    ticket.attempts += 1
                    try:
                        future = self._ensure_pool().submit(self.cell_fn, ticket.spec)
                    except concurrent.futures.BrokenExecutor:
                        self._restart_pool()
                        ticket.attempts -= 1
                        self._queue.appendleft(ticket)
                        continue
                    inflight[future] = ticket
                self._inflight_count = len(inflight)
            if not inflight:
                continue
            done, _not_done = concurrent.futures.wait(
                inflight, timeout=0.5, return_when=concurrent.futures.FIRST_COMPLETED
            )
            requeue: list[_CellTicket] = []
            for future in done:
                ticket = inflight.pop(future)
                try:
                    result = future.result()
                except concurrent.futures.BrokenExecutor:
                    # The worker died (os._exit / kill / segfault): the pool
                    # is unusable and every sibling future will fail the same
                    # way as it drains through `done` on later iterations.
                    self._restart_pool()
                    if ticket.cancelled:
                        continue
                    if ticket.attempts >= self.max_attempts:
                        self._finish(
                            ticket,
                            CellOutcome(
                                spec=ticket.spec,
                                error=(
                                    f"worker crashed {ticket.attempts} times running "
                                    f"{ticket.spec.key}"
                                ),
                                attempts=ticket.attempts,
                            ),
                        )
                    else:
                        requeue.append(ticket)
                except Exception as exc:
                    self._finish(
                        ticket,
                        CellOutcome(
                            spec=ticket.spec,
                            error=f"{type(exc).__name__}: {exc}",
                            attempts=ticket.attempts,
                        ),
                    )
                else:
                    self._finish(
                        ticket,
                        CellOutcome(spec=ticket.spec, result=result, attempts=ticket.attempts),
                    )
            with self._wake:
                self._inflight_count = len(inflight)
                if requeue and not self._discard:
                    self._queue.extendleft(reversed(requeue))
                self._wake.notify_all()
        with self._wake:
            self._thread = None


@dataclasses.dataclass
class SweepOutcome:
    """A finished sweep: the grid plus where each cell came from."""

    results: dict[tuple[str, str], ExperimentResult]
    simulated: int
    cached: int
    wall_s: float

    def __getitem__(self, key: tuple[str, str]) -> ExperimentResult:
        return self.results[key]


def run_cell(spec: CellSpec, checkpoint_dir: str | None = None) -> ExperimentResult:
    """Simulate one cell (the process-pool work function).

    ``checkpoint_dir`` routes the cell's replay through the incremental
    checkpoint store (see :mod:`repro.harness.checkpoint`): a re-run or a
    longer-``duration_s`` variant of an already-simulated cell pays only
    the un-simulated suffix.  Deliberately *not* part of the cell's cache
    key — it changes where the work happens, never the result.  Thread it
    into a :class:`CellExecutor` with
    ``functools.partial(run_cell, checkpoint_dir=...)`` (picklable, so it
    crosses the process pool).
    """
    return run_experiment(
        spec.workload,
        spec.policy.build(),
        duration_s=spec.duration_s,
        seed=spec.seed,
        ndisks=spec.ndisks,
        stripe_unit_sectors=spec.stripe_unit_sectors,
        organization=spec.organization,
        idle_threshold_s=spec.idle_threshold_s,
        extra_settle_s=spec.extra_settle_s,
        checkpoint_dir=checkpoint_dir,
    )


def run_cells(
    specs: typing.Sequence[CellSpec],
    jobs: int = 1,
    cache_dir: str | os.PathLike | None = None,
    counters: PerfCounters | None = None,
    checkpoint_dir: str | None = None,
) -> SweepOutcome:
    """Run every cell, in parallel when ``jobs > 1``, through the cache.

    Results are keyed by ``(workload, policy label)``.  ``jobs`` counts
    worker processes; cells already in the cache never reach a worker, so
    a warm rerun is pure I/O.  Cell order never affects results — each
    cell is a fresh simulator with its own explicitly-seeded RNG.
    ``checkpoint_dir`` additionally resumes each simulated cell from the
    deepest stored replay checkpoint (exact-result cache and incremental
    checkpoints compose: the cache skips finished cells, the store
    accelerates the ones that still must run).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    started = time.perf_counter()
    cell_fn = (
        run_cell
        if checkpoint_dir is None
        else functools.partial(run_cell, checkpoint_dir=os.fspath(checkpoint_dir))
    )
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    results: dict[tuple[str, str], ExperimentResult] = {}
    pending: list[tuple[CellSpec, str | None]] = []

    for spec in specs:
        key = cache_key(spec) if cache is not None else None
        hit = cache.load(key) if cache is not None else None
        if hit is not None:
            results[spec.key] = hit
        else:
            pending.append((spec, key))

    cached = len(results)
    if counters is not None:
        counters.count("cells_cached", cached)

    if pending:
        completed = 0
        if jobs == 1:
            try:
                for spec, key in pending:
                    result = cell_fn(spec)
                    results[spec.key] = result
                    if cache is not None and key is not None:
                        cache.store(key, result)
                    completed += 1
            except KeyboardInterrupt:
                raise SweepInterrupted(cached + completed, len(specs)) from None
        else:
            executor = CellExecutor(jobs=jobs, cache=cache, cell_fn=cell_fn).start()
            outcomes: list[CellOutcome] = []
            done = threading.Event()

            def collect(outcome: CellOutcome) -> None:
                outcomes.append(outcome)
                if len(outcomes) == len(pending):
                    done.set()

            try:
                for spec, key in pending:
                    executor.submit(spec, collect, key=key, probe_cache=False)
                while not done.wait(0.2):
                    pass
            except KeyboardInterrupt:
                executor.shutdown(drain=False)
                raise SweepInterrupted(cached + len(outcomes), len(specs)) from None
            executor.shutdown(drain=True)
            for outcome in outcomes:
                if outcome.error is not None:
                    raise RuntimeError(
                        f"cell {outcome.spec.key} failed: {outcome.error}"
                    )
            # Completion order is nondeterministic; key the grid in spec order.
            by_spec = {id(outcome.spec): outcome.result for outcome in outcomes}
            for spec, _key in pending:
                results[spec.key] = by_spec[id(spec)]

    if counters is not None:
        counters.count("cells_simulated", len(pending))
        counters.count("ios_serviced", sum(r.reads + r.writes for r in results.values()))
    return SweepOutcome(
        results=results,
        simulated=len(pending),
        cached=cached,
        wall_s=time.perf_counter() - started,
    )


def merged_histograms(results: typing.Iterable[ExperimentResult]) -> HistogramSet:
    """Merge every result's latency histograms into one set.

    Merging is *exact*: bucket counts add elementwise, so the percentiles
    of the merged set equal those of a single-process run over the same
    cells — the property that makes ``jobs=4`` results trustworthy.
    Results without histograms (pre-observability cache entries) are
    skipped.
    """
    merged = HistogramSet()
    for result in results:
        hists = result.histogram_set()
        if hists is not None:
            merged.merge(hists)
    return merged


def merged_exposure_histograms(results: typing.Iterable[ExperimentResult]) -> HistogramSet:
    """Merge every result's dirty-dwell exposure histograms into one set.

    Same exact-merge guarantee as :func:`merged_histograms`, applied to
    the ``dirty_dwell*`` classes the per-worker
    :class:`~repro.obs.ExposureMonitor` recorded.  Results without
    exposure histograms (pre-exposure cache entries) are skipped.
    """
    merged = HistogramSet()
    for result in results:
        hists = result.exposure_histogram_set()
        if hists is not None:
            merged.merge(hists)
    return merged


def ladder_specs(
    workloads: typing.Sequence[str],
    targets: typing.Sequence[float],
    include_raid5: bool = True,
    include_raid0: bool = True,
    **cell_kwargs,
) -> list[CellSpec]:
    """The full (workload × policy ladder) grid as cell specs.

    Mirrors :func:`repro.harness.sweeps.policy_ladder`'s ordering: RAID 5,
    MTTDL_x targets tight to loose, baseline AFRAID, RAID 0.
    """
    policies: list[PolicySpec] = []
    if include_raid5:
        policies.append(PolicySpec("raid5"))
    for target in sorted(targets, reverse=True):
        policies.append(PolicySpec("mttdl", mttdl_target=target))
    policies.append(PolicySpec("afraid"))
    if include_raid0:
        policies.append(PolicySpec("raid0"))
    return [
        CellSpec(workload=workload, policy=policy, **cell_kwargs)
        for workload in workloads
        for policy in policies
    ]
