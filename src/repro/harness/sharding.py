"""Time-sliced trace replay with deterministic shard handoff.

A long trace is replayed as consecutive time slices ("shards"); the
complete simulation state at each slice boundary — disk head positions,
NVRAM mark memory, parity-lag integrals, caches, the event kernel itself
— is serialised and handed to the next shard, which resumes bit-exactly
where the previous one stopped.  The handoff payload is a pickle, so a
shard can run in a different worker process than its predecessor
(``submit`` below plugs into the sweep pool of :mod:`repro.harness.runner`).

Correctness contract: the sharded replay is **byte-identical** to
:func:`repro.harness.replay.replay_trace` on the same inputs, for any
shard count.  Three properties make that hold:

* **Quiescent cuts.**  A shard may only end when the simulator is
  completely empty — no heap entries, no current-instant bucket — and
  strictly before the next shard's first effective arrival.  Everything
  the drain dispatched (completions, idle declarations, scrub passes) is
  exactly what the unsharded run would have dispatched before that
  arrival, in the same order.  If the drain overruns the next arrival
  (e.g. the ATT trace's scarce idle windows), the cut is invalid and the
  slice is *extended* — in the limit a trace with no usable gap
  degenerates to one shard, which is trivially identical.
* **Arrival-chain replication.**  The open-loop feeder realises record
  ``k`` at ``A_k = A_{k-1} + (t_k - A_{k-1})`` — floating-point addition
  is not associative, so a resumed shard must not recompute the arrival
  from its own restore time.  The handoff carries ``last_arrival_s`` and
  the resumed feeder's first timer is scheduled at that exact chained
  instant (and with the same sequence-number budget: one timer, no
  bootstrap kick), so every later ``(time, seq)`` tie-break is unchanged.
* **Snapshot fidelity.**  The pickle round-trip preserves value state
  bit-for-bit (floats, dict/deque order, the pending-value sentinel —
  see ``_PendingType.__reduce__`` in :mod:`repro.sim.events`).  At a
  quiescent cut no generator frames are live, so the graph contains no
  unpicklable objects.

Sharding assumes a healthy run (no fault injection mid-trace) and no
attached observability sinks holding OS handles; ``replay_digest``
fingerprints the observable results for N-vs-1 determinism checks.
"""

from __future__ import annotations

import contextlib
import dataclasses
import gc
import hashlib
import os
import pickle
import struct
import typing
from heapq import heappush as _heappush

from repro.array.controller import DiskArray
from repro.array.batchplan import warm_extent_cache
from repro.harness.replay import ReplayOutcome, _Feeder, gather
from repro.sim import Event, Simulator

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.harness.checkpoint import CheckpointScope
    from repro.traces import Trace

#: Pickle protocol for every shard handoff and checkpoint payload.
#: Pinned explicitly (not ``HIGHEST_PROTOCOL``) so payloads written by
#: one Python version are readable by another, and so the checkpoint
#: store can name the exact protocol it expects when rejecting entries
#: from a different repro build (see :mod:`repro.harness.checkpoint`).
PICKLE_PROTOCOL = 5


@dataclasses.dataclass
class ShardReplayResult:
    """Everything a sharded replay reports, as plain picklable values.

    The final shard may stop at the measurement horizon with background
    machinery (the scrub generator) suspended mid-flight, so the live
    simulator cannot cross the process boundary back to the caller —
    the counters, latency stream, and parity-lag integrals can.
    """

    outcome: ReplayOutcome
    stats: typing.Any  # repro.array.controller.ArrayStats
    disk_stats: list  # repro.disk.disk.DiskStats per member, in order
    #: (unprotected_fraction, mean_lag_bytes, peak_lag_bytes, total_time)
    parity_lag: tuple[float, float, float, float]
    #: Events dispatched by *this* run (not the whole simulated history):
    #: a checkpoint-resumed replay reports only its delta, and a full
    #: store hit reports 0.  Excluded from :func:`replay_digest` — it
    #: describes the run, not the simulated results.
    events_simulated: int = 0
    #: Extra per-run values collected by ``finish_shard``'s ``extras_fn``
    #: (e.g. histogram payloads for :func:`repro.harness.experiment`).
    extras: dict | None = None

    @classmethod
    def from_array(cls, array: DiskArray, outcome: ReplayOutcome) -> "ShardReplayResult":
        tracker = array.lag_tracker
        return cls(
            outcome=outcome,
            stats=array.stats,
            disk_stats=[disk.stats for disk in array.disks],
            parity_lag=(
                tracker.unprotected_fraction,
                tracker.mean_parity_lag_bytes,
                tracker.peak_parity_lag_bytes,
                tracker.total_time,
            ),
        )


@dataclasses.dataclass
class ShardHandoff:
    """Boundary state between consecutive shards."""

    #: Pickle of ``(sim, array, requests, completions)`` at quiescence.
    payload: bytes
    #: Records consumed from the slice this shard was given (≥ the
    #: tentative count when an invalid cut forced an extension).
    consumed: int
    #: Effective arrival instant of the last submitted record (the
    #: feeder's float chain value, not the nominal record timestamp).
    last_arrival_s: float
    #: Simulated time at the quiescent cut.
    cut_time_s: float
    #: Events this shard step dispatched, extension retries included.
    events: int = 0


@contextlib.contextmanager
def _gc_paused():
    """Suspend cyclic GC for a bounded replay burst (see replay_trace)."""
    paused = gc.isenabled()
    if paused:
        gc.disable()
    try:
        yield
    finally:
        if paused:
            gc.enable()


def _snapshot(sim, array, requests, completions) -> bytes:
    return pickle.dumps(
        (sim, array, requests, completions), protocol=PICKLE_PROTOCOL
    )


def _arm_feeder(sim, array, records, requests, completions, first_shard, last_arrival_s):
    """Start the slice's feeder; returns its done event.

    The first shard boots exactly like :func:`replay_trace` (bootstrap
    kick, one sequence number).  A resumed shard instead schedules the
    inter-arrival timer the unsharded feeder would have armed at the
    previous record's wake: same chained fire time, same single sequence
    number, no kick.
    """
    warm_extent_cache(array.layout, records)
    feeder = _Feeder(sim, array, records, requests, completions)
    if first_shard:
        return feeder.start()
    target = last_arrival_s + (records[0].time_s - last_arrival_s)
    timer = Event.__new__(Event)
    timer.sim = sim
    timer.name = ""
    timer.callbacks = [feeder._fire]
    timer.defused = False
    timer._value = None
    timer._exception = None
    timer._scheduled = True
    timer._handled = False
    sim._sequence += 1
    if target > sim._now:
        _heappush(sim._queue, (target, sim._sequence, timer))
    else:
        sim._bucket.append(timer)
    return feeder.done


def advance_shard(
    payload: bytes,
    remaining: list,
    tentative: int,
    first_shard: bool,
    last_arrival_s: float,
) -> ShardHandoff | None:
    """Replay a prefix of ``remaining`` records and cut at quiescence.

    ``tentative`` is the requested slice length; the actual cut extends
    past it whenever draining to quiescence would overrun the next
    arrival (the validity condition above).  Runs from — and, on an
    invalid cut, retries from — the ``payload`` snapshot, so the final
    attempt is the only one that leaves a trace in the returned state.

    Returns ``None`` when the extension consumes every remaining record
    without finding a valid cut — i.e. from this start there is no
    quiescent gap at all.  The caller must then fold the whole tail into
    the final shard: a cut may only land *between* arrivals, never past
    the trace's end, because the closing flow (:func:`finish_shard`)
    clamps at the measurement horizon whereas a quiescence drain would
    run trailing background work (the AFRAID scrub) to exhaustion —
    beyond what the horizon admits.
    """
    total = len(remaining)
    stop = tentative
    if stop >= total:
        return None
    events = 0
    with _gc_paused():
        while True:
            sim, array, requests, completions = pickle.loads(payload)
            base = sim.events_dispatched
            done = _arm_feeder(
                sim, array, remaining[:stop], requests, completions, first_shard, last_arrival_s
            )
            sim.run_until_triggered(done)
            arrival = sim._now
            sim.run()  # drain to complete quiescence
            events += sim.events_dispatched - base
            target = arrival + (remaining[stop].time_s - arrival)
            if sim._now < target:
                return ShardHandoff(
                    _snapshot(sim, array, requests, completions), stop, arrival, sim._now,
                    events,
                )
            # The tail (idle declaration, scrub pass) ran past the next
            # arrival: the unsharded run would have interleaved them.  Extend
            # the slice beyond everything the drain overlapped and retry.
            extended = stop + 1
            while extended < total and remaining[extended].time_s <= sim._now:
                extended += 1
            if extended >= total:
                return None
            stop = extended


def finish_shard(
    payload: bytes,
    remaining: list,
    first_shard: bool,
    last_arrival_s: float,
    duration_s: float,
    extra_settle_s: float,
    finalize: bool,
    extras_fn: typing.Callable[..., dict] | None = None,
) -> bytes:
    """Replay the final slice and close the books like ``replay_trace``.

    ``extras_fn(sim, array)`` — a module-level (picklable) callable —
    runs after finalisation and its return value lands in
    ``ShardReplayResult.extras``; callers that need more than the
    counters (histogram payloads, end-state gauges) collect them here,
    on whichever side of the process boundary the final shard ran.

    Returns a pickle of the :class:`ShardReplayResult`.
    """
    sim, array, requests, completions = pickle.loads(payload)
    base = sim.events_dispatched
    with _gc_paused():
        if remaining:
            done = _arm_feeder(
                sim, array, remaining, requests, completions, first_shard, last_arrival_s
            )
            sim.run_until_triggered(done)
        outcomes = sim.run_until_triggered(gather(sim, completions))
        failures = [value for ok, value in outcomes if not ok]
        horizon = max(duration_s, sim.now) + extra_settle_s
        sim.run(until=horizon)
    if finalize:
        array.finalize()
    outcome = ReplayOutcome(requests=requests, failures=failures, horizon_s=horizon)
    result = ShardReplayResult.from_array(array, outcome)
    result.events_simulated = sim.events_dispatched - base
    if extras_fn is not None:
        result.extras = extras_fn(sim, array)
    return pickle.dumps(result, protocol=PICKLE_PROTOCOL)


def replay_trace_sharded(
    sim: Simulator,
    array: DiskArray,
    trace: "Trace",
    shards: int = 1,
    extra_settle_s: float = 0.0,
    finalize: bool = True,
    submit: typing.Callable[..., typing.Any] | None = None,
    checkpoint: "CheckpointScope | None" = None,
    extras_fn: typing.Callable[..., dict] | None = None,
) -> ShardReplayResult:
    """Replay ``trace`` in ``shards`` consecutive time slices.

    ``sim``/``array`` must be freshly built (nothing scheduled, nothing
    submitted).  ``submit(fn, *args)`` runs one shard step and returns its
    result — pass a pool adapter (e.g. ``lambda fn, *a:
    pool.submit(fn, *a).result()``) to execute each shard in a worker
    process; the default runs in-process.  Either way the handoff is the
    same pickled payload, so the in-process mode exercises (and proves)
    snapshot fidelity too.

    ``checkpoint`` — a :class:`repro.harness.checkpoint.CheckpointScope`
    — turns the replay incremental: the run resumes from the deepest
    stored quiescent cut whose record prefix matches this trace, every
    new cut (and the final result) is persisted as it is produced, and a
    byte-identical re-run returns the stored result without simulating
    at all.  The returned result is bit-identical to a cold replay for
    any store state; ``events_simulated`` reports how much simulation
    this particular run actually paid.

    Returns the :class:`ShardReplayResult` — byte-identical (see
    :func:`replay_digest`) to ``replay_trace`` on the same inputs for any
    ``shards`` ≥ 1.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if submit is None:
        def submit(fn, *args):
            return fn(*args)
    records = list(trace)
    duration_s = trace.duration_s
    if checkpoint is not None:
        stored = checkpoint.lookup_final(records, duration_s, extra_settle_s, finalize)
        if stored is not None:
            result = pickle.loads(stored)
            result.events_simulated = 0
            return result
    payload = _snapshot(sim, array, [], [])

    # Tentative cut indices at equal time slices of the nominal duration.
    cuts: list[int] = []
    total = len(records)
    for i in range(1, shards):
        t = duration_s * i / shards
        index = 0
        while index < total and records[index].time_s < t:
            index += 1
        if 0 < index < total:
            cuts.append(index)
    cuts = sorted(set(cuts))

    start = 0
    first_shard = True
    last_arrival = 0.0
    events = 0
    if checkpoint is not None:
        resumed = checkpoint.lookup_cut(records)
        if resumed is not None:
            payload = resumed.payload
            start = resumed.consumed
            last_arrival = resumed.last_arrival_s
            first_shard = False
    for cut in cuts:
        if cut <= start:  # an earlier extension (or a resume) covered this cut
            continue
        handoff = submit(
            advance_shard, payload, records[start:], cut - start, first_shard, last_arrival
        )
        if handoff is None:
            # No quiescent gap anywhere past this point; the rest of the
            # trace runs as one final shard.
            break
        payload = handoff.payload
        start += handoff.consumed
        last_arrival = handoff.last_arrival_s
        first_shard = False
        events += handoff.events
        if checkpoint is not None:
            checkpoint.store_cut(records, start, handoff)
    final_payload = submit(
        finish_shard,
        payload,
        records[start:],
        first_shard,
        last_arrival,
        duration_s,
        extra_settle_s,
        finalize,
        extras_fn,
    )
    if checkpoint is not None:
        checkpoint.store_final(records, duration_s, extra_settle_s, finalize, final_payload)
    result = pickle.loads(final_payload)
    result.events_simulated += events
    return result


#: Policies a sharded replay can be parameterised with by name (the
#: spec-string surface used by the CLI and CI determinism checks; the
#: registry idiom matches repro.faults.campaign).
_POLICIES: dict[str, type] = {}


def _policy_registry() -> dict[str, type]:
    if not _POLICIES:
        from repro.policy import (
            AlwaysRaid5Policy,
            BaselineAfraidPolicy,
            NeverScrubPolicy,
        )

        _POLICIES.update(
            afraid=BaselineAfraidPolicy, raid5=AlwaysRaid5Policy, raid0=NeverScrubPolicy
        )
    return _POLICIES


def run_sharded_replay(
    workload: str,
    policy: str = "afraid",
    duration_s: float = 30.0,
    seed: int = 42,
    shards: int = 1,
    workers: int | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_max_bytes: int | None = None,
) -> tuple[ShardReplayResult, str]:
    """Build a fresh paper-configuration array and replay ``workload`` sharded.

    ``workers > 0`` runs each shard step in a process pool (the handoff
    travels through real pickled IPC); ``workers == 0`` runs in-process,
    still pickling between shards.  ``workers=None`` (the default) picks
    ``min(shards, os.cpu_count())`` — a multi-shard replay uses the pool
    automatically — except for the single-shard case, which stays
    in-process.  Returns the result and its :func:`replay_digest`
    fingerprint — byte-identical for every ``(shards, workers)``
    combination.

    ``checkpoint_dir`` names an on-disk :class:`~repro.harness.checkpoint.
    CheckpointStore`: quiescent cuts and the final result are persisted
    there and re-runs resume from the deepest matching prefix.
    ``checkpoint_max_bytes`` prunes the store's oldest entries past that
    size after the run (mirroring the sweep cache's ``--cache-max-bytes``).
    """
    from repro.array.factory import build_array
    from repro.traces.catalog import make_trace

    policy_cls = _policy_registry().get(policy)
    if policy_cls is None:
        raise ValueError(
            f"unknown policy {policy!r}; choose from {sorted(_policy_registry())}"
        )
    if workers is None:
        workers = min(shards, os.cpu_count() or 1) if shards > 1 else 0
    sim = Simulator()
    array = build_array(sim, policy_cls())
    trace = make_trace(
        workload,
        duration_s=duration_s,
        seed=seed,
        address_space_sectors=array.layout.total_data_sectors,
    )
    scope = None
    store = None
    if checkpoint_dir is not None:
        from repro.harness.checkpoint import CheckpointStore

        store = CheckpointStore(checkpoint_dir)
        scope = store.scope(
            {
                "surface": "run_sharded_replay",
                "workload": workload,
                "seed": seed,
                "policy": policy,
                "array": "paper-default",
            }
        )
    if workers > 0:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=workers) as pool:
            result = replay_trace_sharded(
                sim, array, trace, shards=shards,
                submit=lambda fn, *fnargs: pool.submit(fn, *fnargs).result(),
                checkpoint=scope,
            )
    else:
        result = replay_trace_sharded(sim, array, trace, shards=shards, checkpoint=scope)
    if store is not None and checkpoint_max_bytes is not None:
        store.prune(checkpoint_max_bytes)
    return result, replay_digest(result)


def replay_digest(result: ShardReplayResult) -> str:
    """Order-sensitive fingerprint of a replay's observable results.

    Covers the per-request latency stream (exact doubles, in completion
    order), every controller counter, each member disk's mechanical
    integrals, the parity-lag integrals, and the horizon — the same
    surface the golden-replay gate asserts on.  Equal digests mean the
    runs were byte-identical as far as any consumer can tell.
    """
    digest = hashlib.sha256()
    stats = dataclasses.asdict(result.stats)
    io_times = stats.pop("io_times")
    digest.update(struct.pack(f"<{len(io_times)}d", *io_times))
    for key in sorted(stats):
        digest.update(f"{key}={stats[key]};".encode())
    for d in result.disk_stats:
        digest.update(
            struct.pack(
                "<4d4q",
                d.busy_time, d.seek_time, d.rotational_latency, d.transfer_time,
                d.reads, d.writes, d.sectors_read, d.sectors_written,
            )
        )
    digest.update(struct.pack("<4d", *result.parity_lag))
    digest.update(struct.pack("<d", result.outcome.horizon_s))
    return digest.hexdigest()
