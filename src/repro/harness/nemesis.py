"""Drive live traffic under a continuous nemesis and write its artefacts.

:func:`run_nemesis` is the workload side of the
:class:`~repro.faults.nemesis.NemesisLoop`: it builds a fresh array with
the full telemetry stack attached (registry, exposure monitor, SLO
engine, latency histograms, correlation timeline), replays the seeded
workload open-loop while the nemesis ticks alongside it, then drains the
array campaign-style — completions gathered, settle time, in-flight
rebuild allowed to finish, parity debt force-scrubbed — with the loop's
telemetry pass still running, so recoveries that happen during the drain
are real timeline events rather than horizon artifacts.

Everything in the resulting :class:`NemesisOutcome` derives from the
(spec, seed) pair — no wall clocks anywhere — so
:func:`write_nemesis_report` emits byte-identical files across reruns,
the property CI's soak job enforces with a binary diff.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import typing

from repro.array.factory import build_array
from repro.array.request import ArrayRequest
from repro.faults.campaign import _DISK_FACTORIES, _POLICIES
from repro.faults.nemesis import NemesisLoop, NemesisSpec
from repro.harness.replay import gather
from repro.obs import (
    ExposureMonitor,
    HistogramSet,
    MetricsRegistry,
    SloEngine,
    SloRule,
    prometheus_text,
)
from repro.obs.timeline import LatencyWindows, Timeline
from repro.sim import Simulator
from repro.traces import make_trace


@dataclasses.dataclass
class NemesisOutcome:
    """Everything one seeded nemesis run produced."""

    spec: NemesisSpec
    seed: int
    timeline: Timeline
    loop: NemesisLoop
    engine: SloEngine
    registry: MetricsRegistry
    hists: HistogramSet
    requests: dict
    horizon_s: float

    @property
    def violations(self) -> list[str]:
        return self.timeline.check_invariants()

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary_payload(self) -> dict:
        """The byte-stable JSON summary (everything sim/seed-derived)."""
        tracker = self.loop.tracker
        return {
            "nemesis": {"seed": self.seed, "spec": self.spec.to_dict()},
            "horizon_s": self.horizon_s,
            "requests": self.requests,
            "faults": {
                "injected": tracker.counts(),
                "open_at_end": [fault.event.id for fault in tracker.open_faults()],
                "holds": self.loop.holds,
                "resumes": self.loop.resumes,
                "dropped": len(self.loop.dropped),
                "spares_used": self.spec.spare_pool - self.loop.spares_left,
            },
            "slo": {
                "rules": [rule.describe() for rule in self.engine.rules],
                "rows": self.engine.summary_rows(),
            },
            "timeline": {
                "events": len(self.timeline),
                "kinds": dict(sorted(self.timeline.kinds().items())),
                "dropped": self.timeline.dropped,
            },
            "invariants": {"ok": self.ok, "violations": self.violations},
        }


def run_nemesis(
    spec: NemesisSpec,
    seed: int,
    rules: typing.Sequence[SloRule | str] = (),
    *,
    window_s: float = 2.0,
) -> NemesisOutcome:
    """Run one seeded continuous-nemesis soak; deterministic per (spec, seed)."""
    sim = Simulator()
    registry = MetricsRegistry()
    monitor = ExposureMonitor(window_s=window_s)
    engine = SloEngine(
        [rule if isinstance(rule, SloRule) else SloRule.parse(rule) for rule in rules]
    )
    timeline = Timeline()
    hists = HistogramSet()

    array = build_array(
        sim,
        _POLICIES[spec.policy](),
        ndisks=spec.ndisks,
        stripe_unit_sectors=spec.stripe_unit_sectors,
        disk_factory=_DISK_FACTORIES[spec.disk_model],
        organization=spec.organization,
        with_functional=True,
        idle_threshold_s=spec.idle_threshold_s,
        bits_per_stripe=spec.bits_per_stripe,
        name="nemesis",
    )
    array.attach_observability(histograms=hists, registry=registry, exposure=monitor)

    loop = NemesisLoop(
        sim,
        array,
        spec,
        seed,
        timeline=timeline,
        monitor=monitor,
        engine=engine,
        registry=registry,
        latency_windows=LatencyWindows(hists),
    )

    trace = make_trace(
        spec.workload,
        duration_s=spec.duration_s,
        address_space_sectors=array.layout.total_data_sectors,
        seed=seed,
        allow_generic=True,
    )
    completions = []
    failure_kinds: dict[str, int] = {}

    def feeder():
        for record in trace:
            if record.time_s > sim.now:
                yield sim.timeout(record.time_s - sim.now)
            request = ArrayRequest(
                kind=record.kind,
                offset_sectors=record.offset_sectors,
                nsectors=record.nsectors,
                sync=record.sync,
            )
            # Failures are data, not errors, under continuous chaos.
            completion = array.submit(request)
            completion.defused = True
            completions.append(completion)

    loop.start()
    feeder_proc = sim.process(feeder(), name="nemesis.feeder")
    sim.run_until_triggered(feeder_proc)
    sim.run_until_triggered(gather(sim, completions))

    # ---- drain, with the telemetry pass still ticking -------------------
    horizon = max(spec.duration_s, sim.now) + spec.settle_s
    sim.run(until=horizon)
    loop.poll(sim.now)
    # Let an in-flight spare rebuild finish (campaign-style: stop once a
    # pass dispatches nothing).
    previous_dispatched = -1
    while array.degraded_disk is not None and sim.events_dispatched != previous_dispatched:
        previous_dispatched = sim.events_dispatched
        sim.run(until=sim.now + 1.0)
        loop.poll(sim.now)
    # Drain remaining parity debt so still-open NVRAM faults can clear
    # and backlog SLOs genuinely recover before the horizon close.
    previous = -1
    while (
        array.degraded_disk is None
        and array.marks.count
        and array.marks.count != previous
    ):
        previous = array.marks.count
        array.request_scrub(force=True)
        sim.run(until=sim.now + 1.0)
        loop.poll(sim.now)

    loop.finish_engine(sim.now)
    monitor.finish(sim.now)
    array.finalize()

    requests = {"submitted": len(completions), "completed": 0, "failed": 0}
    for completion in completions:
        if completion.ok:
            requests["completed"] += 1
        else:
            requests["failed"] += 1
            name = type(completion.exception).__name__
            failure_kinds[name] = failure_kinds.get(name, 0) + 1
    requests["failure_kinds"] = dict(sorted(failure_kinds.items()))

    return NemesisOutcome(
        spec=spec,
        seed=seed,
        timeline=timeline,
        loop=loop,
        engine=engine,
        registry=registry,
        hists=hists,
        requests=requests,
        horizon_s=sim.now,
    )


def write_nemesis_report(outcome: NemesisOutcome, directory) -> dict[str, pathlib.Path]:
    """Write the run's artefacts into ``directory``; returns name -> path.

    ``timeline.jsonl`` (the byte-diffed artefact), ``trace.json`` (Chrome
    trace-event), ``metrics.prom`` (final registry + timeline counters),
    ``incident.md`` (the rendered report), ``summary.json``.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = {
        "timeline": directory / "timeline.jsonl",
        "trace": directory / "trace.json",
        "metrics": directory / "metrics.prom",
        "incident": directory / "incident.md",
        "summary": directory / "summary.json",
    }
    outcome.timeline.write_jsonl(paths["timeline"])
    outcome.timeline.write_chrome(paths["trace"])
    with open(paths["metrics"], "w", encoding="utf-8") as handle:
        handle.write(prometheus_text(outcome.registry))
        handle.write(outcome.timeline.prometheus_text())
    with open(paths["incident"], "w", encoding="utf-8") as handle:
        handle.write(
            outcome.timeline.render_report(
                title=f"Nemesis incident report (seed {outcome.seed})"
            )
        )
    with open(paths["summary"], "w", encoding="utf-8") as handle:
        handle.write(json.dumps(outcome.summary_payload(), indent=2, sort_keys=True) + "\n")
    return paths
