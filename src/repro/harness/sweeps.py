"""Parameter sweeps: the MTTDL_x ladder and the Figure 3 trade-off curve."""

from __future__ import annotations

import dataclasses
import typing

from repro.availability import ReliabilityParams, TABLE_1
from repro.harness.experiment import ExperimentResult, run_experiment
from repro.harness.runner import CellSpec, PolicySpec, run_cells
from repro.metrics import geometric_mean
from repro.policy import (
    AlwaysRaid5Policy,
    BaselineAfraidPolicy,
    MttdlTargetPolicy,
    NeverScrubPolicy,
    ParityPolicy,
)

#: The MTTDL_x targets swept for Figures 3 and 4.  The interesting band
#: for *disk-related* MTTDL lies between pure AFRAID under a busy trace
#: (~4×10⁵ h: always exposed) and pure RAID 5 (eq. (1): ~4×10⁹ h); targets
#: above what a workload's idle time can deliver push the policy towards
#: RAID 5 duty-cycling, targets below it leave pure-AFRAID behaviour.
DEFAULT_MTTDL_TARGETS: tuple[float, ...] = (1.0e9, 1.0e8, 3.0e7, 1.0e7, 3.0e6, 1.0e6)


@dataclasses.dataclass(frozen=True)
class PolicyLadderEntry:
    """A labelled policy constructor (policies are stateful: one per run).

    ``spec`` is the picklable description of the same policy; entries that
    carry one can run through the parallel sweep engine.  Custom entries
    built around arbitrary factories leave it ``None`` and run serially.
    """

    label: str
    factory: typing.Callable[[], ParityPolicy]
    spec: PolicySpec | None = None


def policy_ladder(
    targets: typing.Sequence[float] = DEFAULT_MTTDL_TARGETS,
    params: ReliabilityParams = TABLE_1,
    include_raid5: bool = True,
    include_raid0: bool = True,
) -> list[PolicyLadderEntry]:
    """RAID 5 → MTTDL_x (tight to loose) → baseline AFRAID → RAID 0.

    This is the x-axis of Figures 3 and 4: availability decreasing,
    expected performance increasing.
    """
    ladder: list[PolicyLadderEntry] = []
    if include_raid5:
        ladder.append(PolicyLadderEntry("raid5", AlwaysRaid5Policy, PolicySpec("raid5")))
    for target in sorted(targets, reverse=True):
        ladder.append(
            PolicyLadderEntry(
                f"MTTDL_{target:.0e}",
                lambda target=target: MttdlTargetPolicy(target, params=params),
                # The spec only captures the target; non-default params
                # would make the cell unrepresentable, so skip it then.
                PolicySpec("mttdl", mttdl_target=target) if params is TABLE_1 else None,
            )
        )
    ladder.append(PolicyLadderEntry("afraid", BaselineAfraidPolicy, PolicySpec("afraid")))
    if include_raid0:
        ladder.append(PolicyLadderEntry("raid0", NeverScrubPolicy, PolicySpec("raid0")))
    return ladder


#: run_experiment kwargs a CellSpec can represent (everything else forces
#: the serial path: e.g. a custom disk_factory can't cross a process).
_CELL_KWARGS = frozenset(
    {
        "duration_s",
        "seed",
        "ndisks",
        "stripe_unit_sectors",
        "idle_threshold_s",
        "extra_settle_s",
        "organization",
    }
)


def run_policy_grid(
    workloads: typing.Sequence[str],
    ladder: typing.Sequence[PolicyLadderEntry],
    jobs: int = 1,
    cache_dir: str | None = None,
    **experiment_kwargs,
) -> dict[tuple[str, str], ExperimentResult]:
    """Run every (workload, policy) cell; keys are (workload, label).

    With ``jobs > 1`` or a ``cache_dir``, cells go through the parallel
    sweep engine (:mod:`repro.harness.runner`) — results are bit-identical
    to the serial path because every cell is an isolated simulator with
    explicit seeding.  Entries without a :class:`PolicySpec`, or kwargs a
    :class:`CellSpec` can't carry, fall back to the in-process loop.
    """
    engine_eligible = (
        (jobs > 1 or cache_dir is not None)
        and all(entry.spec is not None for entry in ladder)
        and set(experiment_kwargs) <= _CELL_KWARGS
    )
    if engine_eligible:
        specs = [
            CellSpec(workload=workload, policy=entry.spec, **experiment_kwargs)
            for workload in workloads
            for entry in ladder
        ]
        return run_cells(specs, jobs=jobs, cache_dir=cache_dir).results
    grid: dict[tuple[str, str], ExperimentResult] = {}
    for workload in workloads:
        for entry in ladder:
            grid[(workload, entry.label)] = run_experiment(
                workload, entry.factory(), **experiment_kwargs
            )
    return grid


@dataclasses.dataclass(frozen=True)
class TradeoffPoint:
    """One point of Figure 3 (both axes relative to RAID 5 = 1.0)."""

    label: str
    relative_performance: float  # geo-mean of RAID5_mean_io / this_mean_io
    relative_availability: float  # geo-mean of this_MTTDL / RAID5_MTTDL


def tradeoff_curve(
    grid: dict[tuple[str, str], ExperimentResult],
    workloads: typing.Sequence[str],
    labels: typing.Sequence[str],
    baseline_label: str = "raid5",
) -> list[TradeoffPoint]:
    """Reduce a policy grid to Figure 3's relative perf/availability points.

    Availability ratios use the *overall* MTTDL (disk-related combined
    with the 2M-hour support limit), as the paper's Table 4 and Figure 3
    do — "the dominant factor in overall MTTDL comes from the support
    components" (§4.3).  This is what makes AFRAID's availability loss
    modest: the disk-related exposure is diluted by a bound the array
    could never exceed anyway.
    """
    if not workloads:
        raise ValueError("tradeoff_curve needs at least one workload")
    if not labels:
        raise ValueError("tradeoff_curve needs at least one policy label")
    points = []
    for label in labels:
        speedups = []
        availability_ratios = []
        for workload in workloads:
            this = grid[(workload, label)]
            base = grid[(workload, baseline_label)]
            if this.io_time.count == 0 or base.io_time.count == 0:
                empty = label if this.io_time.count == 0 else baseline_label
                raise ValueError(
                    f"cell ({workload!r}, {empty!r}) completed no requests; "
                    "latency ratios are undefined for an empty run"
                )
            speedups.append(base.io_time.mean / this.io_time.mean)
            availability_ratios.append(this.mttdl_overall_h / base.mttdl_overall_h)
        points.append(
            TradeoffPoint(
                label=label,
                relative_performance=geometric_mean(speedups),
                relative_availability=geometric_mean(availability_ratios),
            )
        )
    return points


#: Organizations compared by :func:`run_organization_grid`, in the order
#: they appear on the curve.  RAID 1 is omitted by default: its fixed
#: 2-disk geometry is not comparable to an N-disk array.
DEFAULT_ORGANIZATIONS: tuple[str, ...] = ("raid5", "raid5d", "raid10", "raid15")


def run_organization_grid(
    workloads: typing.Sequence[str],
    organizations: typing.Sequence[str] = DEFAULT_ORGANIZATIONS,
    ndisks: int = 6,
    jobs: int = 1,
    cache_dir: str | None = None,
    **experiment_kwargs,
) -> dict[tuple[str, str], ExperimentResult]:
    """Run the baseline AFRAID policy over every (workload, organization).

    The organization analogue of :func:`run_policy_grid`: same workloads,
    same deferred-update policy, but the redundancy scheme varies — RAID 5
    against declustered RAID 5, RAID 1/0, and hybrid RAID 1+5.  Keys are
    ``(workload, organization_name)``.  ``ndisks`` applies to every
    organization (pick one that satisfies all their geometry constraints;
    the default 6 does), except organizations that fix their disk count
    (RAID 1) which use their own.
    """
    from repro.layout import get_organization

    def disks_for(name: str) -> int:
        org = get_organization(name)
        return org.exact_disks if org.exact_disks is not None else ndisks

    engine_eligible = (jobs > 1 or cache_dir is not None) and set(
        experiment_kwargs
    ) <= (_CELL_KWARGS - {"organization", "ndisks"})
    if engine_eligible:
        specs = [
            CellSpec(
                workload=workload,
                policy=PolicySpec("afraid"),
                ndisks=disks_for(organization),
                organization=organization,
                **experiment_kwargs,
            )
            for workload in workloads
            for organization in organizations
        ]
        results = run_cells(specs, jobs=jobs, cache_dir=cache_dir).results
        # run_cells keys by (workload, policy label); re-key by organization.
        return {
            (spec.workload, spec.organization): results[spec.key]
            for spec in specs
        }
    grid: dict[tuple[str, str], ExperimentResult] = {}
    for workload in workloads:
        for organization in organizations:
            grid[(workload, organization)] = run_experiment(
                workload,
                BaselineAfraidPolicy(),
                ndisks=disks_for(organization),
                organization=organization,
                **experiment_kwargs,
            )
    return grid


def organization_tradeoff_curve(
    grid: dict[tuple[str, str], ExperimentResult],
    workloads: typing.Sequence[str],
    organizations: typing.Sequence[str] = DEFAULT_ORGANIZATIONS,
    baseline: str = "raid5",
) -> list[TradeoffPoint]:
    """Reduce an organization grid to relative perf/availability points.

    Same reduction as :func:`tradeoff_curve` (both axes relative to the
    baseline organization = 1.0), so the points drop straight onto the
    Figure 3 axes next to the policy-ladder curve.
    """
    return tradeoff_curve(grid, workloads, list(organizations), baseline_label=baseline)
