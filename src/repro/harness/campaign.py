"""Multi-seed fault-campaign suites with per-seed JSON reports.

The chaos-smoke CI job (and ``afraid-sim faults --seeds K``) drives this:
run the same :class:`~repro.faults.CampaignSpec` under many seeds, collect
every report, and write one byte-stable JSON file per seed plus a suite
summary — rerunning the same (spec, seeds) must reproduce the files
byte-for-byte, which CI checks with ``cmp``.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

from repro.faults import CampaignReport, CampaignSpec, run_campaign


@dataclasses.dataclass
class CampaignSuiteOutcome:
    """Every report a multi-seed campaign suite produced."""

    spec: CampaignSpec
    reports: list[CampaignReport]

    @property
    def ok(self) -> bool:
        return all(report.ok for report in self.reports)

    @property
    def failing_seeds(self) -> list[int]:
        return [report.seed for report in self.reports if not report.ok]

    def summary_payload(self) -> dict:
        """The suite roll-up (written as ``suite.json`` next to the seeds)."""
        totals = {
            "disk_failures": 0,
            "skipped_strikes": 0,
            "predicted_loss_bytes": 0,
            "actual_loss_bytes": 0,
            "latent_sectors_repaired": 0,
            "spares_used": 0,
        }
        for report in self.reports:
            summary = report.payload["summary"]
            for key in totals:
                totals[key] += summary[key]
        return {
            "spec": self.spec.to_dict(),
            "seeds": [report.seed for report in self.reports],
            "ok": self.ok,
            "failing_seeds": self.failing_seeds,
            "totals": totals,
        }

    def to_json(self) -> str:
        return json.dumps(self.summary_payload(), indent=2, sort_keys=True) + "\n"


def run_campaign_suite(spec: CampaignSpec, seeds: list[int]) -> CampaignSuiteOutcome:
    """Run ``spec`` once per seed (sequentially: campaigns are cheap and
    determinism reviews are easier without any scheduling jitter)."""
    return CampaignSuiteOutcome(
        spec=spec, reports=[run_campaign(spec, seed) for seed in seeds]
    )


def write_campaign_reports(outcome: CampaignSuiteOutcome, directory) -> list[pathlib.Path]:
    """Write ``seed-NNN.json`` per report plus ``suite.json``; returns paths."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[pathlib.Path] = []
    for report in outcome.reports:
        path = directory / f"seed-{report.seed:03d}.json"
        path.write_text(report.to_json(), encoding="utf-8")
        written.append(path)
    suite = directory / "suite.json"
    suite.write_text(outcome.to_json(), encoding="utf-8")
    written.append(suite)
    return written
