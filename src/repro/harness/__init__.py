"""The experiment harness: trace replay, experiments, sweeps, tables.

This is the layer every benchmark drives: it assembles a fresh simulator +
array + policy, replays a workload open-loop (§4.1), and reduces the run
to the paper's metrics — mean I/O time, parity-lag statistics, and the
derived MTTDL / MDLR figures.
"""

from repro.harness.campaign import (
    CampaignSuiteOutcome,
    run_campaign_suite,
    write_campaign_reports,
)
from repro.harness.experiment import ExperimentResult, run_experiment
from repro.harness.figures import ascii_bars, ascii_scatter, ascii_series
from repro.harness.nemesis import NemesisOutcome, run_nemesis, write_nemesis_report
from repro.harness.replay import gather, replay_trace
from repro.harness.runner import (
    DEFAULT_CACHE_DIR,
    CellExecutor,
    CellOutcome,
    CellSpec,
    PolicySpec,
    ResultCache,
    SweepInterrupted,
    SweepOutcome,
    cache_key,
    ladder_specs,
    merged_exposure_histograms,
    merged_histograms,
    run_cells,
)
from repro.harness.sweeps import (
    DEFAULT_MTTDL_TARGETS,
    PolicyLadderEntry,
    policy_ladder,
    run_policy_grid,
    tradeoff_curve,
)
from repro.harness.tables import format_quantity, format_table

__all__ = [
    "DEFAULT_CACHE_DIR",
    "DEFAULT_MTTDL_TARGETS",
    "CampaignSuiteOutcome",
    "CellExecutor",
    "CellOutcome",
    "CellSpec",
    "ExperimentResult",
    "NemesisOutcome",
    "PolicyLadderEntry",
    "PolicySpec",
    "ResultCache",
    "SweepInterrupted",
    "SweepOutcome",
    "ascii_bars",
    "ascii_scatter",
    "ascii_series",
    "cache_key",
    "format_quantity",
    "format_table",
    "gather",
    "ladder_specs",
    "merged_exposure_histograms",
    "merged_histograms",
    "policy_ladder",
    "replay_trace",
    "run_campaign_suite",
    "run_cells",
    "run_experiment",
    "run_nemesis",
    "run_policy_grid",
    "tradeoff_curve",
    "write_campaign_reports",
    "write_nemesis_report",
]
