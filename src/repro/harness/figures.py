"""ASCII rendering of the paper's figures for terminal reports.

The benchmark harness is terminal-only, so Figures 2-4 are rendered as
monospace charts: a scatter for the trade-off curve and grouped series
for per-trace comparisons.
"""

from __future__ import annotations

import typing


def ascii_scatter(
    points: typing.Sequence[tuple[float, float, str]],
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    title: str | None = None,
) -> str:
    """Plot labelled (x, y) points; first character of each label marks it.

    Axes start at 0 and auto-scale to the data (with 5% headroom).
    Collisions keep the earliest point's marker.
    """
    if not points:
        raise ValueError("nothing to plot")
    x_max = max(x for x, _y, _label in points) * 1.05 or 1.0
    y_max = max(y for _x, y, _label in points) * 1.05 or 1.0
    grid = [[" "] * (width + 1) for _ in range(height + 1)]
    legend: list[str] = []
    for x, y, label in points:
        column = min(int(x / x_max * width), width)
        row = height - min(int(y / y_max * height), height)
        marker = label[0] if label else "o"
        if grid[row][column] == " ":
            grid[row][column] = marker
        legend.append(f"{marker}={label}")

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(y_label)
    for row_index, row in enumerate(grid):
        value = y_max * (height - row_index) / height
        lines.append(f"{value:8.2f} |" + "".join(row))
    lines.append(" " * 9 + "-" * (width + 2))
    lines.append(f"{'0':>10}{x_label:^{width - 8}}{x_max:.2f}")
    lines.append("  " + "  ".join(dict.fromkeys(legend)))
    return "\n".join(lines)


def ascii_bars(
    rows: typing.Sequence[tuple[str, float]],
    width: int = 50,
    unit: str = "",
    title: str | None = None,
) -> str:
    """Horizontal bar chart: one labelled bar per row, linear scale."""
    if not rows:
        raise ValueError("nothing to plot")
    peak = max(value for _label, value in rows)
    if peak <= 0:
        raise ValueError("need at least one positive value")
    label_width = max(len(label) for label, _value in rows)
    lines: list[str] = []
    if title:
        lines.append(title)
    for label, value in rows:
        bar = "#" * max(1, int(value / peak * width)) if value > 0 else ""
        lines.append(f"{label:<{label_width}} |{bar:<{width}} {value:g}{unit}")
    return "\n".join(lines)


def ascii_series(
    x_labels: typing.Sequence[str],
    series: dict[str, typing.Sequence[float]],
    width: int = 64,
    height: int = 14,
    y_label: str = "",
    title: str | None = None,
) -> str:
    """Several named series over a shared categorical x axis."""
    if not series:
        raise ValueError("nothing to plot")
    n = len(x_labels)
    for name, values in series.items():
        if len(values) != n:
            raise ValueError(f"series {name!r} has {len(values)} points, expected {n}")
    y_max = max(max(values) for values in series.values()) * 1.05 or 1.0
    grid = [[" "] * width for _ in range(height + 1)]
    for name, values in series.items():
        marker = name[0]
        for index, value in enumerate(values):
            column = int(index / max(1, n - 1) * (width - 1))
            row = height - min(int(value / y_max * height), height)
            grid[row][column] = marker
    lines: list[str] = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(y_label)
    for row_index, row in enumerate(grid):
        value = y_max * (height - row_index) / height
        lines.append(f"{value:8.1f} |" + "".join(row))
    lines.append(" " * 9 + "-" * (width + 1))
    edge_labels = f"{x_labels[0]} ... {x_labels[-1]}"
    lines.append(" " * 10 + edge_labels)
    lines.append("  " + "  ".join(f"{name[0]}={name}" for name in series))
    return "\n".join(lines)
