"""Open-loop trace replay against an array.

Requests are issued at their trace timestamps regardless of completions
(open queueing), which is what makes the RAID 5 small-update penalty show
up as queueing delay under bursts — the effect the paper measures.
"""

from __future__ import annotations

import dataclasses
import gc

from repro.array.batchplan import warm_extent_cache
from repro.array.controller import DiskArray
from repro.array.request import ArrayRequest
from repro.sim import Event, Simulator
from repro.traces.records import Trace


def gather(sim: Simulator, events: list[Event]) -> Event:
    """An event firing once *all* ``events`` have triggered, failures included.

    Unlike :class:`~repro.sim.AllOf`, a failing child does not abort the
    gather — its exception is collected.  The value is a list of
    ``(ok, value_or_exception)`` pairs in input order.
    """
    done = sim.event(name="gather")
    results: list[tuple[bool, object]] = [(False, None)] * len(events)
    remaining = len(events)
    if remaining == 0:
        done.succeed([])
        return done

    def finish(index: int, event: Event) -> None:
        nonlocal remaining
        if event.ok:
            results[index] = (True, event.value)
        else:
            results[index] = (False, event.exception)
        remaining -= 1
        if remaining == 0:
            done.succeed(results)

    for index, event in enumerate(events):
        event.defused = True  # we are the handler of record
        if event.callbacks is None:
            # Already settled (the common case: the gather is built after
            # the feeder finishes).  Collect in place — same result, no
            # per-event closure or immediate-callback hop.
            exc = event._exception
            if exc is None:
                results[index] = (True, event._value)
            else:
                results[index] = (False, exc)
            remaining -= 1
        else:
            event.add_callback(lambda e, i=index: finish(i, e))
    if remaining == 0 and not done.triggered:
        done.succeed(results)
    return done


class _Feeder:
    """The open-loop arrival pump, as a callback state machine.

    Replicates the old generator feeder event-for-event: one bootstrap
    event (matching the ``Process`` bootstrap), one pooled timeout per
    inter-arrival gap created at the *wake* position of the previous gap
    (so its sequence number — and therefore every same-instant tie-break
    against in-flight completions — is unchanged), and a listener-free
    finish that never schedules an event (matching the process-finish
    elision in ``Process._resume``).
    """

    __slots__ = (
        "sim", "array", "records", "index", "requests", "completions", "done", "_fire_cb",
    )

    def __init__(self, sim, array, records, requests, completions) -> None:
        self.sim = sim
        #: Bound once: appended to every inter-arrival timeout.
        self._fire_cb = self._fire
        self.array = array
        self.records = records
        self.index = 0
        self.requests = requests
        self.completions = completions
        #: Triggers when the last record has been submitted.  Completed by
        #: hand exactly the way a listener-free process finishes: value
        #: set, callbacks cleared, nothing scheduled.
        self.done = Event(sim, name="trace_feeder")

    def start(self) -> Event:
        sim = self.sim
        kick = Event.__new__(Event)
        kick.sim = sim
        kick.name = ""
        kick.callbacks = [self._fire_cb]
        kick.defused = False
        kick._value = None
        kick._exception = None
        kick._scheduled = True
        kick._handled = False
        sim._sequence += 1
        sim._bucket.append(kick)
        return self.done

    def _fire(self, _event: Event) -> None:
        sim = self.sim
        array = self.array
        records = self.records
        requests = self.requests
        completions = self.completions
        index = self.index
        total = len(records)
        while index < total:
            record = records[index]
            if record.time_s > sim._now:
                timeout = sim.timeout(record.time_s - sim._now)
                timeout.callbacks.append(self._fire_cb)
                self.index = index
                return
            # ArrayRequest() inlined: TraceRecord already enforced the
            # same offset/nsectors bounds __post_init__ would re-check,
            # and one dataclass construction per record is hot at
            # whole-trace scale.
            request = ArrayRequest.__new__(ArrayRequest)
            request.__dict__ = {
                "kind": record.kind,
                "offset_sectors": record.offset_sectors,
                "nsectors": record.nsectors,
                "sync": record.sync,
                "data": None,
                "tag": None,
                "submit_time": None,
                "dispatch_time": None,
                "complete_time": None,
                "result_data": None,
                "plan": None,
            }
            requests.append(request)
            completion = array.submit(request)
            # Defuse now: under fault injection a request can fail before
            # the gather attaches, and the failure belongs to us.
            completion.defused = True
            completions.append(completion)
            index += 1
        self.index = index
        done = self.done
        done._value = None
        done.callbacks = None


@dataclasses.dataclass
class ReplayOutcome:
    """Everything a replay produced."""

    requests: list[ArrayRequest]
    failures: list[BaseException]
    horizon_s: float

    @property
    def completed(self) -> list[ArrayRequest]:
        return [request for request in self.requests if request.complete_time is not None]

    @property
    def io_times(self) -> list[float]:
        return [request.io_time for request in self.completed]


def replay_trace(
    sim: Simulator,
    array: DiskArray,
    trace: Trace,
    extra_settle_s: float = 0.0,
    finalize: bool = True,
) -> ReplayOutcome:
    """Replay ``trace`` against ``array`` and close the books.

    The measurement horizon is ``max(trace duration, last completion)``
    plus ``extra_settle_s``; the parity-lag integrals are finalised there
    (so trailing idle-time scrubbing inside the horizon counts, exactly as
    a fixed observation window would in a testbed).
    """
    requests: list[ArrayRequest] = []
    completions: list[Event] = []

    records = list(trace)
    # The whole arrival schedule is known before the clock starts: batch-map
    # its geometry once (vectorised) so per-request map_extent is a probe.
    warm_extent_cache(array.layout, records)
    # Pause cyclic GC for the bounded duration of the run: a replay
    # allocates hundreds of thousands of short-lived events that die by
    # refcount, while everything the young-generation scans keep walking
    # (requests, completions, the array graph — cyclic through the cached
    # bound-method callbacks) stays reachable until the outcome is built,
    # so mid-run collections cost double-digit time and free nothing.
    paused = gc.isenabled()
    if paused:
        gc.disable()
    try:
        feeder_done = _Feeder(sim, array, records, requests, completions).start()
        sim.run_until_triggered(feeder_done)
        outcomes = sim.run_until_triggered(gather(sim, completions))
        failures = [value for ok, value in outcomes if not ok]

        horizon = max(trace.duration_s, sim.now) + extra_settle_s
        sim.run(until=horizon)
    finally:
        if paused:
            gc.enable()
    if finalize:
        array.finalize()
    return ReplayOutcome(requests=requests, failures=failures, horizon_s=horizon)
