"""Open-loop trace replay against an array.

Requests are issued at their trace timestamps regardless of completions
(open queueing), which is what makes the RAID 5 small-update penalty show
up as queueing delay under bursts — the effect the paper measures.
"""

from __future__ import annotations

import dataclasses

from repro.array.controller import DiskArray
from repro.array.request import ArrayRequest
from repro.sim import Event, Simulator
from repro.traces.records import Trace


def gather(sim: Simulator, events: list[Event]) -> Event:
    """An event firing once *all* ``events`` have triggered, failures included.

    Unlike :class:`~repro.sim.AllOf`, a failing child does not abort the
    gather — its exception is collected.  The value is a list of
    ``(ok, value_or_exception)`` pairs in input order.
    """
    done = sim.event(name="gather")
    results: list[tuple[bool, object]] = [(False, None)] * len(events)
    remaining = len(events)
    if remaining == 0:
        done.succeed([])
        return done

    def finish(index: int, event: Event) -> None:
        nonlocal remaining
        if event.ok:
            results[index] = (True, event.value)
        else:
            results[index] = (False, event.exception)
        remaining -= 1
        if remaining == 0:
            done.succeed(results)

    for index, event in enumerate(events):
        event.defused = True  # we are the handler of record
        event.add_callback(lambda e, i=index: finish(i, e))
    return done


@dataclasses.dataclass
class ReplayOutcome:
    """Everything a replay produced."""

    requests: list[ArrayRequest]
    failures: list[BaseException]
    horizon_s: float

    @property
    def completed(self) -> list[ArrayRequest]:
        return [request for request in self.requests if request.complete_time is not None]

    @property
    def io_times(self) -> list[float]:
        return [request.io_time for request in self.completed]


def replay_trace(
    sim: Simulator,
    array: DiskArray,
    trace: Trace,
    extra_settle_s: float = 0.0,
    finalize: bool = True,
) -> ReplayOutcome:
    """Replay ``trace`` against ``array`` and close the books.

    The measurement horizon is ``max(trace duration, last completion)``
    plus ``extra_settle_s``; the parity-lag integrals are finalised there
    (so trailing idle-time scrubbing inside the horizon counts, exactly as
    a fixed observation window would in a testbed).
    """
    requests: list[ArrayRequest] = []
    completions: list[Event] = []

    def feeder():
        for record in trace:
            if record.time_s > sim.now:
                yield sim.timeout(record.time_s - sim.now)
            request = ArrayRequest(
                kind=record.kind,
                offset_sectors=record.offset_sectors,
                nsectors=record.nsectors,
                sync=record.sync,
            )
            requests.append(request)
            completion = array.submit(request)
            # Defuse now: under fault injection a request can fail before
            # the gather below attaches, and the failure belongs to us.
            completion.defused = True
            completions.append(completion)

    feeder_proc = sim.process(feeder(), name="trace_feeder")
    sim.run_until_triggered(feeder_proc)
    outcomes = sim.run_until_triggered(gather(sim, completions))
    failures = [value for ok, value in outcomes if not ok]

    horizon = max(trace.duration_s, sim.now) + extra_settle_s
    sim.run(until=horizon)
    if finalize:
        array.finalize()
    return ReplayOutcome(requests=requests, failures=failures, horizon_s=horizon)
