"""Content-addressed on-disk store for replay checkpoints.

A checkpoint is one of the quiescent-cut snapshots
:mod:`repro.harness.sharding` already produces — the full simulator +
array state at a cut, pickled — persisted so a later replay of the same
cell can resume from the longest matching trace prefix instead of
re-simulating from ``t=0``.  The final shard's :class:`ShardReplayResult`
is stored too, as the last rung of the prefix ladder: a byte-identical
re-run pays only the store lookup, a ``--duration`` extension resumes
from the deepest cut inside the new trace, and everything else falls
back to a cold replay.

Keying follows the same fingerprint discipline as
:class:`repro.harness.runner.ResultCache`:

* the **scope** (one directory per keyed configuration) hashes the cell
  configuration — workload identity, policy, array geometry,
  reliability parameters — together with :func:`code_fingerprint` and a
  schema number, so any change to the simulator's code invalidates every
  checkpoint it wrote;
* each **cut entry** additionally records the number of trace records
  consumed and a digest of exactly those records, so a checkpoint is
  only ever resumed into a trace whose prefix is bit-identical to the
  one that produced it (this is what makes ``--duration`` extension
  safe: the synthetic generators emit identical prefixes for longer
  durations, and the digest proves it);
* each **final entry** is additionally keyed on the full record count,
  the measurement-horizon inputs (duration, settle) and the finalize
  flag — everything that distinguishes one complete replay from another
  within a scope.

Entries are written atomically (tmp + rename) in a self-describing
container: a magic line, a JSON header, then the raw payload pickle.
The header names the repro version and the pinned pickle protocol
(:data:`repro.harness.sharding.PICKLE_PROTOCOL`); a mismatch on either
raises :class:`CheckpointVersionError` naming both sides, so a stale
store can never silently corrupt a resume.  A *corrupted* entry
(truncated payload, garbage header) is quietly deleted and treated as a
miss — the replay falls back to cold and rewrites it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import struct
import typing

from repro import __version__ as _REPRO_VERSION
from repro.harness.runner import code_fingerprint

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.harness.sharding import ShardHandoff
    from repro.traces.records import TraceRecord

#: Bump when the entry container format changes incompatibly.
STORE_SCHEMA = 1

_MAGIC = b"afraid-checkpoint/1\n"


class CheckpointError(RuntimeError):
    """Base class for checkpoint-store failures."""


class CheckpointVersionError(CheckpointError):
    """A checkpoint was written by a different repro version or pickle
    protocol than this process uses; resuming from it is refused."""


def _pickle_protocol() -> int:
    from repro.harness.sharding import PICKLE_PROTOCOL

    return PICKLE_PROTOCOL


def records_digest(records: typing.Sequence["TraceRecord"], upto: int) -> str:
    """Order-sensitive fingerprint of ``records[:upto]``.

    Packs the exact doubles and integers of each record, so two prefixes
    digest equal iff the replay would see bit-identical arrivals.
    """
    digest = hashlib.sha256()
    pack = struct.pack
    for record in records[:upto]:
        digest.update(
            pack(
                "<dqqBB",
                record.time_s,
                record.offset_sectors,
                record.nsectors,
                1 if record.is_write else 0,
                1 if record.sync else 0,
            )
        )
    return digest.hexdigest()


def _prefix_digests(
    records: typing.Sequence["TraceRecord"], marks: typing.Iterable[int]
) -> dict[int, str]:
    """``{upto: digest}`` for every ``upto`` in ``marks``, in one scan."""
    wanted = sorted(set(marks))
    out: dict[int, str] = {}
    digest = hashlib.sha256()
    pack = struct.pack
    position = 0
    for upto in wanted:
        for record in records[position:upto]:
            digest.update(
                pack(
                    "<dqqBB",
                    record.time_s,
                    record.offset_sectors,
                    record.nsectors,
                    1 if record.is_write else 0,
                    1 if record.sync else 0,
                )
            )
        position = upto
        out[upto] = digest.copy().hexdigest()
    return out


@dataclasses.dataclass
class StoredCut:
    """A cut entry revived from the store (mirrors ``ShardHandoff``)."""

    payload: bytes
    consumed: int
    last_arrival_s: float
    cut_time_s: float


class CheckpointScope:
    """One keyed configuration's slice of the store (a subdirectory)."""

    def __init__(self, store: "CheckpointStore", key: str) -> None:
        self.store = store
        self.key = key
        self.path = os.path.join(store.root, key)

    # -- entry I/O ---------------------------------------------------------------

    def _write(self, filename: str, header: dict, payload: bytes) -> None:
        os.makedirs(self.path, exist_ok=True)
        header = dict(header)
        header["version"] = _REPRO_VERSION
        header["protocol"] = _pickle_protocol()
        path = os.path.join(self.path, filename)
        tmp = f"{path}.tmp.{os.getpid()}"
        blob = _MAGIC + json.dumps(header, sort_keys=True).encode() + b"\n" + payload
        try:
            with open(tmp, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except OSError:
            # Best-effort store: a full disk must not fail the replay.
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def _read(self, filename: str) -> tuple[dict, bytes] | None:
        """Header + payload, or ``None`` for missing/corrupt entries.

        Corrupt entries are deleted on sight.  A version or protocol
        mismatch raises :class:`CheckpointVersionError` instead — the
        entry is intact, it just belongs to a different repro build, and
        silently resuming from it is exactly the failure mode the pinned
        header exists to prevent.
        """
        path = os.path.join(self.path, filename)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            return None
        try:
            if not blob.startswith(_MAGIC):
                raise ValueError("bad magic")
            rest = blob[len(_MAGIC):]
            header_line, _, payload = rest.partition(b"\n")
            header = json.loads(header_line)
            declared = header["payload_bytes"]
        except (ValueError, KeyError):
            self._discard(path)
            return None
        if header.get("version") != _REPRO_VERSION or header.get("protocol") != _pickle_protocol():
            raise CheckpointVersionError(
                f"checkpoint {path} was written by repro "
                f"{header.get('version')!r} (pickle protocol {header.get('protocol')!r}) "
                f"but this is repro {_REPRO_VERSION!r} (pickle protocol "
                f"{_pickle_protocol()!r}); delete the store or point "
                f"--checkpoint-dir at a fresh directory"
            )
        if len(payload) != declared:
            # Truncated write (crash mid-store): recover by discarding.
            self._discard(path)
            return None
        return header, payload

    def _discard(self, path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    # -- cuts --------------------------------------------------------------------

    def store_cut(
        self, records: typing.Sequence["TraceRecord"], consumed: int, handoff: "ShardHandoff"
    ) -> None:
        """Persist the quiescent-cut snapshot taken after ``consumed`` records."""
        self._write(
            f"cut-{consumed:08d}.ckpt",
            {
                "kind": "cut",
                "consumed": consumed,
                "prefix_sha": records_digest(records, consumed),
                "last_arrival_s": handoff.last_arrival_s,
                "cut_time_s": handoff.cut_time_s,
                "payload_bytes": len(handoff.payload),
            },
            handoff.payload,
        )

    def lookup_cut(self, records: typing.Sequence["TraceRecord"]) -> StoredCut | None:
        """The deepest stored cut whose record prefix matches ``records``."""
        try:
            names = sorted(
                name for name in os.listdir(self.path)
                if name.startswith("cut-") and name.endswith(".ckpt")
            )
        except OSError:
            return None
        candidates: list[tuple[int, str]] = []
        for name in names:
            try:
                consumed = int(name[4:-5])
            except ValueError:
                continue
            # A cut at or past the end of this trace cannot seed a final
            # shard (there would be no arrivals left to drive it).
            if 0 < consumed < len(records):
                candidates.append((consumed, name))
        if not candidates:
            return None
        digests = _prefix_digests(records, (consumed for consumed, _ in candidates))
        for consumed, name in sorted(candidates, reverse=True):
            entry = self._read(name)
            if entry is None:
                continue
            header, payload = entry
            if header.get("kind") != "cut" or header.get("consumed") != consumed:
                self._discard(os.path.join(self.path, name))
                continue
            if header.get("prefix_sha") != digests[consumed]:
                continue  # same scope, different trace content — not ours
            return StoredCut(
                payload=payload,
                consumed=consumed,
                last_arrival_s=header["last_arrival_s"],
                cut_time_s=header["cut_time_s"],
            )
        return None

    # -- final results -----------------------------------------------------------

    def _final_name(
        self, nrecords: int, duration_s: float, extra_settle_s: float, finalize: bool
    ) -> str:
        tag = hashlib.sha256(
            json.dumps(
                {
                    "nrecords": nrecords,
                    "duration_s": duration_s,
                    "extra_settle_s": extra_settle_s,
                    "finalize": finalize,
                },
                sort_keys=True,
            ).encode()
        ).hexdigest()[:16]
        return f"final-{tag}.ckpt"

    def store_final(
        self,
        records: typing.Sequence["TraceRecord"],
        duration_s: float,
        extra_settle_s: float,
        finalize: bool,
        result_payload: bytes,
    ) -> None:
        """Persist a complete replay's pickled ``ShardReplayResult``."""
        self._write(
            self._final_name(len(records), duration_s, extra_settle_s, finalize),
            {
                "kind": "final",
                "consumed": len(records),
                "prefix_sha": records_digest(records, len(records)),
                "payload_bytes": len(result_payload),
            },
            result_payload,
        )

    def lookup_final(
        self,
        records: typing.Sequence["TraceRecord"],
        duration_s: float,
        extra_settle_s: float,
        finalize: bool,
    ) -> bytes | None:
        """The pickled result of an identical complete replay, if stored."""
        entry = self._read(self._final_name(len(records), duration_s, extra_settle_s, finalize))
        if entry is None:
            return None
        header, payload = entry
        if header.get("kind") != "final" or header.get("consumed") != len(records):
            return None
        if header.get("prefix_sha") != records_digest(records, len(records)):
            return None
        return payload


class CheckpointStore:
    """Directory of replay checkpoints, one subdirectory per scope key."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)

    def scope(self, config: dict) -> CheckpointScope:
        """The scope for one keyed configuration.

        ``config`` must be a JSON-serialisable description of everything
        (other than the trace records themselves) that determines the
        replay's evolution — policy, array geometry, reliability
        parameters.  The code fingerprint and schema are mixed in here,
        exactly as :func:`repro.harness.runner.cache_key` does for cells.
        """
        key = hashlib.sha256(
            json.dumps(
                {
                    "schema": STORE_SCHEMA,
                    "code": code_fingerprint(),
                    "config": config,
                },
                sort_keys=True,
            ).encode()
        ).hexdigest()[:24]
        return CheckpointScope(self, key)

    # -- maintenance -------------------------------------------------------------

    def _entries(self) -> list[tuple[float, int, str]]:
        """(mtime, size, path) of every entry file, oldest first."""
        found: list[tuple[float, int, str]] = []
        try:
            scopes = os.listdir(self.root)
        except OSError:
            return found
        for scope in scopes:
            scope_dir = os.path.join(self.root, scope)
            try:
                names = os.listdir(scope_dir)
            except OSError:
                continue
            for name in names:
                if not name.endswith(".ckpt"):
                    continue
                path = os.path.join(scope_dir, name)
                try:
                    info = os.stat(path)
                except OSError:
                    continue
                found.append((info.st_mtime, info.st_size, path))
        found.sort()
        return found

    def size_bytes(self) -> int:
        """Total bytes currently stored."""
        return sum(size for _, size, _ in self._entries())

    def listing(self) -> list[dict]:
        """One row per entry (scope, name, bytes) — for store audits."""
        return [
            {
                "scope": os.path.basename(os.path.dirname(path)),
                "entry": os.path.basename(path),
                "bytes": size,
            }
            for _, size, path in self._entries()
        ]

    def prune(self, max_bytes: int) -> tuple[int, int]:
        """Delete oldest entries until the store fits ``max_bytes``.

        Returns ``(entries_removed, bytes_freed)`` — the same contract as
        ``ResultCache.prune``.
        """
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        removed = freed = 0
        for _, size, path in entries:
            if total <= max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            removed += 1
            freed += size
        # Drop scope directories emptied by the sweep (best-effort).
        for scope in os.listdir(self.root):
            scope_dir = os.path.join(self.root, scope)
            try:
                if os.path.isdir(scope_dir) and not os.listdir(scope_dir):
                    os.rmdir(scope_dir)
            except OSError:
                continue
        return removed, freed
