"""One experiment = one (workload, policy) cell of the paper's tables."""

from __future__ import annotations

import dataclasses
import typing

from repro.array.factory import PAPER_NDISKS, PAPER_STRIPE_UNIT_SECTORS, build_array
from repro.availability import (
    CONSERVATIVE_SUPPORT,
    ReliabilityParams,
    TABLE_1,
    afraid_mttdl,
    combine_mttdl,
    mdlr_raid_catastrophic,
    mdlr_unprotected,
    organization_mdlr,
    organization_mttdl,
    raid5_mttdl_catastrophic,
)
from repro.disk import hp_c3325
from repro.harness.replay import replay_trace
from repro.metrics import PerfCounters, Summary
from repro.obs import ExposureMonitor, HistogramSet
from repro.policy import ParityPolicy
from repro.sim import Simulator
from repro.traces import Trace, make_trace

if typing.TYPE_CHECKING:  # pragma: no cover - optional observability
    from repro.array.controller import DiskArray
    from repro.obs import MetricsRegistry, Tracer


@dataclasses.dataclass(frozen=True)
class ExperimentResult:
    """Everything one run contributes to the paper's tables and figures."""

    workload: str
    policy: str
    ndisks: int
    nrequests: int
    reads: int
    writes: int
    io_time: Summary
    horizon_s: float
    # Scrubbing activity:
    stripes_scrubbed: int
    dirty_at_end: int
    # Exposure (inputs to §3's equations):
    unprotected_fraction: float
    mean_parity_lag_bytes: float
    peak_parity_lag_bytes: float
    # Derived availability:
    params: ReliabilityParams
    mttdl_disk_h: float
    mdlr_unprotected_bytes_per_h: float
    mdlr_disk_bytes_per_h: float
    mttdl_overall_h: float
    mdlr_overall_bytes_per_h: float
    #: Per-request-class latency histograms (``HistogramSet.to_payload``
    #: form, so results stay picklable and JSON-safe).  ``None`` only for
    #: results revived from pre-observability cache payloads.
    latency_hists: dict | None = None
    #: Per-stripe dirty-dwell histograms from the run's
    #: :class:`~repro.obs.ExposureMonitor` (same payload form; classes
    #: ``dirty_dwell`` plus ``dirty_dwell_<cause>``).  ``None`` only for
    #: results revived from pre-exposure cache payloads.
    exposure_hists: dict | None = None
    #: Redundancy scheme the run was built over ("raid5", "raid5d",
    #: "raid1", "raid10", "raid15"); results revived from caches written
    #: before the knob existed default to "raid5".
    organization: str = "raid5"

    def histogram_set(self) -> HistogramSet | None:
        """The latency histograms revived into a mergeable object."""
        if self.latency_hists is None:
            return None
        return HistogramSet.from_payload(self.latency_hists)

    def exposure_histogram_set(self) -> HistogramSet | None:
        """The dirty-dwell histograms revived into a mergeable object."""
        if self.exposure_hists is None:
            return None
        return HistogramSet.from_payload(self.exposure_hists)

    @property
    def mean_io_time_ms(self) -> float:
        return self.io_time.mean * 1e3

    def speedup_over(self, other: "ExperimentResult") -> float:
        """How much faster this run's mean I/O time is than ``other``'s."""
        if self.io_time.count == 0 or other.io_time.count == 0:
            raise ValueError("speedup undefined: one of the runs completed no requests")
        return other.io_time.mean / self.io_time.mean

    def availability_ratio_to(self, other: "ExperimentResult") -> float:
        """Disk-related MTTDL relative to ``other`` (1.0 = equal)."""
        if other.mttdl_disk_h == float("inf"):
            return 0.0 if self.mttdl_disk_h != float("inf") else 1.0
        return self.mttdl_disk_h / other.mttdl_disk_h

    def to_dict(self) -> dict:
        """A JSON-serialisable flat view of the result.

        Infinities are rendered as the string ``"inf"`` so the output is
        strict-JSON safe; everything else is plain numbers/strings.
        """

        def jsonable(value):
            if isinstance(value, float) and value == float("inf"):
                return "inf"
            return value

        payload = {
            "workload": self.workload,
            "policy": self.policy,
            "organization": getattr(self, "organization", "raid5"),
            "ndisks": self.ndisks,
            "nrequests": self.nrequests,
            "reads": self.reads,
            "writes": self.writes,
            "horizon_s": self.horizon_s,
            "mean_io_time_s": self.io_time.mean,
            "median_io_time_s": self.io_time.median,
            "p95_io_time_s": self.io_time.p95,
            "max_io_time_s": self.io_time.maximum,
            "stripes_scrubbed": self.stripes_scrubbed,
            "dirty_at_end": self.dirty_at_end,
            "unprotected_fraction": self.unprotected_fraction,
            "mean_parity_lag_bytes": self.mean_parity_lag_bytes,
            "peak_parity_lag_bytes": self.peak_parity_lag_bytes,
            "mttdl_disk_h": self.mttdl_disk_h,
            "mdlr_unprotected_bytes_per_h": self.mdlr_unprotected_bytes_per_h,
            "mdlr_disk_bytes_per_h": self.mdlr_disk_bytes_per_h,
            "mttdl_overall_h": self.mttdl_overall_h,
            "mdlr_overall_bytes_per_h": self.mdlr_overall_bytes_per_h,
        }
        return {key: jsonable(value) for key, value in payload.items()}


def derive_availability(
    ndisks: int,
    unprotected_fraction: float,
    mean_parity_lag_bytes: float,
    params: ReliabilityParams,
    organization: str = "raid5",
) -> tuple[float, float, float, float, float]:
    """Reduce measured exposure to (MTTDL_disk, MDLR_unprot, MDLR_disk,
    MTTDL_overall, MDLR_overall) via eqs. (2c), (4), (5) + support.

    The single eq.-(2c) formula covers all three array models: a RAID 5
    run measures zero exposure (the unprotected term drops out, leaving
    eq. (1)); a never-scrubbed RAID 0 run measures exposure near 1.
    Other organizations substitute their own catastrophic/unprotected
    terms (mirrored pairs, hybrid pairs-under-parity, declustered
    rebuild speedup) via the ``organization_*`` dispatchers.
    """
    if organization == "raid5":
        mttdl_disk = afraid_mttdl(
            ndisks, params.mttf_disk_h, params.mttr_h, unprotected_fraction
        )
        raid_mttdl = raid5_mttdl_catastrophic(ndisks, params.mttf_disk_h, params.mttr_h)
        mdlr_unprot = mdlr_unprotected(ndisks, mean_parity_lag_bytes, params.mttf_disk_h)
        mdlr_disk = mdlr_raid_catastrophic(ndisks, params.disk_bytes, raid_mttdl) + mdlr_unprot
    else:
        mttdl_disk = organization_mttdl(
            organization, ndisks, params.mttf_disk_h, params.mttr_h, unprotected_fraction
        )
        mdlr_disk = organization_mdlr(
            organization,
            ndisks,
            params.disk_bytes,
            params.mttf_disk_h,
            params.mttr_h,
            mean_parity_lag_bytes,
        )
        # The deferred-update component alone: total minus the lag-free rate.
        mdlr_unprot = mdlr_disk - organization_mdlr(
            organization, ndisks, params.disk_bytes, params.mttf_disk_h, params.mttr_h, 0.0
        )
    mttdl_overall = combine_mttdl(mttdl_disk, CONSERVATIVE_SUPPORT.mttdl_h)
    mdlr_overall = mdlr_disk + CONSERVATIVE_SUPPORT.mdlr(ndisks, params.disk_bytes)
    return mttdl_disk, mdlr_unprot, mdlr_disk, mttdl_overall, mdlr_overall


def _checkpoint_extras(sim, array) -> dict:
    """Collected on the final shard of a checkpointed run: everything
    ``run_experiment`` reads off the live array after ``replay_trace``
    that is not already in the :class:`ShardReplayResult` counters."""
    return {
        "dirty_at_end": array.dirty_stripe_count,
        "latency_hists": array.hists.to_payload() if array.hists is not None else None,
        "exposure_hists": (
            array.exposure.hists.to_payload() if array.exposure is not None else None
        ),
    }


def run_experiment(
    workload: str | Trace,
    policy: ParityPolicy,
    duration_s: float = 40.0,
    seed: int = 42,
    ndisks: int = PAPER_NDISKS,
    stripe_unit_sectors: int = PAPER_STRIPE_UNIT_SECTORS,
    disk_factory=hp_c3325,
    organization: str = "raid5",
    idle_threshold_s: float = 0.100,
    params: ReliabilityParams = TABLE_1,
    extra_settle_s: float = 0.0,
    counters: PerfCounters | None = None,
    tracer: "Tracer | None" = None,
    histograms: HistogramSet | None = None,
    registry: "MetricsRegistry | None" = None,
    exposure: "ExposureMonitor | None" = None,
    exposure_window_s: float = 5.0,
    on_array: "typing.Callable[[Simulator, DiskArray], None] | None" = None,
    checkpoint_dir: str | None = None,
    checkpoint_shards: int = 4,
) -> ExperimentResult:
    """Run one (workload, policy) experiment from a clean simulator.

    ``workload`` is a catalog name (a trace is generated to fit the
    array's data capacity) or a pre-built :class:`Trace`.  ``policy`` must
    be a fresh instance — policies carry per-run state.  Pass a
    :class:`~repro.metrics.PerfCounters` to observe where the run spent
    wall-clock and how much kernel work it did.

    Observability: per-class latency histograms are always collected (they
    are O(1) per request and land in ``ExperimentResult.latency_hists``);
    pass ``histograms`` to record into an existing set instead.  An
    :class:`~repro.obs.ExposureMonitor` is likewise always attached (its
    dirty-dwell histograms land in ``ExperimentResult.exposure_hists``);
    pass ``exposure`` to use a pre-configured one, ``registry`` to have
    the run publish live gauges/counters into a
    :class:`~repro.obs.MetricsRegistry`.  Pass a :class:`~repro.obs.Tracer`
    to capture structured spans, and ``on_array`` to hook the built array
    before replay starts (e.g. to attach a
    :class:`~repro.obs.PeriodicSampler`, an SLO poller, or a fault
    injector).

    ``checkpoint_dir`` names an on-disk
    :class:`~repro.harness.checkpoint.CheckpointStore`: the replay runs
    through :func:`~repro.harness.sharding.replay_trace_sharded` (in
    ``checkpoint_shards`` slices), resumes from the deepest stored
    quiescent cut matching this cell, and a byte-identical re-run
    returns the stored result without simulating at all.  The result is
    bit-identical to the direct path.  Checkpointing is only taken when
    no live observer is attached (``tracer``/``registry``/``on_array``
    and caller-owned ``histograms``/``exposure`` must all be ``None``) —
    the replay then crosses pickle boundaries, so in-place mutation of
    caller objects cannot be honoured; those runs silently fall back to
    the direct path.
    """
    if counters is None:
        counters = PerfCounters()  # throwaway: keeps the body branch-free
    checkpointable = (
        checkpoint_dir is not None
        and tracer is None
        and registry is None
        and on_array is None
        and histograms is None
        and exposure is None
    )
    if histograms is None:
        histograms = HistogramSet()
    if exposure is None:
        exposure = ExposureMonitor(window_s=exposure_window_s, params=params)
    sim = Simulator()
    if tracer is not None:
        tracer.bind(sim)
    with counters.phase("setup"):
        array = build_array(
            sim,
            policy,
            ndisks=ndisks,
            stripe_unit_sectors=stripe_unit_sectors,
            disk_factory=disk_factory,
            organization=organization,
            idle_threshold_s=idle_threshold_s,
            params=params,
            name=policy.describe(),
        )
        array.attach_observability(
            tracer=tracer, histograms=histograms, registry=registry, exposure=exposure
        )
        if on_array is not None:
            on_array(sim, array)
        if isinstance(workload, Trace):
            trace = workload
        else:
            trace = make_trace(
                workload,
                duration_s=duration_s,
                address_space_sectors=array.layout.total_data_sectors,
                seed=seed,
            )
    if checkpointable:
        from repro.harness.checkpoint import CheckpointStore
        from repro.harness.sharding import replay_trace_sharded

        scope = CheckpointStore(checkpoint_dir).scope(
            {
                "surface": "run_experiment",
                "workload": trace.name,
                "seed": seed,
                "policy": [type(policy).__name__, policy.describe()],
                "ndisks": ndisks,
                "stripe_unit_sectors": stripe_unit_sectors,
                "disk_factory": disk_factory.__name__,
                "idle_threshold_s": idle_threshold_s,
                "params": dataclasses.asdict(params),
                "exposure_window_s": exposure_window_s,
                # Added only for non-default organizations so checkpoints
                # written before the knob existed keep resolving.
                **({"organization": organization} if organization != "raid5" else {}),
            }
        )
        with counters.phase("replay"):
            sharded = replay_trace_sharded(
                sim,
                array,
                trace,
                shards=checkpoint_shards,
                extra_settle_s=extra_settle_s,
                checkpoint=scope,
                extras_fn=_checkpoint_extras,
            )
        counters.count("events_dispatched", sharded.events_simulated)
        counters.count(
            "ios_serviced", sharded.stats.reads_completed + sharded.stats.writes_completed
        )
        outcome = sharded.outcome
        if outcome.failures:
            raise RuntimeError(
                f"{len(outcome.failures)} requests failed during a fault-free run: "
                f"{outcome.failures[0]!r}"
            )
        unprotected, mean_lag, peak_lag, _total = sharded.parity_lag
        extras = sharded.extras or {}
        with counters.phase("reduce"):
            mttdl_disk, mdlr_unprot, mdlr_disk, mttdl_overall, mdlr_overall = (
                derive_availability(
                    ndisks=ndisks,
                    unprotected_fraction=unprotected,
                    mean_parity_lag_bytes=mean_lag,
                    params=params,
                    organization=organization,
                )
            )
        return ExperimentResult(
            workload=trace.name,
            policy=policy.describe(),
            ndisks=ndisks,
            nrequests=len(outcome.requests),
            reads=sharded.stats.reads_completed,
            writes=sharded.stats.writes_completed,
            io_time=Summary.of(outcome.io_times),
            horizon_s=outcome.horizon_s,
            stripes_scrubbed=sharded.stats.stripes_scrubbed,
            dirty_at_end=extras.get("dirty_at_end", 0),
            unprotected_fraction=unprotected,
            mean_parity_lag_bytes=mean_lag,
            peak_parity_lag_bytes=peak_lag,
            params=params,
            mttdl_disk_h=mttdl_disk,
            mdlr_unprotected_bytes_per_h=mdlr_unprot,
            mdlr_disk_bytes_per_h=mdlr_disk,
            mttdl_overall_h=mttdl_overall,
            mdlr_overall_bytes_per_h=mdlr_overall,
            latency_hists=extras.get("latency_hists"),
            exposure_hists=extras.get("exposure_hists"),
            organization=organization,
        )

    with counters.phase("replay"):
        outcome = replay_trace(sim, array, trace, extra_settle_s=extra_settle_s)
    counters.count("events_dispatched", sim.events_dispatched)
    counters.count("ios_serviced", array.stats.reads_completed + array.stats.writes_completed)
    if outcome.failures:
        raise RuntimeError(
            f"{len(outcome.failures)} requests failed during a fault-free run: "
            f"{outcome.failures[0]!r}"
        )

    tracker = array.lag_tracker
    with counters.phase("reduce"):
        mttdl_disk, mdlr_unprot, mdlr_disk, mttdl_overall, mdlr_overall = derive_availability(
            ndisks=array.ndisks,
            unprotected_fraction=tracker.unprotected_fraction,
            mean_parity_lag_bytes=tracker.mean_parity_lag_bytes,
            params=params,
            organization=organization,
        )
    return ExperimentResult(
        workload=trace.name,
        policy=policy.describe(),
        ndisks=array.ndisks,
        nrequests=len(outcome.requests),
        reads=array.stats.reads_completed,
        writes=array.stats.writes_completed,
        io_time=Summary.of(outcome.io_times),
        horizon_s=outcome.horizon_s,
        stripes_scrubbed=array.stats.stripes_scrubbed,
        dirty_at_end=array.dirty_stripe_count,
        unprotected_fraction=tracker.unprotected_fraction,
        mean_parity_lag_bytes=tracker.mean_parity_lag_bytes,
        peak_parity_lag_bytes=tracker.peak_parity_lag_bytes,
        params=params,
        mttdl_disk_h=mttdl_disk,
        mdlr_unprotected_bytes_per_h=mdlr_unprot,
        mdlr_disk_bytes_per_h=mdlr_disk,
        mttdl_overall_h=mttdl_overall,
        mdlr_overall_bytes_per_h=mdlr_overall,
        latency_hists=histograms.to_payload(),
        exposure_hists=exposure.hists.to_payload(),
        organization=organization,
    )
