"""Monospace table rendering for the paper-style benchmark reports."""

from __future__ import annotations

import typing


def format_table(
    headers: typing.Sequence[str],
    rows: typing.Sequence[typing.Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned text table (first column left-, rest right-aligned)."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(row: typing.Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(row):
            if index == 0:
                parts.append(cell.ljust(widths[index]))
            else:
                parts.append(cell.rjust(widths[index]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in cells)
    return "\n".join(lines)


def format_quantity(value: float, unit: str = "") -> str:
    """Human-scale rendering: 4.17e9 → '4.2e9', 0.0123 → '0.012'."""
    if value == float("inf"):
        text = "inf"
    elif value == 0:
        text = "0"
    elif abs(value) >= 1e5 or abs(value) < 1e-3:
        text = f"{value:.1e}"
    elif abs(value) >= 100:
        text = f"{value:.0f}"
    else:
        text = f"{value:.3g}"
    return f"{text}{unit}"
