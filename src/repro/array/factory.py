"""Assemble complete arrays in the paper's configuration."""

from __future__ import annotations

from repro.array.controller import DiskArray
from repro.availability import ReliabilityParams
from repro.blocks import FunctionalArray
from repro.disk import hp_c3325, toy_disk
from repro.layout import get_organization
from repro.policy import AlwaysRaid5Policy, BaselineAfraidPolicy, NeverScrubPolicy, ParityPolicy
from repro.sim import Simulator

#: 8 KB stripe units over 512-byte sectors (Table 1's S).
PAPER_STRIPE_UNIT_SECTORS = 16
#: The paper's arrays are 5 disks wide.
PAPER_NDISKS = 5


def build_array(
    sim: Simulator,
    policy: ParityPolicy,
    ndisks: int = PAPER_NDISKS,
    stripe_unit_sectors: int = PAPER_STRIPE_UNIT_SECTORS,
    disk_factory=hp_c3325,
    with_functional: bool = False,
    params: ReliabilityParams | None = None,
    idle_threshold_s: float = 0.100,
    bits_per_stripe: int = 1,
    spin_synchronised: bool = True,
    name: str = "array",
    organization: str = "raid5",
    **controller_kwargs,
) -> DiskArray:
    """Build an array of ``ndisks`` disks around ``policy``.

    ``disk_factory(sim, name=..., spindle_phase=...)`` supplies the member
    drives.  ``spin_synchronised=True`` (the paper's §4.1 simplification)
    gives every spindle the same rotational phase; ``False`` staggers the
    phases evenly, the way unsynchronised drives settle in practice.
    ``with_functional=True`` attaches a byte-accurate functional twin so
    the simulation also moves (and can lose) real data — available for the
    rotated-parity organization only; mirrored and declustered ones run
    without a twin (the twin's offset arithmetic assumes rotated units).
    ``organization`` picks the redundancy scheme (``raid5``, ``raid5d``,
    ``raid1``, ``raid10``, ``raid15``); the disk count must satisfy its
    geometry constraints.
    """
    org = get_organization(organization)
    org.validate(ndisks)
    disks = []
    for index in range(ndisks):
        phase = 0.0 if spin_synchronised else (index / ndisks)
        try:
            disk = disk_factory(sim, name=f"{name}.d{index}", spindle_phase=phase)
        except TypeError:
            # Factories without a phase knob (custom test doubles).
            disk = disk_factory(sim, name=f"{name}.d{index}")
        disks.append(disk)
    functional = None
    if with_functional and not org.mirrored and not org.declustered:
        usable = min(disk.geometry.total_sectors for disk in disks)
        layout = org.build_layout(ndisks, stripe_unit_sectors, usable)
        functional = FunctionalArray(
            layout,
            sector_bytes=disks[0].geometry.sector_bytes,
            sub_units=bits_per_stripe,
        )
    return DiskArray(
        sim=sim,
        disks=disks,
        stripe_unit_sectors=stripe_unit_sectors,
        policy=policy,
        params=params,
        functional=functional,
        idle_threshold_s=idle_threshold_s,
        bits_per_stripe=bits_per_stripe,
        name=name,
        organization=org,
        **controller_kwargs,
    )


def paper_array(sim: Simulator, policy: ParityPolicy | None = None, **kwargs) -> DiskArray:
    """The paper's testbed: 5 × HP C3325, 8 KB stripe units, baseline AFRAID."""
    return build_array(sim, policy if policy is not None else BaselineAfraidPolicy(), **kwargs)


def toy_array(
    sim: Simulator,
    policy: ParityPolicy | None = None,
    ndisks: int = 5,
    stripe_unit_sectors: int = 8,
    with_functional: bool = True,
    **kwargs,
) -> DiskArray:
    """A small, fast array over toy disks, for tests and examples."""
    return build_array(
        sim,
        policy if policy is not None else BaselineAfraidPolicy(),
        ndisks=ndisks,
        stripe_unit_sectors=stripe_unit_sectors,
        disk_factory=toy_disk,
        with_functional=with_functional,
        **kwargs,
    )


def raid5_array(sim: Simulator, **kwargs) -> DiskArray:
    """A traditional RAID 5 in the paper's testbed configuration."""
    return build_array(sim, AlwaysRaid5Policy(), **kwargs)


def raid0_array(sim: Simulator, **kwargs) -> DiskArray:
    """The paper's RAID 0 datapoint: an AFRAID that never scrubs."""
    return build_array(sim, NeverScrubPolicy(), **kwargs)
