"""The array controller servicing client requests over member disks.

Faithful to the paper's §4.1 configuration:

* host-level C-LOOK queueing over logical addresses; FCFS back-end drivers;
* at most ``ndisks`` client requests concurrently active inside the array;
* a 256 KB write-through staging area and a 256 KB read cache, no readahead;
* spin-synchronised member disks (equal spindle phase);
* requests are never preempted once started; multiple writes to the same
  stripe may proceed in parallel, but block while that stripe's parity is
  being rebuilt;
* AFRAID writes mark stripes in NVRAM *before* the data lands; the
  background scrubber rebuilds parity in idle periods, preemptible between
  stripes (not within one);
* RAID 5 writes use read-modify-write for small updates, reconstruct-write
  for writes to stripes with stale parity, and a no-preread fast path for
  full-stripe writes.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.array.batchplan import MIN_VECTOR_EXTENTS, plan_host_batch
from repro.array.cache import ByteBudget, ReadCache
from repro.array.request import ArrayRequest
from repro.availability import ParityLagTracker, ReliabilityParams
from repro.disk import DiskFailedError, DiskIO, IoKind, LatentSectorError, MechanicalDisk
from repro.idle import IdleDetector
from repro.layout import Raid5Layout
from repro.layout.base import ExtentRun
from repro.layout.organization import ArrayOrganization, get_organization
from repro.nvram import MarkMemory, sub_unit_extent, sub_units_overlapping
from repro.policy import ParityPolicy, WriteMode
from repro.sched import ClookScheduler, DiskDriver, FcfsScheduler
from repro.sim import AllOf, Event, Resource, Simulator
from repro.sim.events import _PENDING

if typing.TYPE_CHECKING:  # pragma: no cover - optional functional twin
    from repro.blocks import FunctionalArray
    from repro.obs import ExposureMonitor, HistogramSet, MetricsRegistry, Tracer


@dataclasses.dataclass
class ArrayStats:
    """Cumulative controller counters."""

    reads_completed: int = 0
    writes_completed: int = 0
    io_times: list[float] = dataclasses.field(default_factory=list)
    # Disk I/Os by purpose:
    foreground_data_reads: int = 0
    foreground_data_writes: int = 0
    preread_ios: int = 0  # old-data + old-parity reads of the RMW protocol
    foreground_parity_writes: int = 0
    reconstruct_reads: int = 0  # reads serving a RAID 5 write to a dirty stripe
    scrub_data_reads: int = 0
    scrub_parity_writes: int = 0
    stripes_scrubbed: int = 0

    @property
    def completed(self) -> int:
        return self.reads_completed + self.writes_completed

    @property
    def mean_io_time(self) -> float:
        return sum(self.io_times) / len(self.io_times) if self.io_times else 0.0

    @property
    def foreground_disk_ios(self) -> int:
        """Disk I/Os in (or caused by) the client critical path."""
        return (
            self.foreground_data_reads
            + self.foreground_data_writes
            + self.preread_ios
            + self.foreground_parity_writes
            + self.reconstruct_reads
        )


@dataclasses.dataclass(frozen=True)
class DataLossEvent:
    """A structured multiple-failure outcome.

    Recorded (instead of raising) when a disk fails while others are
    already down: mirrored organizations can absorb failures that kill
    RAID 5, so whether the event is *survivable* depends on the
    organization's failed-set semantics.  Nemesis and campaign loops log
    these on their timelines and keep running.
    """

    time_s: float
    disk: int
    failed_disks: tuple[int, ...]
    organization: str
    survivable: bool
    dirty_stripes: int
    parity_lag_bytes: float
    reason: str


class DiskArray:
    """A RAID 5 / AFRAID / RAID 0 array; the model is chosen by ``policy``."""

    def __init__(
        self,
        sim: Simulator,
        disks: list[MechanicalDisk],
        stripe_unit_sectors: int,
        policy: ParityPolicy,
        read_cache_bytes: int = 256 * 1024,
        write_staging_bytes: int = 256 * 1024,
        idle_threshold_s: float = 0.100,
        cache_hit_latency_s: float = 0.0002,
        write_policy: str = "writethrough",
        nvram_ack_latency_s: float = 0.0002,
        params: ReliabilityParams | None = None,
        functional: "FunctionalArray | None" = None,
        bits_per_stripe: int = 1,
        host_scheduler: ClookScheduler | None = None,
        name: str = "array",
        organization: "str | ArrayOrganization" = "raid5",
    ) -> None:
        org = get_organization(organization)
        org.validate(len(disks))
        self.organization = org
        self._mirrored = org.mirrored
        self.sim = sim
        self.disks = list(disks)
        self.policy = policy
        self.params = params if params is not None else ReliabilityParams()
        self.functional = functional
        self.name = name
        # Hot-path event/process labels, formatted once (per-request
        # f-strings showed up in sweep profiles).
        self._ev_done = f"{name}.done"
        self._ev_service = f"{name}.service"
        self._ev_r5w = f"{name}.r5w"
        self._ev_rebuild = f"{name}.rebuild"
        self._ev_commit = f"{name}.commit"
        self.cache_hit_latency_s = cache_hit_latency_s
        if write_policy not in ("writethrough", "writeback"):
            raise ValueError(f"write_policy must be writethrough|writeback, got {write_policy!r}")
        #: "writethrough" (the paper's §4.1 configuration): a write
        #: completes once it is on disk.  "writeback": the write completes
        #: when it reaches the NVRAM staging area (single-copy NVRAM
        #: semantics, §3.4) and is flushed to disk in the background —
        #: the PrestoServe-style configuration the paper compares against.
        self.write_policy = write_policy
        self.nvram_ack_latency_s = nvram_ack_latency_s

        self.sector_bytes = disks[0].geometry.sector_bytes
        usable_sectors = min(disk.geometry.total_sectors for disk in disks)
        self.layout = org.build_layout(len(disks), stripe_unit_sectors, usable_sectors)
        self.unit_bytes = stripe_unit_sectors * self.sector_bytes
        #: The callback service machine serves write-through parity
        #: organizations; mirrored organizations take the generator path
        #: (their copy semantics never ran under the machine's golden gate).
        self._callback_service = write_policy == "writethrough" and not org.mirrored

        self.drivers = [
            DiskDriver(sim, disk, FcfsScheduler(), name=f"{name}.be{index}")
            for index, disk in enumerate(self.disks)
        ]
        self.slots = Resource(sim, capacity=len(disks), name=f"{name}.slots")
        self.read_cache = ReadCache(read_cache_bytes, self.unit_bytes, self.sector_bytes)
        self.staging = ByteBudget(sim, write_staging_bytes, name=f"{name}.staging")
        self.marks = MarkMemory(self.layout.nstripes, bits_per_stripe=bits_per_stripe)
        self.detector = IdleDetector(sim, threshold_s=idle_threshold_s)
        self.lag_tracker = ParityLagTracker(start_time=sim.now)
        #: Dirty bytes behind the single-copy NVRAM (writeback mode only):
        #: the §3.4 vulnerable-data quantity for the NVRAM MDLR comparison.
        self.nvram_dirty_tracker = ParityLagTracker(start_time=sim.now)
        self._nvram_dirty_bytes = 0
        self.stats = ArrayStats()
        #: Optional observability sinks (see :meth:`attach_observability`).
        #: ``None`` keeps every instrumentation site to a single check.
        self.tracer: "Tracer | None" = None
        self.hists: "HistogramSet | None" = None
        self.registry: "MetricsRegistry | None" = None
        self.exposure: "ExposureMonitor | None" = None

        # The paper's host driver uses C-LOOK; any IoScheduler works here
        # (the scheduler-comparison ablation swaps in FCFS / SSTF / LOOK).
        self._host_queue = host_scheduler if host_scheduler is not None else ClookScheduler()
        self._host_pumping = False
        #: The pump callback, bound once: appended per slot grant, and a
        #: ``self._host_step`` reference allocates a bound method each use.
        self._host_step_cb = self._host_step
        #: Arrivals since the last batch-planning pass.  Re-planning is
        #: pointless until the backlog changes: the batch planner is a
        #: pure function of the queued request set, so a pop with an
        #: unplanned head re-scans only once enough new arrivals landed
        #: to possibly make the array ops pay (a skipped plan just means
        #: the scalar path — plans are optional).
        self._plan_dirty = 0
        #: Callback-pump state: the pending slot grant (None between runs).
        self._host_wait: Event | None = None
        self._clook_position = 0
        self._rebuilding: dict[int, Event] = {}
        #: All-zero write payloads by byte length: replay traces carry no
        #: data, so the functional store sees the same zero buffer per
        #: request size instead of a fresh ``bytes`` allocation per write.
        #: Request sizes are bounded by the staging budget, so the cache
        #: stays small.
        self._zero_payloads: dict[int, bytes] = {}
        self._scrub_running = False
        self._force_scrub = False
        self._finished = False
        self._degraded_disk: int | None = None
        #: Every currently-failed member, in failure order; the first is
        #: mirrored in ``_degraded_disk`` (the hot paths test that alone).
        self._failed_disks: list[int] = []
        #: Structured outcomes of unsurvivable concurrent failures.
        self.data_loss_events: list[DataLossEvent] = []
        #: Latent sectors rewritten by the scrubber (kept off ArrayStats:
        #: the golden-replay fixtures compare that dataclass field-exact).
        self.latent_sectors_repaired = 0

        self.detector.on_idle.append(self._on_idle)
        policy.attach(self)

    # -- observability ----------------------------------------------------------------

    def attach_observability(
        self,
        tracer: "Tracer | None" = None,
        histograms: "HistogramSet | None" = None,
        registry: "MetricsRegistry | None" = None,
        exposure: "ExposureMonitor | None" = None,
    ) -> None:
        """Attach a tracer, latency histograms, and/or exposure telemetry.

        The tracer is propagated to the back-end drivers (per-disk command
        spans) and to the policy (decision instants); the registry goes to
        the policy too (mode-switch counters).  A ``registry`` without an
        ``exposure`` monitor gets a default :class:`~repro.obs.ExposureMonitor`
        (window and reliability parameters from :attr:`params`), since the
        registry's availability gauges are its publications.  Passing
        ``None`` for a sink detaches it.
        """
        self.tracer = tracer
        self.hists = histograms
        if registry is not None and exposure is None:
            from repro.obs.exposure import ExposureMonitor

            exposure = ExposureMonitor(params=self.params)
        self.registry = registry
        self.exposure = exposure
        if exposure is not None:
            exposure.attach(self, registry)
        for driver in self.drivers:
            driver.tracer = tracer
        self.policy.tracer = tracer
        self.policy.registry = registry

    def _observe_client(self, request: ArrayRequest) -> None:
        """Record one completed client request into the attached sinks."""
        if self.hists is not None:
            if self._degraded_disk is not None:
                request_class = "degraded_write" if request.is_write else "degraded_read"
            elif request.is_write:
                request_class = "client_write"
            else:
                request_class = "client_read"
            self.hists.record(request_class, request.io_time)
        if self.tracer is not None:
            self.tracer.complete(
                "write" if request.is_write else "read",
                start_s=request.submit_time,
                duration_s=request.io_time,
                track="client",
                category="client",
                offset=request.offset_sectors,
                nsectors=request.nsectors,
            )

    # -- ArrayView protocol (what policies see) -------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def ndisks(self) -> int:
        return len(self.disks)

    @property
    def dirty_stripe_count(self) -> int:
        return self.marks.marked_stripe_count

    @property
    def is_idle(self) -> bool:
        return self.detector.is_idle

    def unprotected_fraction_so_far(self) -> float:
        return self.lag_tracker.snapshot_unprotected_fraction(self.sim.now)

    def idle_fraction_so_far(self) -> float:
        return self.detector.idle_fraction()

    def request_scrub(self, force: bool = False) -> None:
        """Ask for background parity rebuilding (``force``: even if busy)."""
        if force:
            if not self._force_scrub and self.exposure is not None:
                self.exposure.forced_scrub()
            self._force_scrub = True
        self._ensure_scrubber()

    # -- derived figures --------------------------------------------------------------

    @property
    def parity_lag_bytes(self) -> float:
        """Current unredundant non-parity data (the paper's parity lag)."""
        per_mark = (
            self.layout.data_units_per_stripe * self.unit_bytes / self.marks.bits_per_stripe
        )
        return self.marks.count * per_mark

    @property
    def data_capacity_bytes(self) -> int:
        return self.layout.total_data_sectors * self.sector_bytes

    # -- client API ------------------------------------------------------------------------

    def submit(self, request: ArrayRequest) -> Event:
        """Hand ``request`` to the host driver; event fires at completion.

        The event's value is the request itself (with times stamped and,
        when a functional store is attached, read payloads filled in).
        """
        if self._finished:
            raise RuntimeError(f"{self.name} has been finalised")
        if request.offset_sectors + request.nsectors > self.layout.total_data_sectors:
            raise ValueError(
                f"request [{request.offset_sectors}, +{request.nsectors}) exceeds "
                f"array data capacity of {self.layout.total_data_sectors} sectors"
            )
        if request.submit_time is not None:
            raise ValueError("request was already submitted")
        sim = self.sim
        request.submit_time = sim._now
        self.detector.activity_started()
        # Event() inlined: one completion per client request, hot at
        # whole-trace replay scale.
        done = Event.__new__(Event)
        done.sim = sim
        done.name = self._ev_done
        done.callbacks = []
        done.defused = False
        done._value = _PENDING
        done._exception = None
        done._scheduled = False
        done._handled = False
        self._host_queue.push((request, done), request.offset_sectors)
        self._plan_dirty += 1
        if not self._host_pumping:
            self._host_pumping = True
            # Callback pump: replicates the old generator pump's
            # bootstrap event exactly (pre-triggered, one callback, at
            # (now, seq)), so same-instant dispatch order is unchanged;
            # each slot wait is a plain callback instead of a generator
            # frame suspension.
            kick = Event.__new__(Event)
            kick.sim = sim
            kick.name = ""
            kick.callbacks = [self._host_step_cb]
            kick.defused = False
            kick._value = None
            kick._exception = None
            kick._scheduled = True
            kick._handled = False
            sim._sequence += 1
            sim._bucket.append(kick)
        return done

    def finalize(self) -> None:
        """Close the parity-lag (and NVRAM-dirty) integrals at the current time."""
        if not self._finished:
            self._finished = True
            self.lag_tracker.finish(self.sim.now)
            self.nvram_dirty_tracker.finish(self.sim.now)
            if self.exposure is not None:
                self.exposure.finish(self.sim.now)

    def drain(self) -> Event:
        """An event that fires once no client work is queued or in flight."""
        done = self.sim.event(name=f"{self.name}.drained")
        if self.detector.is_idle and not self._host_queue:
            done.succeed()
        else:
            self.detector.on_idle.append(lambda: done.succeed() if not done.triggered else None)
        return done

    # -- host-side dispatch --------------------------------------------------------------------

    def _host_step(self, event: Event) -> None:
        """One host-pump step: dispatch on a granted slot, re-arm or park.

        The loop ``while queue: yield acquire(); pop; spawn _service`` of
        the old generator pump, unrolled into callbacks: a slot grant pops
        the C-LOOK queue and spawns the service call, then the next
        acquisition is armed at the same cascade position the generator
        re-armed its yield.  Write-through arrays (the paper's §4.1
        configuration) run the callback service machine; write-back keeps
        the generator (its early-ack/background-flush split needs the
        exception plumbing of a real process).
        """
        if event is self._host_wait:
            self._host_wait = None
            sim = self.sim
            slots = self.slots
            while True:
                (request, done), position = self._host_queue.pop(self._clook_position)
                self._clook_position = position
                if self._callback_service:
                    if (
                        request.plan is None
                        and self._plan_dirty >= MIN_VECTOR_EXTENTS
                        and self._host_queue
                        and self._degraded_disk is None
                        and not self._rebuilding
                        and type(self.layout) is Raid5Layout
                    ):
                        # The driver holds a backlog: plan its geometry as
                        # one batch (see repro.array.batchplan).
                        plan_host_batch(self, request)
                    if (
                        not sim._bucket
                        and (not sim._queue or sim._queue[0][0] > sim._now)
                        and (
                            not self._host_queue
                            or slots._in_use >= slots.capacity
                            or slots._waiters
                        )
                    ):
                        # Quiet kernel and the re-arm below will not
                        # schedule a grant (queue drained, or no slot
                        # free): the service bootstrap kick would dispatch
                        # immediately next, with anything the body itself
                        # appends to the bucket keeping its relative order
                        # — so run the body inline and elide the kick.
                        _ServiceCall(self, request, done)._start(None)
                    else:
                        _ServiceCall(self, request, done).start()
                else:
                    self.sim.process(self._service(request, done), name=self._ev_service)
                if not self._host_queue:
                    self._host_pumping = False
                    return
                # Re-arm.  When the grant would be immediate (free slot,
                # no waiters) and the kernel is quiet, the scalar cascade
                # from here is exactly grant-dispatch → this handler —
                # nothing can interleave — so take the slot in place and
                # loop, eliding the grant event.  A service kick in the
                # bucket (the common loaded case) fails the quiet check
                # and parks on a real grant, preserving the kick/grant
                # interleaving that paces scalar dispatch.
                if (
                    slots._in_use < slots.capacity
                    and not slots._waiters
                    and not sim._bucket
                    and (not sim._queue or sim._queue[0][0] > sim._now)
                ):
                    slots._in_use += 1
                    continue
                grant = slots.acquire()
                grant.callbacks.append(self._host_step_cb)
                self._host_wait = grant
                return
        elif (
            self._callback_service
            and len(self._host_queue) == 1
            and self._degraded_disk is None
            and not self._rebuilding
            and self.slots._in_use < self.slots.capacity
            and not self.slots._waiters
            and not self.sim._bucket
            and (not self.sim._queue or self.sim._queue[0][0] > self.sim._now)
        ):
            # Fused dispatch at the bootstrap kick.  With exactly one
            # request queued, a free slot, and a quiet kernel, the scalar
            # cascade from here is fully determined: the uncontended slot
            # grant would dispatch next (pop + service spawn), then the
            # service bootstrap kick (request body).  Nothing can be
            # scheduled in between — same-instant events all join the
            # bucket behind the grant — so running pop and body inline
            # here is dispatch-for-dispatch identical and elides both
            # events.  With a backlog (>1 queued) the scalar pump
            # interleaves the next pop between this request's kicks, so
            # fusion is skipped whenever requests could interact.
            self.slots._in_use += 1
            (request, done), position = self._host_queue.pop(self._clook_position)
            self._clook_position = position
            self._host_pumping = False
            _ServiceCall(self, request, done)._start(None)
            return
        if self._host_queue:
            grant = self.slots.acquire()
            grant.callbacks.append(self._host_step_cb)
            self._host_wait = grant
        else:
            self._host_pumping = False

    def _service(self, request: ArrayRequest, done: Event):
        request.dispatch_time = self.sim.now
        try:
            if request.is_write and self.write_policy == "writeback":
                # Completes `done` early (at NVRAM ack), then keeps the
                # slot and detector accounting until the flush lands.
                yield from self._service_write_writeback(request, done)
            elif request.is_write:
                yield from self._service_write(request)
            else:
                yield from self._service_read(request)
        except BaseException as exc:
            self.slots.release()
            self.detector.activity_ended()
            if done.triggered:
                raise  # client already acked: the background flush failed
            done.fail(exc)
            return
        self.slots.release()
        self.detector.activity_ended()
        if done.triggered:
            return  # writeback: acked at NVRAM time
        request.complete_time = self.sim.now
        if request.is_write:
            self.stats.writes_completed += 1
        else:
            self.stats.reads_completed += 1
        self.stats.io_times.append(request.io_time)
        if self.hists is not None or self.tracer is not None:
            self._observe_client(request)
        done.succeed(request)

    # -- degraded-mode state (used by repro.ext.rebuild) -----------------------------------------------

    @property
    def degraded_disk(self) -> int | None:
        """The failed member the array is currently operating without.

        With several concurrent failures this is the *first* still-failed
        member (the one a rebuild is working on); see :attr:`failed_disks`
        for the whole set.
        """
        return self._degraded_disk

    @property
    def failed_disks(self) -> tuple[int, ...]:
        """All currently-failed members, in failure order."""
        return tuple(self._failed_disks)

    def enter_degraded(self, disk: int) -> "DataLossEvent | None":
        """Operate without member ``disk``: reads use the redundant copy
        (parity reconstruction or the mirror partner), writes take the
        organization's degraded path.

        A failure beyond the first no longer raises: it returns a
        :class:`DataLossEvent` describing the outcome — survivable for
        mirrored organizations whose partner copies are intact, a
        recorded data loss otherwise — so nemesis and campaign loops can
        log it and keep running.
        """
        if not 0 <= disk < self.ndisks:
            raise ValueError(f"disk {disk} out of range")
        if disk in self._failed_disks:
            return None  # already known failed
        self._failed_disks.append(disk)
        if self._degraded_disk is None:
            self._degraded_disk = disk
        if len(self._failed_disks) < 2:
            return None
        survivable = self.organization.can_absorb(self._failed_disks)
        event = DataLossEvent(
            time_s=self.sim.now,
            disk=disk,
            failed_disks=tuple(self._failed_disks),
            organization=self.organization.name,
            survivable=survivable,
            dirty_stripes=self.marks.marked_stripe_count,
            parity_lag_bytes=self.parity_lag_bytes,
            reason=(
                "redundant copies cover every failed member"
                if survivable
                else "concurrent failures exceed the organization's redundancy"
            ),
        )
        if not survivable:
            self.data_loss_events.append(event)
        if self.tracer is not None:
            self.tracer.instant(
                "multi_disk_failure", track="faults", category="fault",
                disk=disk, failed_disks=len(self._failed_disks),
                survivable=survivable,
            )
        if self.registry is not None:
            self.registry.counter(
                "multi_disk_failures_total", "disk failures beyond the first concurrent one"
            ).inc()
            if not survivable:
                self.registry.counter(
                    "data_loss_events_total", "recorded unsurvivable failure combinations"
                ).inc()
        return event

    def leave_degraded(self, disk: int | None = None) -> None:
        """A replacement disk is fully rebuilt: resume normal operation.

        With no argument every failure is considered repaired (the
        historical single-failure behaviour); passing ``disk`` clears
        just that member, and ``degraded_disk`` moves to the next
        still-failed one.
        """
        if disk is None:
            self._failed_disks.clear()
        elif disk in self._failed_disks:
            self._failed_disks.remove(disk)
        self._degraded_disk = self._failed_disks[0] if self._failed_disks else None

    # -- reads ---------------------------------------------------------------------------------------

    def _service_read(self, request: ArrayRequest):
        if self.read_cache.lookup(request.offset_sectors, request.nsectors):
            yield self.sim.timeout(self.cache_hit_latency_s)
        else:
            runs = self.layout.map_extent(request.offset_sectors, request.nsectors)
            drivers = self.drivers
            if self._degraded_disk is None:
                # Fault-free fast path: the degraded-disk comparison and
                # stats increment leave the per-run loop.
                events = [
                    drivers[run.disk].submit(DiskIO(IoKind.READ, run.disk_lba, run.nsectors))
                    for run in runs
                ]
                self.stats.foreground_data_reads += len(events)
            else:
                events = []
                for run in runs:
                    if run.disk in self._failed_disks:
                        if self._mirrored:
                            events.extend(self._submit_mirror_read(run))
                        else:
                            events.extend(self._submit_degraded_read(run))
                    else:
                        events.append(
                            drivers[run.disk].submit(DiskIO(IoKind.READ, run.disk_lba, run.nsectors))
                        )
                        self.stats.foreground_data_reads += 1
            yield AllOf(self.sim, events)
            self.read_cache.insert(request.offset_sectors, request.nsectors)
        if self.functional is not None:
            request.result_data = self.functional.read(request.offset_sectors, request.nsectors)

    def _submit_degraded_read(self, run: ExtentRun) -> list[Event]:
        """Reconstruct a run on the failed disk: read the same extent of
        every surviving data unit plus parity, xor on the fly."""
        stripe = run.stripe
        in_unit = run.disk_lba - self._stripe_base_lba(run)
        events = []
        for unit in self.layout.data_units(stripe):
            if unit.disk in self._failed_disks:
                continue
            events.append(
                self.drivers[unit.disk].submit(
                    DiskIO(IoKind.READ, unit.disk_lba + in_unit, run.nsectors)
                )
            )
            self.stats.reconstruct_reads += 1
        parity = self.layout.parity_unit(stripe)
        if parity.disk not in self._failed_disks:
            events.append(
                self.drivers[parity.disk].submit(
                    DiskIO(IoKind.READ, parity.disk_lba + in_unit, run.nsectors)
                )
            )
            self.stats.reconstruct_reads += 1
        return events

    def _stripe_base_lba(self, run: ExtentRun) -> int:
        """The first sector of ``run``'s unit on its disk (offset anchor)."""
        if self.organization.declustered:
            return self.layout.unit_lba(run.stripe, run.disk)
        return run.stripe * self.layout.stripe_unit_sectors

    def _disk_alive(self, disk: int) -> bool:
        return disk not in self._failed_disks and not self.disks[disk].failed

    def _alive_copy(self, primary: int) -> int | None:
        """The alive member of ``primary``'s mirror pair, preferring it."""
        if self._disk_alive(primary):
            return primary
        twin = self.layout.mirror_disk(primary)
        if self._disk_alive(twin):
            return twin
        return None

    def _submit_mirror_read(self, run: ExtentRun) -> list[Event]:
        """Serve a run on a failed member from its mirror partner.

        When the whole pair is down, a parity organization (RAID 1+5)
        reconstructs through the surviving pairs; a pure mirror has no
        further redundancy — the loss was recorded at failure time and
        the read completes without disk work.
        """
        twin = self.layout.mirror_disk(run.disk)
        if self._disk_alive(twin):
            self.stats.foreground_data_reads += 1
            return [
                self.drivers[twin].submit(DiskIO(IoKind.READ, run.disk_lba, run.nsectors))
            ]
        if not self.layout.has_parity:
            return []
        stripe = run.stripe
        in_unit = run.disk_lba - stripe * self.layout.stripe_unit_sectors
        events = []
        for unit in self.layout.data_units(stripe):
            if unit.unit_index == run.unit_index:
                continue
            disk = self._alive_copy(unit.disk)
            if disk is None:
                continue
            events.append(
                self.drivers[disk].submit(
                    DiskIO(IoKind.READ, unit.disk_lba + in_unit, run.nsectors)
                )
            )
            self.stats.reconstruct_reads += 1
        parity = self.layout.parity_unit(stripe)
        disk = self._alive_copy(parity.disk)
        if disk is not None:
            events.append(
                self.drivers[disk].submit(
                    DiskIO(IoKind.READ, parity.disk_lba + in_unit, run.nsectors)
                )
            )
            self.stats.reconstruct_reads += 1
        return events

    # -- writes -----------------------------------------------------------------------------------------

    def _service_write(self, request: ArrayRequest):
        """Write-through: complete once the data (and any parity work the
        mode requires) is on disk."""
        nbytes = request.nsectors * self.sector_bytes
        yield self.staging.reserve(nbytes)
        try:
            yield from self._perform_write(request)
        finally:
            self.staging.release(nbytes)
        self.read_cache.insert(request.offset_sectors, request.nsectors)

    def _service_write_writeback(self, request: ArrayRequest, done: Event):
        """Write-back: ack at NVRAM speed, flush to disk in the background.

        This is the single-copy-NVRAM configuration of §3.4: until the
        flush lands, ``nbytes`` of client data exist only in the staging
        NVRAM — `nvram_dirty_tracker` integrates that exposure so the
        PrestoServe-style MDLR comparison can be computed from a run.
        """
        nbytes = request.nsectors * self.sector_bytes
        yield self.staging.reserve(nbytes)
        self._nvram_dirty_changed(+nbytes)
        yield self.sim.timeout(self.nvram_ack_latency_s)
        request.complete_time = self.sim.now
        self.stats.writes_completed += 1
        self.stats.io_times.append(request.io_time)
        if self.hists is not None or self.tracer is not None:
            self._observe_client(request)
        done.succeed(request)
        try:
            yield from self._perform_write(request)
        finally:
            self.staging.release(nbytes)
            self._nvram_dirty_changed(-nbytes)
        self.read_cache.insert(request.offset_sectors, request.nsectors)

    def _nvram_dirty_changed(self, delta: int) -> None:
        self._nvram_dirty_bytes += delta
        if not self._finished:
            self.nvram_dirty_tracker.record(self.sim.now, self._nvram_dirty_bytes)

    def _perform_write(self, request: ArrayRequest):
        """The disk-side work of a write, independent of ack policy."""
        runs_by_stripe = self._group_runs(request)
        # Block while any target stripe's parity rebuild is in flight.
        for stripe in list(runs_by_stripe):
            while stripe in self._rebuilding:
                yield self._rebuilding[stripe]
        if self._mirrored:
            yield from self._write_mirror(request, runs_by_stripe)
        elif self._degraded_disk is not None:
            yield from self._write_degraded(request, runs_by_stripe)
        else:
            mode = self.policy.write_mode(tuple(runs_by_stripe))
            if mode is WriteMode.AFRAID:
                yield from self._write_afraid(request, runs_by_stripe)
            else:
                yield from self._write_raid5(request, runs_by_stripe)

    def _group_runs(self, request: ArrayRequest) -> dict[int, list[ExtentRun]]:
        grouped: dict[int, list[ExtentRun]] = {}
        for run in self.layout.map_extent(request.offset_sectors, request.nsectors):
            bucket = grouped.get(run.stripe)
            if bucket is None:
                grouped[run.stripe] = [run]
            else:
                bucket.append(run)
        return grouped

    def _payload(self, request: ArrayRequest) -> bytes:
        if request.data is not None:
            return request.data
        nbytes = request.nsectors * self.sector_bytes
        payload = self._zero_payloads.get(nbytes)
        if payload is None:
            payload = self._zero_payloads[nbytes] = bytes(nbytes)
        return payload

    def _write_afraid(self, request: ArrayRequest, runs_by_stripe: dict[int, list[ExtentRun]]):
        """The AFRAID write: mark first, then one data write per run."""
        newly_marked = False
        exposure = self.exposure
        marks = self.marks
        now = self.sim.now
        if marks.bits_per_stripe == 1:
            # The common configuration: one mark per stripe, so each run
            # hits sub-unit 0 and the per-run span arithmetic is skipped.
            for stripe, runs in runs_by_stripe.items():
                if exposure is not None:
                    exposure.stripe_dirtied(stripe, now)
                for _run in runs:
                    newly_marked |= marks.mark(stripe, 0)
        else:
            for stripe, runs in runs_by_stripe.items():
                if exposure is not None:
                    exposure.stripe_dirtied(stripe, now)
                for run in runs:
                    for sub_unit in self._sub_units_of(run):
                        newly_marked |= marks.mark(stripe, sub_unit)
        if newly_marked:
            self._lag_changed()
        events = []
        drivers = self.drivers
        submitted = 0
        for runs in runs_by_stripe.values():
            for run in runs:
                events.append(
                    drivers[run.disk].submit(DiskIO(IoKind.WRITE, run.disk_lba, run.nsectors))
                )
                submitted += 1
        self.stats.foreground_data_writes += submitted
        yield AllOf(self.sim, events)
        if self.functional is not None:
            self.functional.write(
                request.offset_sectors, self._payload(request), update_parity=False
            )
        self.policy.on_stripes_marked()

    def _sub_units_of(self, run: ExtentRun) -> range:
        """The marking sub-units a run overlaps (always {0} with 1 bit).

        Sub-units divide the stripe-unit *height* (§5): with M bits per
        stripe, bit k covers rows [k·U/M, (k+1)·U/M) of every unit in the
        stripe, so a rebuild touches only that horizontal slice.
        """
        bits = self.marks.bits_per_stripe
        if bits == 1:
            return range(0, 1)
        unit_sectors = self.layout.stripe_unit_sectors
        start_in_unit = run.disk_lba - self._stripe_base_lba(run)
        return sub_units_overlapping(start_in_unit, run.nsectors, unit_sectors, bits)

    def _sub_unit_extent(self, sub_unit: int) -> tuple[int, int]:
        """(start sector within the unit, sector count) of one sub-unit."""
        return sub_unit_extent(
            sub_unit, self.layout.stripe_unit_sectors, self.marks.bits_per_stripe
        )

    def _write_raid5(self, request: ArrayRequest, runs_by_stripe: dict[int, list[ExtentRun]]):
        """RAID 5 semantics: parity leaves this write consistent."""
        stripe_procs = [
            self.sim.process(self._write_raid5_stripe(stripe, runs), name=self._ev_r5w)
            for stripe, runs in runs_by_stripe.items()
        ]
        yield AllOf(self.sim, stripe_procs)
        if self.functional is not None:
            self.functional.write(
                request.offset_sectors, self._payload(request), update_parity=False
            )
            for stripe in runs_by_stripe:
                self.functional.scrub_stripe(stripe)

    def _write_raid5_stripe(self, stripe: int, runs: list[ExtentRun]):
        unit_sectors = self.layout.stripe_unit_sectors
        covered = sum(run.nsectors for run in runs)
        full_stripe = covered == self.layout.stripe_data_sectors
        parity = self.layout.parity_unit(stripe)
        was_dirty = self.marks.is_marked(stripe)

        if full_stripe:
            # Large-write optimisation: parity computes from the new data
            # alone; no pre-reads.
            writes = self._submit_data_writes(runs)
            writes.append(
                self.drivers[parity.disk].submit(DiskIO(IoKind.WRITE, parity.disk_lba, unit_sectors))
            )
            self.stats.foreground_parity_writes += 1
            yield AllOf(self.sim, writes)
        elif was_dirty:
            # Parity is stale: a read-modify-write would seal in garbage.
            # Reconstruct instead: read the data units not fully overwritten,
            # then write the new data and a freshly computed parity unit.
            covered_units = {
                run.unit_index for run in runs if run.nsectors == unit_sectors
            }
            reads = []
            for unit in self.layout.data_units(stripe):
                if unit.unit_index in covered_units:
                    continue
                reads.append(
                    self.drivers[unit.disk].submit(DiskIO(IoKind.READ, unit.disk_lba, unit_sectors))
                )
                self.stats.reconstruct_reads += 1
            if reads:
                yield AllOf(self.sim, reads)
            writes = self._submit_data_writes(runs)
            writes.append(
                self.drivers[parity.disk].submit(DiskIO(IoKind.WRITE, parity.disk_lba, unit_sectors))
            )
            self.stats.foreground_parity_writes += 1
            yield AllOf(self.sim, writes)
        else:
            # The classic small-update path (Figure 1): read old data and
            # old parity, then write new data and new parity — all in the
            # critical path of the client write.
            lo = min(run.disk_lba - self._stripe_base_lba(run) for run in runs)
            hi = max(run.disk_lba - self._stripe_base_lba(run) + run.nsectors for run in runs)
            parity_lba = parity.disk_lba + lo
            parity_span = hi - lo
            reads = []
            for run in runs:
                reads.append(
                    self.drivers[run.disk].submit(DiskIO(IoKind.READ, run.disk_lba, run.nsectors))
                )
                self.stats.preread_ios += 1
            reads.append(
                self.drivers[parity.disk].submit(DiskIO(IoKind.READ, parity_lba, parity_span))
            )
            self.stats.preread_ios += 1
            yield AllOf(self.sim, reads)
            writes = self._submit_data_writes(runs)
            writes.append(
                self.drivers[parity.disk].submit(DiskIO(IoKind.WRITE, parity_lba, parity_span))
            )
            self.stats.foreground_parity_writes += 1
            yield AllOf(self.sim, writes)

        if was_dirty:
            self.marks.clear_stripe(stripe)
            self._lag_changed()
            if self.exposure is not None:
                self.exposure.stripe_cleaned(stripe, self.sim.now, cause="write")

    def _write_degraded(self, request: ArrayRequest, runs_by_stripe: dict[int, list[ExtentRun]]):
        """Writes while a member disk is missing.

        Parity must absorb the write immediately (there is no disk to
        defer to), so every stripe takes a reconstruct-style update: read
        the surviving data units, then write the surviving data runs and
        — when the parity disk is alive — a freshly computed parity unit.
        Data destined for the failed disk is represented only by parity
        until the rebuild completes.
        """
        unit_sectors = self.layout.stripe_unit_sectors
        failed = self._failed_disks
        for stripe, runs in runs_by_stripe.items():
            parity = self.layout.parity_unit(stripe)
            reads = []
            for unit in self.layout.data_units(stripe):
                if unit.disk in failed:
                    continue
                reads.append(
                    self.drivers[unit.disk].submit(DiskIO(IoKind.READ, unit.disk_lba, unit_sectors))
                )
                self.stats.reconstruct_reads += 1
            if parity.disk not in failed:
                reads.append(
                    self.drivers[parity.disk].submit(
                        DiskIO(IoKind.READ, parity.disk_lba, unit_sectors)
                    )
                )
                self.stats.reconstruct_reads += 1
            if reads:
                yield AllOf(self.sim, reads)
            writes = self._submit_data_writes([run for run in runs if run.disk not in failed])
            if parity.disk not in failed:
                writes.append(
                    self.drivers[parity.disk].submit(
                        DiskIO(IoKind.WRITE, parity.disk_lba, unit_sectors)
                    )
                )
                self.stats.foreground_parity_writes += 1
            if writes:
                yield AllOf(self.sim, writes)
            if self.marks.is_marked(stripe) and parity.disk not in failed:
                self.marks.clear_stripe(stripe)
                self._lag_changed()
                if self.exposure is not None:
                    self.exposure.stripe_cleaned(stripe, self.sim.now, cause="write")
        if self.functional is not None:
            self.functional.write_degraded(
                request.offset_sectors, self._payload(request), self._degraded_disk
            )

    def _submit_data_writes(self, runs: list[ExtentRun]) -> list[Event]:
        drivers = self.drivers
        events = [
            drivers[run.disk].submit(DiskIO(IoKind.WRITE, run.disk_lba, run.nsectors))
            for run in runs
        ]
        self.stats.foreground_data_writes += len(events)
        return events

    # -- mirrored-organization writes ----------------------------------------------------

    def _mark_runs(self, runs_by_stripe: dict[int, list[ExtentRun]]) -> None:
        """Set the NVRAM marks a deferred (AFRAID-style) write requires."""
        newly_marked = False
        exposure = self.exposure
        marks = self.marks
        now = self.sim.now
        if marks.bits_per_stripe == 1:
            for stripe, runs in runs_by_stripe.items():
                if exposure is not None:
                    exposure.stripe_dirtied(stripe, now)
                for _run in runs:
                    newly_marked |= marks.mark(stripe, 0)
        else:
            for stripe, runs in runs_by_stripe.items():
                if exposure is not None:
                    exposure.stripe_dirtied(stripe, now)
                for run in runs:
                    for sub_unit in self._sub_units_of(run):
                        newly_marked |= marks.mark(stripe, sub_unit)
        if newly_marked:
            self._lag_changed()

    def _write_mirror(self, request: ArrayRequest, runs_by_stripe: dict[int, list[ExtentRun]]):
        """Writes on a mirrored organization (RAID 1, 1/0, or 1+5).

        The AFRAID deferral writes only the primary copy and marks the
        stripe (the scrubber copies primary → mirror in idle time); the
        synchronous mode writes both copies inline.  RAID 1+5 defers the
        *parity* instead — both mirror copies of the data always land, so
        dirty stripes stay mirror-protected.
        """
        if self.layout.has_parity:
            yield from self._write_mirror_raid15(request, runs_by_stripe)
        else:
            yield from self._write_mirror_plain(request, runs_by_stripe)
        if self.functional is not None:
            self.functional.write(
                request.offset_sectors, self._payload(request), update_parity=False
            )

    def _write_mirror_plain(
        self, request: ArrayRequest, runs_by_stripe: dict[int, list[ExtentRun]]
    ):
        """RAID 1 / RAID 1/0 write: deferred or synchronous mirror copy."""
        mode = self.policy.write_mode(tuple(runs_by_stripe))
        drivers = self.drivers
        if mode is WriteMode.AFRAID and not self._failed_disks:
            # Deferred copy: mark, write primaries only.
            self._mark_runs(runs_by_stripe)
            events = []
            for runs in runs_by_stripe.values():
                for run in runs:
                    events.append(
                        drivers[run.disk].submit(DiskIO(IoKind.WRITE, run.disk_lba, run.nsectors))
                    )
            self.stats.foreground_data_writes += len(events)
            yield AllOf(self.sim, events)
            self.policy.on_stripes_marked()
            return
        # Synchronous (or degraded) mirroring: both alive copies inline.
        events = []
        for runs in runs_by_stripe.values():
            for run in runs:
                for disk in (run.disk, self.layout.mirror_disk(run.disk)):
                    if self._disk_alive(disk):
                        events.append(
                            drivers[disk].submit(DiskIO(IoKind.WRITE, run.disk_lba, run.nsectors))
                        )
                        self.stats.foreground_data_writes += 1
        if events:
            yield AllOf(self.sim, events)
        # A synchronous write to a dirty stripe leaves the rest of the
        # stripe's mirror copy stale: catch the whole stripe up inline
        # (the mirrored analogue of the RAID 5 reconstruct-on-dirty path).
        if not self._failed_disks:
            for stripe in runs_by_stripe:
                if self.marks.is_marked(stripe):
                    yield from self._copy_stripe_inline(stripe)

    def _copy_stripe_inline(self, stripe: int):
        """Foreground primary → mirror copy of one dirty stripe."""
        unit_sectors = self.layout.stripe_unit_sectors
        reads = []
        for unit in self.layout.data_units(stripe):
            reads.append(
                self.drivers[unit.disk].submit(DiskIO(IoKind.READ, unit.disk_lba, unit_sectors))
            )
            self.stats.reconstruct_reads += 1
        yield AllOf(self.sim, reads)
        writes = []
        for index in range(self.layout.data_units_per_stripe):
            mirror = self.layout.mirror_unit(stripe, index)
            writes.append(
                self.drivers[mirror.disk].submit(
                    DiskIO(IoKind.WRITE, mirror.disk_lba, unit_sectors)
                )
            )
            self.stats.foreground_data_writes += 1
        yield AllOf(self.sim, writes)
        self.marks.clear_stripe(stripe)
        self._lag_changed()
        if self.exposure is not None:
            self.exposure.stripe_cleaned(stripe, self.sim.now, cause="write")

    def _write_mirror_raid15(
        self, request: ArrayRequest, runs_by_stripe: dict[int, list[ExtentRun]]
    ):
        """RAID 1+5 write: mirror copies inline, parity deferred or inline."""
        mode = self.policy.write_mode(tuple(runs_by_stripe))
        drivers = self.drivers
        unit_sectors = self.layout.stripe_unit_sectors
        if mode is WriteMode.AFRAID and not self._failed_disks:
            # Deferred parity: mark, write both copies of every data run.
            self._mark_runs(runs_by_stripe)
            events = []
            for runs in runs_by_stripe.values():
                for run in runs:
                    for disk in (run.disk, self.layout.mirror_disk(run.disk)):
                        events.append(
                            drivers[disk].submit(DiskIO(IoKind.WRITE, run.disk_lba, run.nsectors))
                        )
                        self.stats.foreground_data_writes += 1
            yield AllOf(self.sim, events)
            self.policy.on_stripes_marked()
            return
        # Synchronous (or degraded): reconstruct-style parity update.
        for stripe, runs in runs_by_stripe.items():
            parity = self.layout.parity_unit(stripe)
            covered_units = {
                run.unit_index for run in runs if run.nsectors == unit_sectors
            }
            reads = []
            for unit in self.layout.data_units(stripe):
                if unit.unit_index in covered_units:
                    continue
                disk = self._alive_copy(unit.disk)
                if disk is None:
                    continue
                reads.append(
                    drivers[disk].submit(DiskIO(IoKind.READ, unit.disk_lba, unit_sectors))
                )
                self.stats.reconstruct_reads += 1
            if reads:
                yield AllOf(self.sim, reads)
            writes = []
            for run in runs:
                for disk in (run.disk, self.layout.mirror_disk(run.disk)):
                    if self._disk_alive(disk):
                        writes.append(
                            drivers[disk].submit(DiskIO(IoKind.WRITE, run.disk_lba, run.nsectors))
                        )
                        self.stats.foreground_data_writes += 1
            for disk in (parity.disk, self.layout.mirror_disk(parity.disk)):
                if self._disk_alive(disk):
                    writes.append(
                        drivers[disk].submit(
                            DiskIO(IoKind.WRITE, parity.disk_lba, unit_sectors)
                        )
                    )
                    self.stats.foreground_parity_writes += 1
            if writes:
                yield AllOf(self.sim, writes)
            if self.marks.is_marked(stripe) and self._alive_copy(parity.disk) is not None:
                self.marks.clear_stripe(stripe)
                self._lag_changed()
                if self.exposure is not None:
                    self.exposure.stripe_cleaned(stripe, self.sim.now, cause="write")

    # -- background parity scrubbing --------------------------------------------------------------------

    def _on_idle(self) -> None:
        if self.marks.count and self.policy.may_scrub_now():
            self._ensure_scrubber()

    def _ensure_scrubber(self) -> None:
        if not self._scrub_running and self.marks.count:
            self._scrub_running = True
            self.sim.process(self._scrub_loop(), name=f"{self.name}.scrubber")

    def _may_scrub_more(self) -> bool:
        if self._degraded_disk is not None:
            # Parity cannot be made whole without the failed member; the
            # rebuild manager restores redundancy instead.
            return False
        if self._force_scrub or self.policy.scrub_despite_load():
            return True
        return self.detector.is_idle and self.policy.may_scrub_now()

    def _next_scrub_target(self) -> tuple[int, int] | None:
        """Oldest (stripe, sub_unit) mark the policy allows scrubbing."""
        for stripe, sub_unit in self.marks.marks_in_order():
            if self.policy.should_scrub_stripe(stripe):
                return stripe, sub_unit
        return None

    def _scrub_loop(self):
        try:
            while self.marks.count and self._may_scrub_more():
                target = self._next_scrub_target()
                if target is None:
                    break  # only policy-excluded (e.g. RAID 0 region) debt left
                stripe, sub_unit = target
                try:
                    if self._mirrored:
                        yield from self._scrub_stripe_mirror(stripe, sub_unit)
                    elif self.marks.bits_per_stripe == 1:
                        yield from self._scrub_stripe(stripe)
                    else:
                        yield from self._scrub_sub_unit(stripe, sub_unit)
                except DiskFailedError:
                    # A member died with scrub I/O in flight; the array is
                    # degraded now, so stop — the rebuild manager (not the
                    # scrubber) restores redundancy.
                    break
        finally:
            self._scrub_running = False
            if self._next_scrub_target() is None:
                self._force_scrub = False

    def _scrub_stripe(self, stripe: int):
        """Rebuild one stripe's parity: read all data units, write parity.

        Not preemptible once started (§4.1: requests run to completion);
        client writes to this stripe wait on the barrier event.
        """
        if stripe in self._rebuilding:
            # Someone else (scrubber vs. commit) is already rebuilding it.
            yield self._rebuilding[stripe]
            return
        if not self.marks.is_marked(stripe):
            return  # already clean
        barrier = self.sim.event(name=self._ev_rebuild)
        self._rebuilding[stripe] = barrier
        started = self.sim.now
        try:
            unit_sectors = self.layout.stripe_unit_sectors
            attempts = 0
            while True:
                reads = []
                for unit in self.layout.data_units(stripe):
                    reads.append(
                        self.drivers[unit.disk].submit(
                            DiskIO(IoKind.READ, unit.disk_lba, unit_sectors)
                        )
                    )
                    self.stats.scrub_data_reads += 1
                try:
                    yield AllOf(self.sim, reads)
                except LatentSectorError:
                    attempts += 1
                    if attempts > 3:
                        raise
                    units = None
                    if self.organization.declustered:
                        # Member units live at per-disk offsets, not at the
                        # common ``stripe * unit`` lba of the rotated layouts.
                        units = list(self.layout.data_units(stripe))
                        units.append(self.layout.parity_unit(stripe))
                    yield from self._repair_latent_extent(
                        stripe * unit_sectors, unit_sectors, units=units
                    )
                    continue
                break
            if self._degraded_disk is not None:
                # A member died while we were reading: the stripe cannot
                # be made redundant any more.  Leave the mark set (it is
                # what the loss accounting is based on) and give up.
                return
            parity = self.layout.parity_unit(stripe)
            yield self.drivers[parity.disk].submit(
                DiskIO(IoKind.WRITE, parity.disk_lba, unit_sectors)
            )
            self.stats.scrub_parity_writes += 1
            if self._degraded_disk is not None:
                return  # died during the parity write: same story
            self.marks.clear_stripe(stripe)
            self._lag_changed()
            if self.exposure is not None:
                self.exposure.stripe_cleaned(stripe, self.sim.now, cause="scrub")
            self.stats.stripes_scrubbed += 1
            if self.hists is not None or self.tracer is not None:
                self._observe_scrub("scrub_stripe", started, stripe)
            if self.functional is not None:
                self.functional.scrub_stripe(stripe)
        finally:
            del self._rebuilding[stripe]
            barrier.succeed()

    def _repair_latent_extent(self, base_lba: int, nsectors: int, units=None):
        """Rewrite latent sectors any member reports in [base_lba, +nsectors).

        A write over a latent sector heals it (the drive remaps); content
        comes from parity reconstruction — possible exactly when the rows
        are clean, which the scrubber is about to make true anyway.

        With ``units`` (declustered layouts, where stripe members sit at
        per-disk lbas), scan each unit's own extent instead of one common
        lba span; ``base_lba`` is then interpreted as an in-unit offset
        relative to ``stripe * stripe_unit_sectors``.
        """
        if units is not None:
            in_unit = base_lba % self.layout.stripe_unit_sectors
            spans = [(unit.disk, unit.disk_lba + in_unit) for unit in units]
        else:
            spans = [(index, base_lba) for index in range(len(self.disks))]
        writes = []
        repaired = 0
        for index, span_lba in spans:
            disk = self.disks[index]
            if disk.failed:
                continue
            bad = disk.latent_errors_within(span_lba, nsectors)
            if not bad:
                continue
            for lba in bad:
                writes.append(self.drivers[index].submit(DiskIO(IoKind.WRITE, lba, 1)))
            repaired += len(bad)
            if self.tracer is not None:
                self.tracer.instant(
                    "latent_repair", track="faults", category="fault",
                    disk=index, sectors=len(bad),
                )
        if writes:
            yield AllOf(self.sim, writes)
        self.latent_sectors_repaired += repaired
        if repaired and self.registry is not None:
            self.registry.counter(
                "latent_sectors_repaired_total", "latent sectors healed by rewrite"
            ).inc(repaired)

    def _observe_scrub(self, name: str, started: float, stripe: int) -> None:
        """Record one finished parity rebuild into the attached sinks."""
        duration = self.sim.now - started
        if self.hists is not None:
            self.hists.record("scrub", duration)
        if self.tracer is not None:
            self.tracer.complete(
                name, start_s=started, duration_s=duration,
                track="scrubber", category="scrub", stripe=stripe,
            )

    # -- paritypoints (§5 / [Cormen93]) -------------------------------------------------------------------

    def commit(self, offset_sectors: int, nsectors: int) -> Event:
        """Make an extent durable-redundant *now* — a paritypoint.

        The §5 refinement ("the host could then actively request that a
        set of stripes be made redundant, analogous to the traditional
        database commit operation"): every dirty stripe the extent
        touches is scrubbed in the foreground, regardless of idleness.
        The returned event fires once all touched stripes are redundant.
        """
        if self._degraded_disk is not None:
            raise RuntimeError("cannot commit while degraded: rebuild the failed disk first")
        stripes = list(self.layout.stripes_touched(offset_sectors, nsectors))
        done = self.sim.event(name=self._ev_commit)
        started = self.sim.now

        def committer():
            for stripe in stripes:
                if stripe in self._rebuilding:
                    yield self._rebuilding[stripe]  # scrubber already on it
                if self.marks.is_marked(stripe):
                    if self._mirrored:
                        for sub_unit in range(self.marks.bits_per_stripe):
                            if self.marks.is_marked(stripe, sub_unit):
                                yield from self._scrub_stripe_mirror(stripe, sub_unit)
                    else:
                        yield from self._scrub_stripe(stripe)
            if self.tracer is not None:
                self.tracer.complete(
                    "commit", start_s=started, duration_s=self.sim.now - started,
                    track="scrubber", category="commit", stripes=len(stripes),
                )
            return len(stripes)

        proc = self.sim.process(committer(), name=self._ev_commit)
        proc.add_callback(lambda event: done.succeed(event.value) if event.ok else done.fail(event.exception))
        return done

    # -- NVRAM failure recovery (§3.1) --------------------------------------------------------------------

    def recover_mark_memory(self) -> None:
        """Recover from a marking-memory failure.

        The array can no longer tell which stripes were unprotected, so it
        conservatively marks *every* stripe and rebuilds parity across the
        whole array (the paper: ~10 minutes for 2 GB disks at 5 MB/s),
        proceeding in parallel with continued use.
        """
        self.marks.recover()
        for stripe in range(self.layout.nstripes):
            for sub_unit in range(self.marks.bits_per_stripe):
                self.marks.mark(stripe, sub_unit)
        if self.exposure is not None:
            now = self.sim.now
            for stripe in range(self.layout.nstripes):
                self.exposure.stripe_dirtied(stripe, now)
        self._lag_changed()
        if self.tracer is not None:
            self.tracer.instant(
                "nvram_recovery", track="faults", category="fault",
                stripes=self.layout.nstripes,
            )
        self.request_scrub(force=True)

    def recovery_scan(self) -> None:
        """§3.1 restart recovery: drain whatever marks survived the crash.

        NVRAM marks persist across a power loss, so a restarted array
        knows exactly which stripes are unredundant; this forces the
        scrubber over them regardless of idleness (paper: "the system must
        wait only a few seconds before full performance is available" —
        redundancy, not correctness, is what the scan restores).
        """
        if self.tracer is not None:
            self.tracer.instant(
                "recovery_scan", track="faults", category="fault",
                stripes=self.marks.marked_stripe_count, marks=self.marks.count,
            )
        if self.registry is not None:
            self.registry.counter(
                "recovery_scans_total", "crash-restart recovery scans"
            ).inc()
        if self.marks.count:
            self.request_scrub(force=True)

    def _scrub_sub_unit(self, stripe: int, sub_unit: int):
        """Rebuild one horizontal slice of a stripe's parity (§5: M bits
        per stripe ⇒ rebuilds read only 1/M of each unit)."""
        if stripe in self._rebuilding:
            yield self._rebuilding[stripe]
            return
        if not self.marks.is_marked(stripe, sub_unit):
            return
        barrier = self.sim.event(name=self._ev_rebuild)
        self._rebuilding[stripe] = barrier
        started = self.sim.now
        try:
            start, nsectors = self._sub_unit_extent(sub_unit)
            unit_base = stripe * self.layout.stripe_unit_sectors
            attempts = 0
            while True:
                reads = []
                for unit in self.layout.data_units(stripe):
                    reads.append(
                        self.drivers[unit.disk].submit(
                            DiskIO(IoKind.READ, unit.disk_lba + start, nsectors)
                        )
                    )
                    self.stats.scrub_data_reads += 1
                try:
                    yield AllOf(self.sim, reads)
                except LatentSectorError:
                    attempts += 1
                    if attempts > 3:
                        raise
                    units = None
                    if self.organization.declustered:
                        units = list(self.layout.data_units(stripe))
                        units.append(self.layout.parity_unit(stripe))
                    yield from self._repair_latent_extent(
                        unit_base + start, nsectors, units=units
                    )
                    continue
                break
            if self._degraded_disk is not None:
                return  # a member died mid-read: mark stays, scrub aborts
            parity = self.layout.parity_unit(stripe)
            yield self.drivers[parity.disk].submit(
                DiskIO(IoKind.WRITE, parity.disk_lba + start, nsectors)
            )
            self.stats.scrub_parity_writes += 1
            if self._degraded_disk is not None:
                return  # died during the parity write: same story
            self.marks.clear(stripe, sub_unit)
            self._lag_changed()
            if self.hists is not None or self.tracer is not None:
                self._observe_scrub("scrub_sub_unit", started, stripe)
            if self.functional is not None:
                self.functional.scrub_sub_unit(stripe, sub_unit)
            if not self.marks.is_marked(stripe):
                if self.exposure is not None:
                    self.exposure.stripe_cleaned(stripe, self.sim.now, cause="scrub")
                self.stats.stripes_scrubbed += 1
        finally:
            del self._rebuilding[stripe]
            barrier.succeed()

    def _scrub_stripe_mirror(self, stripe: int, sub_unit: int):
        """Catch up one dirty stripe of a mirrored organization.

        RAID 1 / RAID 1/0: copy the marked slice of each primary unit to
        its mirror.  RAID 1+5: rebuild parity from the data primaries and
        write it to both copies of the parity pair.  Covers both the
        1-bit (whole stripe) and sub-unit marking configurations.
        """
        if stripe in self._rebuilding:
            yield self._rebuilding[stripe]
            return
        if not self.marks.is_marked(stripe, sub_unit):
            return
        barrier = self.sim.event(name=self._ev_rebuild)
        self._rebuilding[stripe] = barrier
        started = self.sim.now
        try:
            start, nsectors = self._sub_unit_extent(sub_unit)
            unit_base = stripe * self.layout.stripe_unit_sectors
            attempts = 0
            while True:
                reads = []
                for unit in self.layout.data_units(stripe):
                    reads.append(
                        self.drivers[unit.disk].submit(
                            DiskIO(IoKind.READ, unit.disk_lba + start, nsectors)
                        )
                    )
                    self.stats.scrub_data_reads += 1
                try:
                    yield AllOf(self.sim, reads)
                except LatentSectorError:
                    attempts += 1
                    if attempts > 3:
                        raise
                    yield from self._repair_latent_extent(unit_base + start, nsectors)
                    continue
                break
            if self._failed_disks:
                return  # a member died mid-read: mark stays, scrub aborts
            writes = []
            if self.layout.has_parity:
                parity = self.layout.parity_unit(stripe)
                for disk in (parity.disk, self.layout.mirror_disk(parity.disk)):
                    writes.append(
                        self.drivers[disk].submit(
                            DiskIO(IoKind.WRITE, parity.disk_lba + start, nsectors)
                        )
                    )
                    self.stats.scrub_parity_writes += 1
            else:
                for index in range(self.layout.data_units_per_stripe):
                    mirror = self.layout.mirror_unit(stripe, index)
                    writes.append(
                        self.drivers[mirror.disk].submit(
                            DiskIO(IoKind.WRITE, mirror.disk_lba + start, nsectors)
                        )
                    )
                    self.stats.scrub_parity_writes += 1
            yield AllOf(self.sim, writes)
            if self._failed_disks:
                return  # died during the copy/parity write: same story
            if self.marks.bits_per_stripe == 1:
                self.marks.clear_stripe(stripe)
            else:
                self.marks.clear(stripe, sub_unit)
            self._lag_changed()
            if self.hists is not None or self.tracer is not None:
                self._observe_scrub("scrub_stripe_mirror", started, stripe)
            if not self.marks.is_marked(stripe):
                if self.exposure is not None:
                    self.exposure.stripe_cleaned(stripe, self.sim.now, cause="scrub")
                self.stats.stripes_scrubbed += 1
        finally:
            del self._rebuilding[stripe]
            barrier.succeed()

    # -- parity-lag bookkeeping ------------------------------------------------------------------------------

    def _lag_changed(self) -> None:
        if not self._finished:
            lag = self.parity_lag_bytes
            self.lag_tracker.record(self.sim.now, lag)
            if self.exposure is not None:
                self.exposure.on_lag_change(
                    self.sim.now, lag, self.marks.marked_stripe_count, self.marks.count
                )
            if self.tracer is not None:
                self.tracer.counter("dirty_stripes", float(self.marks.marked_stripe_count))
                self.tracer.counter("parity_lag_bytes", lag)

    def __repr__(self) -> str:
        return (
            f"<DiskArray {self.name!r} {self.ndisks} disks, policy={self.policy.describe()}, "
            f"{self.dirty_stripe_count} dirty stripes>"
        )


class _Barrier:
    """A completion countdown for the callback service machines.

    Semantically ``AllOf(sim, events).callbacks.append(handler)``, shorn
    of the generality the service machines never use: no child-value
    collection, no per-child simulator check, no condition-event
    allocation up front.  ``handler`` is called with the failure (or
    ``None``) when the last child fires or the first child fails;
    children firing after a failure are swallowed exactly as AllOf
    swallows them (the registered callback keeps the kernel's
    unhandled-failure check satisfied).

    Ordinarily the handler runs at the dispatch of one hop event
    scheduled into the current-instant bucket — the exact position
    ``AllOf.succeed``/``fail`` would have used, so dispatch order is
    bit-identical.  The hop itself is elided when both of these hold at
    the firing child's dispatch:

    * our callback is provably the *last* one on the firing child, so
      nothing else runs between it and the hop.  A driver completion
      that was already issued at attach time qualifies (the driver pump
      appended its own wake at issue, before us, and nothing attaches
      later); callers barriering single-consumer internal events assert
      it with ``tail=True``.  A completion still queued at attach time
      does not (the pump's wake lands *after* us), and keeps the hop.
    * the kernel is quiet — empty bucket, next heap entry in the future —
      so the hop would be the very next dispatch anyway.

    Under those two conditions calling the handler in place is
    dispatch-for-dispatch identical to scheduling the hop.
    """

    __slots__ = ("sim", "handler", "remaining", "fired")

    def __init__(
        self, sim: Simulator, events: list[Event], handler, tail: bool = False
    ) -> None:
        self.sim = sim
        self.handler = handler
        self.remaining = len(events)
        self.fired = False
        if not events:
            self.fired = True
            self._hop(None)
            return
        on_child = self._on_child
        on_child_tail = self._on_child_tail
        for event in events:
            callbacks = event.callbacks
            if callbacks is None:
                on_child(event)
            elif tail or event._scheduled:
                callbacks.append(on_child_tail)
            else:
                callbacks.append(on_child)

    def _on_child(self, event: Event) -> None:
        if self.fired:
            return
        exc = event._exception
        if exc is None:
            self.remaining -= 1
            if self.remaining:
                return
        self.fired = True
        self._hop(exc)

    def _on_child_tail(self, event: Event) -> None:
        if self.fired:
            return
        exc = event._exception
        if exc is None:
            self.remaining -= 1
            if self.remaining:
                return
        self.fired = True
        sim = self.sim
        if not sim._bucket and (not sim._queue or sim._queue[0][0] > sim._now):
            # Last callback of the firing child, quiet kernel: the hop
            # would dispatch immediately next — run the handler in its
            # place (see the class docstring).
            self.handler(exc)
            return
        self._hop(exc)

    def _hop(self, exc: BaseException | None) -> None:
        sim = self.sim
        hop = Event.__new__(Event)
        hop.sim = sim
        hop.name = ""
        hop.callbacks = [self._fire]
        hop.defused = False
        hop._value = None
        hop._exception = exc
        hop._scheduled = True
        hop._handled = False
        sim._sequence += 1
        sim._bucket.append(hop)

    def _fire(self, hop: Event) -> None:
        self.handler(hop._exception)


class _Tail:
    """Drive a generator to exhaustion with ``Process._resume`` hop semantics.

    Lets the callback service machine delegate its cold paths (degraded
    writes) to the existing generator implementations with an event
    pattern identical to the old ``yield from``: the first ``send`` runs
    inline at the delegation point, each yielded event gets one callback
    at the position the process would have re-armed, an already-processed
    event resumes synchronously, and exhaustion calls ``on_done`` exactly
    where the enclosing generator would have continued.
    """

    __slots__ = ("generator", "on_done")

    def __init__(self, generator, on_done) -> None:
        self.generator = generator
        self.on_done = on_done

    def start(self) -> None:
        self._advance(None, None)

    def _advance(self, value, exc) -> None:
        generator = self.generator
        while True:
            try:
                if exc is not None:
                    target = generator.throw(exc)
                else:
                    target = generator.send(value)
            except StopIteration:
                self.on_done(None)
                return
            except BaseException as raised:
                self.on_done(raised)
                return
            callbacks = target.callbacks
            if callbacks is not None:
                callbacks.append(self._fired)
                return
            # Already processed: resume immediately (Process._resume parity).
            if target._exception is not None:
                value, exc = None, target._exception
            else:
                value, exc = target._value, None

    def _fired(self, event: Event) -> None:
        if event._exception is not None:
            self._advance(None, event._exception)
        else:
            self._advance(event._value, None)


class _StripeWrite:
    """One RAID 5 stripe write as a callback machine.

    Replaces the per-stripe ``_write_raid5_stripe`` process: ``event``
    stands in for the process event (created at the same position, same
    name, triggered with the same listener-aware shortcut on finish), and
    the body runs at the bootstrap kick's dispatch — never at
    construction — so every driver submission keeps its sequence number.
    The statement bodies below are those of ``_write_raid5_stripe``
    verbatim; each ``yield AllOf`` became ``callbacks.append``.
    """

    __slots__ = ("array", "stripe", "runs", "event", "was_dirty", "parity", "span")

    def __init__(self, array: DiskArray, stripe: int, runs: list[ExtentRun]) -> None:
        self.array = array
        self.stripe = stripe
        self.runs = runs
        self.event = Event(array.sim, name=array._ev_r5w)

    def start(self) -> None:
        """Run the body — inline under a quiet kernel, else at a kick.

        Called after the caller's barrier has attached to ``event`` (so a
        body failure always has its listener).  When the kernel is quiet
        the bootstrap kick would dispatch immediately next, so the body
        runs in place and the kick is elided; the body only schedules
        future-time disk completions, so nothing can reorder around it.
        """
        sim = self.array.sim
        if not sim._bucket and (not sim._queue or sim._queue[0][0] > sim._now):
            self._start(None)
            return
        kick = Event.__new__(Event)
        kick.sim = sim
        kick.name = ""
        kick.callbacks = [self._start]
        kick.defused = False
        kick._value = None
        kick._exception = None
        kick._scheduled = True
        kick._handled = False
        sim._sequence += 1
        sim._bucket.append(kick)

    def _start(self, _kick: Event) -> None:
        array = self.array
        stripe = self.stripe
        runs = self.runs
        try:
            layout = array.layout
            unit_sectors = layout.stripe_unit_sectors
            covered = sum(run.nsectors for run in runs)
            full_stripe = covered == layout.stripe_data_sectors
            parity = layout.parity_unit(stripe)
            self.parity = parity
            self.was_dirty = array.marks.is_marked(stripe)

            if full_stripe:
                writes = array._submit_data_writes(runs)
                writes.append(
                    array.drivers[parity.disk].submit(
                        DiskIO(IoKind.WRITE, parity.disk_lba, unit_sectors)
                    )
                )
                array.stats.foreground_parity_writes += 1
                self.span = None
                _Barrier(array.sim, writes, self._writes_done)
            elif self.was_dirty:
                covered_units = {
                    run.unit_index for run in runs if run.nsectors == unit_sectors
                }
                reads = []
                for unit in layout.data_units(stripe):
                    if unit.unit_index in covered_units:
                        continue
                    reads.append(
                        array.drivers[unit.disk].submit(
                            DiskIO(IoKind.READ, unit.disk_lba, unit_sectors)
                        )
                    )
                    array.stats.reconstruct_reads += 1
                self.span = None
                if reads:
                    _Barrier(array.sim, reads, self._prereads_done)
                else:
                    self._submit_writes()
            else:
                lo = min(run.disk_lba - array._stripe_base_lba(run) for run in runs)
                hi = max(run.disk_lba - array._stripe_base_lba(run) + run.nsectors for run in runs)
                self.span = (parity.disk_lba + lo, hi - lo)
                reads = []
                for run in runs:
                    reads.append(
                        array.drivers[run.disk].submit(
                            DiskIO(IoKind.READ, run.disk_lba, run.nsectors)
                        )
                    )
                    array.stats.preread_ios += 1
                reads.append(
                    array.drivers[parity.disk].submit(
                        DiskIO(IoKind.READ, self.span[0], self.span[1])
                    )
                )
                array.stats.preread_ios += 1
                _Barrier(array.sim, reads, self._prereads_done)
        except BaseException as exc:
            self.event.fail(exc)

    def _prereads_done(self, exc: BaseException | None) -> None:
        if exc is not None:
            self.event.fail(exc)
            return
        self._submit_writes()

    def _submit_writes(self) -> None:
        array = self.array
        try:
            writes = array._submit_data_writes(self.runs)
            if self.span is not None:
                parity_lba, parity_span = self.span
                writes.append(
                    array.drivers[self.parity.disk].submit(
                        DiskIO(IoKind.WRITE, parity_lba, parity_span)
                    )
                )
            else:
                writes.append(
                    array.drivers[self.parity.disk].submit(
                        DiskIO(
                            IoKind.WRITE,
                            self.parity.disk_lba,
                            array.layout.stripe_unit_sectors,
                        )
                    )
                )
            array.stats.foreground_parity_writes += 1
            _Barrier(array.sim, writes, self._writes_done)
        except BaseException as exc:
            self.event.fail(exc)

    def _writes_done(self, exc: BaseException | None) -> None:
        if exc is not None:
            self.event.fail(exc)
            return
        array = self.array
        try:
            if self.was_dirty:
                stripe = self.stripe
                array.marks.clear_stripe(stripe)
                array._lag_changed()
                if array.exposure is not None:
                    array.exposure.stripe_cleaned(stripe, array.sim.now, cause="write")
        except BaseException as raised:
            self.event.fail(raised)
            return
        # StopIteration: trigger like Process._resume — schedule only when
        # someone is listening (the enclosing AllOf always is).
        done = self.event
        callbacks = done.callbacks
        if callbacks:
            sim = array.sim
            if not sim._bucket and (not sim._queue or sim._queue[0][0] > sim._now):
                # Quiet kernel: succeed() would schedule the dispatch as
                # the very next one — settle the event and run its
                # listeners in place, exactly as the kernel would.
                done._value = None
                done._scheduled = True
                done._handled = True
                done.callbacks = None
                for callback in callbacks:
                    callback(done)
            else:
                done.succeed(None)
        else:
            done._value = None
            done.callbacks = None


class _ServiceCall:
    """One client request through a write-through array, as callbacks.

    The unrolled form of the ``_service`` process tree: same statement
    bodies, with every ``yield`` replaced by one callback registration at
    the identical cascade position (so all (time, seq) tie-breaks match
    the generator, event for event).  The hot paths — reads, AFRAID and
    RAID 5 writes — are inline; degraded-mode writes delegate to the
    generator implementation through :class:`_Tail`.  Write-back arrays
    do not use this class at all (see ``_host_step``).
    """

    __slots__ = (
        "array", "request", "done", "nbytes",
        "stripe_items", "stripe_list", "stripe_index",
    )

    def __init__(self, array: DiskArray, request: ArrayRequest, done: Event) -> None:
        self.array = array
        self.request = request
        self.done = done

    def start(self) -> None:
        """Arm the bootstrap kick; the body runs at its dispatch, exactly
        where the process generator's first statements used to run."""
        sim = self.array.sim
        kick = Event.__new__(Event)
        kick.sim = sim
        kick.name = ""
        kick.callbacks = [self._start]
        kick.defused = False
        kick._value = None
        kick._exception = None
        kick._scheduled = True
        kick._handled = False
        sim._sequence += 1
        sim._bucket.append(kick)

    def _start(self, _kick: Event) -> None:
        array = self.array
        request = self.request
        request.dispatch_time = array.sim._now
        try:
            if request.kind is IoKind.WRITE:
                self._start_write()
            else:
                self._start_read()
        except BaseException as exc:
            self._finish(exc)

    # -- reads (the _service_read body) --------------------------------------

    def _start_read(self) -> None:
        array = self.array
        request = self.request
        if array.read_cache.lookup(request.offset_sectors, request.nsectors):
            timeout = array.sim.timeout(array.cache_hit_latency_s)
            timeout.callbacks.append(self._read_hit_done)
            return
        plan = request.plan
        runs = (
            plan.runs
            if plan is not None
            else array.layout.map_extent(request.offset_sectors, request.nsectors)
        )
        drivers = array.drivers
        if array._degraded_disk is None:
            events = [
                drivers[run.disk].submit(DiskIO(IoKind.READ, run.disk_lba, run.nsectors))
                for run in runs
            ]
            array.stats.foreground_data_reads += len(events)
        else:
            events = []
            for run in runs:
                if run.disk in array._failed_disks:
                    events.extend(array._submit_degraded_read(run))
                else:
                    events.append(
                        drivers[run.disk].submit(
                            DiskIO(IoKind.READ, run.disk_lba, run.nsectors)
                        )
                    )
                    array.stats.foreground_data_reads += 1
        _Barrier(array.sim, events, self._read_miss_done)

    def _read_hit_done(self, _timeout: Event) -> None:
        array = self.array
        request = self.request
        try:
            if array.functional is not None:
                request.result_data = array.functional.read(
                    request.offset_sectors, request.nsectors
                )
        except BaseException as exc:
            self._finish(exc)
            return
        self._finish(None)

    def _read_miss_done(self, exc: BaseException | None) -> None:
        if exc is not None:
            self._finish(exc)
            return
        array = self.array
        request = self.request
        try:
            array.read_cache.insert(request.offset_sectors, request.nsectors)
            if array.functional is not None:
                request.result_data = array.functional.read(
                    request.offset_sectors, request.nsectors
                )
        except BaseException as exc:
            self._finish(exc)
            return
        self._finish(None)

    # -- writes (the _service_write / _perform_write bodies) ------------------

    def _start_write(self) -> None:
        array = self.array
        staging = array.staging
        nbytes = self.request.nsectors * array.sector_bytes
        self.nbytes = nbytes
        amount = nbytes if nbytes <= staging.capacity_bytes else staging.capacity_bytes
        sim = array.sim
        if (
            not staging._waiters
            and staging._in_use + amount <= staging.capacity_bytes
            and not sim._bucket
            and (not sim._queue or sim._queue[0][0] > sim._now)
        ):
            # Uncontended reservation with a quiet kernel: the grant
            # event would be the very next dispatch, so take the bytes
            # inline and run the staged body now — order-identical, one
            # event elided.  release() clamps the same way reserve()
            # does, so _write_finish stays symmetric.
            staging._in_use += amount
            self._staged(None)
            return
        # reserve() failures propagate to _finish WITHOUT a release — the
        # generator's try/finally starts after the reserve yield.
        staging.reserve(nbytes).callbacks.append(self._staged)

    def _staged(self, _grant: Event | None) -> None:
        array = self.array
        try:
            plan = self.request.plan
            if plan is not None:
                self.stripe_items = plan.by_stripe
                self.stripe_list = plan.stripes
            else:
                runs_by_stripe = array._group_runs(self.request)
                self.stripe_items = list(runs_by_stripe.items())
                self.stripe_list = list(runs_by_stripe)
            self.stripe_index = 0
            if array._rebuilding and self._park_on_barrier():
                return
            self._dispatch_mode()
        except BaseException as exc:
            self._write_finish(exc)

    def _park_on_barrier(self) -> bool:
        """Arm a callback on the first in-flight rebuild among our stripes."""
        rebuilding = self.array._rebuilding
        stripes = self.stripe_list
        index = self.stripe_index
        while index < len(stripes):
            barrier = rebuilding.get(stripes[index])
            if barrier is not None:
                # Re-check the same stripe after the barrier fires — the
                # generator's `while stripe in rebuilding` does too.
                self.stripe_index = index
                barrier.callbacks.append(self._barrier_fired)
                return True
            index += 1
        return False

    def _barrier_fired(self, _event: Event) -> None:
        try:
            if self._park_on_barrier():
                return
            self._dispatch_mode()
        except BaseException as exc:
            self._write_finish(exc)

    def _dispatch_mode(self) -> None:
        array = self.array
        if array._degraded_disk is not None:
            _Tail(
                array._write_degraded(self.request, dict(self.stripe_items)),
                self._write_finish,
            ).start()
            return
        mode = array.policy.write_mode(tuple(self.stripe_list))
        if mode is WriteMode.AFRAID:
            self._write_afraid()
        else:
            self._write_raid5()

    def _write_afraid(self) -> None:
        array = self.array
        stripe_items = self.stripe_items
        newly_marked = False
        exposure = array.exposure
        marks = array.marks
        plan = self.request.plan
        if plan is not None and exposure is None:
            # Precomputed mark decisions: the same (stripe, sub_unit)
            # sequence the loops below produce (see batchplan).
            for stripe, sub_unit in plan.mark_targets:
                newly_marked |= marks.mark(stripe, sub_unit)
        elif marks.bits_per_stripe == 1:
            now = array.sim.now
            for stripe, runs in stripe_items:
                if exposure is not None:
                    exposure.stripe_dirtied(stripe, now)
                for _run in runs:
                    newly_marked |= marks.mark(stripe, 0)
        else:
            now = array.sim.now
            for stripe, runs in stripe_items:
                if exposure is not None:
                    exposure.stripe_dirtied(stripe, now)
                for run in runs:
                    for sub_unit in array._sub_units_of(run):
                        newly_marked |= marks.mark(stripe, sub_unit)
        if newly_marked:
            array._lag_changed()
        events = []
        append = events.append
        drivers = array.drivers
        write = IoKind.WRITE
        for _stripe, runs in stripe_items:
            for run in runs:
                append(
                    drivers[run.disk].submit(
                        DiskIO(write, run.disk_lba, run.nsectors)
                    )
                )
        array.stats.foreground_data_writes += len(events)
        _Barrier(array.sim, events, self._afraid_done)

    def _afraid_done(self, exc: BaseException | None) -> None:
        if exc is not None:
            self._write_finish(exc)
            return
        array = self.array
        try:
            if array.functional is not None:
                array.functional.write(
                    self.request.offset_sectors,
                    array._payload(self.request),
                    update_parity=False,
                )
            array.policy.on_stripes_marked()
        except BaseException as raised:
            self._write_finish(raised)
            return
        self._write_finish(None)

    def _write_raid5(self) -> None:
        array = self.array
        stripe_writes = [
            _StripeWrite(array, stripe, runs) for stripe, runs in self.stripe_items
        ]
        # tail=True: the per-stripe events have no listener but us.  The
        # barrier attaches before the bodies run so a body failure always
        # has its handler (start() may run the body inline).
        _Barrier(
            array.sim,
            [write.event for write in stripe_writes],
            self._raid5_done,
            tail=True,
        )
        for write in stripe_writes:
            write.start()

    def _raid5_done(self, exc: BaseException | None) -> None:
        if exc is not None:
            self._write_finish(exc)
            return
        array = self.array
        request = self.request
        try:
            if array.functional is not None:
                array.functional.write(
                    request.offset_sectors, array._payload(request), update_parity=False
                )
                for stripe in self.stripe_list:
                    array.functional.scrub_stripe(stripe)
        except BaseException as exc:
            self._write_finish(exc)
            return
        self._write_finish(None)

    def _write_finish(self, exc: BaseException | None) -> None:
        array = self.array
        request = self.request
        array.staging.release(self.nbytes)
        if exc is None:
            try:
                array.read_cache.insert(request.offset_sectors, request.nsectors)
            except BaseException as raised:
                exc = raised
        self._finish(exc)

    # -- the _service epilogue ------------------------------------------------

    def _finish(self, exc: BaseException | None) -> None:
        array = self.array
        array.slots.release()
        array.detector.activity_ended()
        request = self.request
        request.plan = None
        done = self.done
        if exc is not None:
            done.fail(exc)
            return
        now = array.sim._now
        request.complete_time = now
        stats = array.stats
        if request.kind is IoKind.WRITE:
            stats.writes_completed += 1
        else:
            stats.reads_completed += 1
        # request.io_time inlined (both stamps are known non-None here).
        stats.io_times.append(now - request.submit_time)
        if array.hists is not None or array.tracer is not None:
            array._observe_client(request)
        if done.callbacks:
            done.succeed(request)
        else:
            # Nobody is listening yet (the replay feeder collects its
            # completions after the fact): complete the event in place,
            # skipping the no-op dispatch.  Late add_callback listeners
            # fire immediately on the processed event, and pollers see
            # triggered/processed exactly as after a real dispatch.
            done._value = request
            done.callbacks = None
