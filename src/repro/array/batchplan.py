"""Batch planning of stripe mappings and NVRAM mark decisions.

When the host driver holds a run of queued requests, the geometry work the
controller would do one request at a time — splitting each extent into
per-disk runs, grouping the runs by stripe, and deciding which
``(stripe, sub_unit)`` NVRAM marks an AFRAID write must set — is a pure
function of the layout and the request alone.  This module computes it for
the whole backlog at once as numpy array ops and attaches the result to
each request as a :class:`RequestPlan`; the service machine then consumes
the plan instead of re-deriving the same tables per request.

Only *non-interacting* batches are planned: requests whose stripe intervals
overlap another batch member's are left unplanned (two writes racing for
one stripe mark, or a read behind a write to the same stripe, keep the
exact scalar path), and no planning happens at all while a member disk is
failed or a parity rebuild is in flight.  Plans carry only geometry — the
actual mark flips, policy mode choice, and rebuild barriers stay dynamic at
service time — so a plan is *always* exact: the guards bound when batching
is worthwhile, not when it is correct.

numpy is optional here, matching :mod:`repro.disk.vector`: without it (or
for tiny batches, where array-op constant cost exceeds the win) the planner
falls back to the layout's scalar ``map_extent``.
"""

from __future__ import annotations

import dataclasses
import typing

try:  # pragma: no cover - the toolchain bakes numpy in
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from repro.layout.base import ExtentRun

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.array.controller import DiskArray
    from repro.array.request import ArrayRequest

#: Minimum number of cache-missing extents before the vectorised mapper
#: pays for its call overhead; below this the scalar walk is faster.
#: Calibrated against whole-trace replay: with the per-request scalar
#: path as lean as it now is, small batches lose to it even when every
#: extent misses the cache, so only genuinely deep cold bursts plan.
MIN_VECTOR_EXTENTS = 16


@dataclasses.dataclass(frozen=True, slots=True)
class RequestPlan:
    """Precomputed geometry for one client request.

    ``runs`` matches ``layout.map_extent(offset, nsectors)`` element for
    element; ``by_stripe`` is the same grouping ``_group_runs`` produces
    (stripes in first-appearance order, runs in logical order within each);
    ``mark_targets`` is the exact ``(stripe, sub_unit)`` sequence the
    scalar AFRAID mark loops would feed to ``MarkMemory.mark`` (empty for
    reads).
    """

    runs: tuple[ExtentRun, ...]
    by_stripe: tuple[tuple[int, tuple[ExtentRun, ...]], ...]
    stripes: tuple[int, ...]
    mark_targets: tuple[tuple[int, int], ...]


def warm_extent_cache(layout, records) -> int:
    """Vector-map every distinct extent of ``records`` into the layout cache.

    Trace replay knows the whole arrival schedule before the clock starts,
    so the geometry of every request can be batch-computed up front: one
    vectorised sweep fills the extent cache and the per-request scalar
    ``map_extent`` becomes a dict probe for the rest of the run.  This is
    purely a cache warm — mapping is memoised, never observed — so it is
    exact for any workload.  Skipped when the layout lacks the cache
    fields (e.g. plain RAID 0), when numpy is absent, or when the distinct
    extents would overflow the cache (warming would churn the FIFO).

    Returns the number of extents filled.
    """
    cache = getattr(layout, "_extent_cache", None)
    if (
        cache is None
        or _np is None
        or getattr(layout, "_data_disks_by_phase", None) is None
    ):
        return 0
    limit = layout.total_data_sectors
    seen: set[tuple[int, int]] = set()
    missing: list[tuple[int, int]] = []
    for record in records:
        key = (record.offset_sectors, record.nsectors)
        if key in cache or key in seen:
            continue
        # Out-of-range extents are rejected at submit time with the exact
        # scalar error; do not let the (validation-free) vector fill see
        # them.
        if key[0] < 0 or key[0] + key[1] > limit or key[1] < 1:
            continue
        seen.add(key)
        missing.append(key)
    if not missing or len(cache) + len(missing) > layout._EXTENT_CACHE_MAX:
        return 0
    _fill_extent_cache(layout, missing)
    return len(missing)


def plan_host_batch(array: "DiskArray", head: "ArrayRequest") -> None:
    """Plan ``head`` plus the queued backlog behind it, where eligible.

    Called by the host pump when it pops ``head`` with more requests still
    queued.  Attaches a :class:`RequestPlan` to every non-interacting
    member (``request.plan``); interacting members are skipped and take
    the scalar path unchanged.
    """
    array._plan_dirty = 0
    pending = getattr(array._host_queue, "pending", None)
    if pending is None:
        return  # an ablation scheduler without the accessor: scalar path
    batch = [head]
    for request, _done in pending():
        if request.plan is None:
            batch.append(request)
    if len(batch) < 2:
        return
    # Profitability gate: the array ops only pay when the vectorised
    # extent fill will amortise over enough cache-missing extents.  With
    # a hot extent cache the scalar path is cheaper than building and
    # attaching plans, and skipping is always exact — a plan is an
    # optional precomputation of the identical geometry.
    if _np is None:
        return
    cache = array.layout._extent_cache
    missing = 0
    for request in batch:
        if (request.offset_sectors, request.nsectors) not in cache:
            missing += 1
            if missing >= MIN_VECTOR_EXTENTS:
                break
    if missing < MIN_VECTOR_EXTENTS:
        return
    sds = array.layout.stripe_data_sectors
    intervals = sorted(
        (
            (request.offset_sectors // sds,
             (request.offset_sectors + request.nsectors - 1) // sds,
             index)
            for index, request in enumerate(batch)
        ),
    )
    eligible = [True] * len(batch)
    for position in range(len(intervals) - 1):
        # Sorted by first stripe, any overlap shows up between neighbours.
        if intervals[position][1] >= intervals[position + 1][0]:
            eligible[intervals[position][2]] = False
            eligible[intervals[position + 1][2]] = False
    planned = [request for index, request in enumerate(batch) if eligible[index]]
    if planned:
        attach_plans(array, planned)


def attach_plans(array: "DiskArray", requests: "list[ArrayRequest]") -> None:
    """Compute and attach a :class:`RequestPlan` to each request."""
    layout = array.layout
    cache = layout._extent_cache
    missing: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    for request in requests:
        key = (request.offset_sectors, request.nsectors)
        if key not in cache and key not in seen:
            seen.add(key)
            missing.append(key)
    if missing:
        _fill_extent_cache(layout, missing)
    bits = array.marks.bits_per_stripe
    for request in requests:
        runs = cache.get((request.offset_sectors, request.nsectors))
        if runs is None:  # cache evicted under us: scalar walk (re-caches)
            runs = layout.map_extent(request.offset_sectors, request.nsectors)
        request.plan = _build_plan(array, request, runs, bits)


def _build_plan(
    array: "DiskArray", request: "ArrayRequest", runs: tuple[ExtentRun, ...], bits: int
) -> RequestPlan:
    # Runs walk logical space forward, so stripes are non-decreasing:
    # grouping preserves both the dict insertion order of _group_runs and
    # the flattened run order of the scalar submit loops.
    by_stripe: list[tuple[int, tuple[ExtentRun, ...]]] = []
    group_start = 0
    for index in range(1, len(runs) + 1):
        if index == len(runs) or runs[index].stripe != runs[group_start].stripe:
            by_stripe.append((runs[group_start].stripe, runs[group_start:index]))
            group_start = index
    if request.is_write:
        if bits == 1:
            mark_targets = tuple((run.stripe, 0) for run in runs)
        else:
            mark_targets = tuple(
                (run.stripe, sub_unit)
                for run in runs
                for sub_unit in array._sub_units_of(run)
            )
    else:
        mark_targets = ()
    return RequestPlan(
        runs=runs,
        by_stripe=tuple(by_stripe),
        stripes=tuple(stripe for stripe, _runs in by_stripe),
        mark_targets=mark_targets,
    )


def _disk_table(layout):
    """(phase, unit_index) → disk, as one numpy gather table."""
    table = layout.__dict__.get("_batchplan_disk_table")
    if table is None:
        table = _np.array(layout._data_disks_by_phase, dtype=_np.int64)
        layout.__dict__["_batchplan_disk_table"] = table
    return table


def _fill_extent_cache(layout, keys: list[tuple[int, int]]) -> None:
    """Map every extent in ``keys`` and store the runs in the layout cache.

    The vectorised mapper produces runs identical to ``map_extent`` —
    the golden-replay gate holds it to that — and inserts them with the
    same FIFO eviction discipline, so scalar and batched callers share
    one cache.
    """
    if _np is None or len(keys) < MIN_VECTOR_EXTENTS:
        for offset, nsectors in keys:
            layout.map_extent(offset, nsectors)
        return
    unit = layout.stripe_unit_sectors
    dpu = layout.data_units_per_stripe
    offsets = _np.array([key[0] for key in keys], dtype=_np.int64)
    lengths = _np.array([key[1] for key in keys], dtype=_np.int64)
    first_unit = offsets // unit
    counts = (offsets + lengths - 1) // unit - first_unit + 1
    total = int(counts.sum())
    bounds = _np.cumsum(counts)
    starts = bounds - counts
    # Global data-unit index of every run of every extent, then the run
    # boundaries clipped to each extent — the whole divmod walk at once.
    gunit = _np.repeat(first_unit - starts, counts) + _np.arange(total)
    run_start = _np.maximum(_np.repeat(offsets, counts), gunit * unit)
    run_end = _np.minimum(_np.repeat(offsets + lengths, counts), (gunit + 1) * unit)
    stripe = gunit // dpu
    unit_index = gunit - stripe * dpu
    disk = _disk_table(layout)[stripe % layout.ndisks, unit_index]
    disk_lba = stripe * unit + (run_start - gunit * unit)
    # One positional constructor sweep over the column lists, then slice
    # per extent — cheaper than rebuilding each run field-by-field.
    all_runs = list(
        map(
            ExtentRun,
            stripe.tolist(),
            unit_index.tolist(),
            disk.tolist(),
            disk_lba.tolist(),
            (run_end - run_start).tolist(),
            run_start.tolist(),
        )
    )
    cache = layout._extent_cache
    cache_max = layout._EXTENT_CACHE_MAX
    start = 0
    for key, count in zip(keys, counts.tolist()):
        end = start + count
        runs = tuple(all_runs[start:end])
        start = end
        if len(cache) >= cache_max:
            del cache[next(iter(cache))]
        cache[key] = runs
