"""Array controllers: RAID 5, AFRAID, and the RAID 0 model.

One controller class, :class:`~repro.array.controller.DiskArray`, serves
all three models — exactly as in the paper, where "almost all of the code
was the same between the various array models" and RAID 0 was "an AFRAID
that simply never did parity updates" (§4.1).  The differences live in the
:mod:`repro.policy` object plugged in:

* :class:`~repro.policy.AlwaysRaid5Policy` — traditional RAID 5,
* :class:`~repro.policy.BaselineAfraidPolicy` — the AFRAID baseline,
* :class:`~repro.policy.MttdlTargetPolicy` — the tunable MTTDL_x ladder,
* :class:`~repro.policy.NeverScrubPolicy` — the RAID 0 datapoint.

The :mod:`repro.array.factory` helpers assemble complete arrays (disks,
drivers, cache, marks, idle detector) in the paper's configuration.
"""

from repro.array.cache import ByteBudget, ReadCache
from repro.array.controller import ArrayStats, DiskArray
from repro.array.factory import build_array, paper_array, raid0_array, raid5_array, toy_array
from repro.array.request import ArrayRequest

__all__ = [
    "ArrayRequest",
    "ArrayStats",
    "ByteBudget",
    "DiskArray",
    "ReadCache",
    "build_array",
    "paper_array",
    "raid0_array",
    "raid5_array",
    "toy_array",
]
