"""Client-visible array requests.

I/O time is measured as in §4.1: from the moment the request is given to
the (host) device driver to the moment the array completes it — including
any time queued in the driver.  That is the fairest figure for an
open-queueing, trace-driven workload.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.disk import IoKind


@dataclasses.dataclass
class ArrayRequest:
    """One logical read or write against the array's data address space."""

    kind: IoKind
    offset_sectors: int
    nsectors: int
    sync: bool = False  # no special action is taken for sync writes (§4.1)
    data: bytes | None = None  # real payload, when a functional store is attached
    tag: typing.Any = None

    # Stamped by the controller:
    submit_time: float | None = None  # handed to the host driver
    dispatch_time: float | None = None  # admitted into the array
    complete_time: float | None = None
    result_data: bytes | None = None  # read payload, when functional
    #: Precomputed geometry (see :mod:`repro.array.batchplan`), attached
    #: by the host pump while the request is queued and cleared again at
    #: completion.  Always optional: ``None`` means the scalar path.
    plan: typing.Any = None

    def __post_init__(self) -> None:
        if self.offset_sectors < 0:
            raise ValueError(f"offset must be >= 0, got {self.offset_sectors}")
        if self.nsectors < 1:
            raise ValueError(f"nsectors must be >= 1, got {self.nsectors}")
        if self.data is not None and self.kind is not IoKind.WRITE:
            raise ValueError("only writes carry payload data")

    @property
    def is_write(self) -> bool:
        return self.kind is IoKind.WRITE

    @property
    def io_time(self) -> float:
        """Driver-to-completion latency (the paper's reported metric)."""
        if self.submit_time is None or self.complete_time is None:
            raise RuntimeError("request has not completed")
        return self.complete_time - self.submit_time

    @property
    def queue_time(self) -> float:
        """Time spent in the host driver queue before admission."""
        if self.submit_time is None or self.dispatch_time is None:
            raise RuntimeError("request has not been dispatched")
        return self.dispatch_time - self.submit_time

    def __repr__(self) -> str:
        return (
            f"<ArrayRequest {self.kind.value} {self.nsectors} sectors @ {self.offset_sectors}"
            f"{' sync' if self.sync else ''}>"
        )
