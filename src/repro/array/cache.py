"""Array-controller caching: a small read cache and a write staging budget.

The paper deliberately configures tiny caches so results reflect AFRAID
itself rather than caching effects (§4.1): a 256 KB read cache with no
readahead (hits were rare — the traced hosts had much larger file buffer
caches upstream) and a 256 KB write staging area with a *write-through*
policy, so writes complete only once on disk.

:class:`ReadCache` is a plain LRU over stripe-unit-sized lines.
:class:`ByteBudget` models the staging area as a counted byte budget:
a write must reserve its footprint before its disk I/Os are issued and
releases it at completion, creating back-pressure for write bursts larger
than the staging memory.
"""

from __future__ import annotations

import collections
import dataclasses

from repro.sim import Event, Simulator


@dataclasses.dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ReadCache:
    """LRU read cache over fixed-size lines of logical address space.

    A lookup only counts as a hit when *every* line of the extent is
    resident (partial hits still cost the full disk access — a reasonable
    simplification given the paper's observation that array-cache read
    hits were rare under its traces).
    """

    def __init__(self, capacity_bytes: int, line_bytes: int, sector_bytes: int = 512) -> None:
        if line_bytes < sector_bytes or line_bytes % sector_bytes != 0:
            raise ValueError("line size must be a whole number of sectors")
        self.capacity_lines = max(0, capacity_bytes // line_bytes)
        self.line_sectors = line_bytes // sector_bytes
        self.stats = CacheStats()
        self._lines: collections.OrderedDict[int, None] = collections.OrderedDict()

    def _lines_of(self, sector: int, nsectors: int) -> range:
        first = sector // self.line_sectors
        last = (sector + nsectors - 1) // self.line_sectors
        return range(first, last + 1)

    def lookup(self, sector: int, nsectors: int) -> bool:
        """True (and LRU-refresh) if the whole extent is cached."""
        if self.capacity_lines == 0:
            self.stats.misses += 1
            return False
        resident = self._lines
        first = sector // self.line_sectors
        last = (sector + nsectors - 1) // self.line_sectors
        if first == last:
            # Single-line extent: the overwhelmingly common case for
            # stripe-unit-sized lines.
            if first in resident:
                resident.move_to_end(first)
                self.stats.hits += 1
                return True
            self.stats.misses += 1
            return False
        lines = range(first, last + 1)
        if all(line in resident for line in lines):
            for line in lines:
                resident.move_to_end(line)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def insert(self, sector: int, nsectors: int) -> None:
        """Make the extent resident (LRU evicting as needed)."""
        if self.capacity_lines == 0:
            return
        resident = self._lines
        first = sector // self.line_sectors
        last = (sector + nsectors - 1) // self.line_sectors
        if first == last:
            if first in resident:
                resident.move_to_end(first)
            else:
                resident[first] = None
                if len(resident) > self.capacity_lines:
                    resident.popitem(last=False)
            return
        for line in range(first, last + 1):
            if line in resident:
                resident.move_to_end(line)
            else:
                resident[line] = None
                if len(resident) > self.capacity_lines:
                    resident.popitem(last=False)

    @property
    def resident_lines(self) -> int:
        return len(self._lines)


class ByteBudget:
    """A counted byte budget with FIFO granting (the write staging area).

    ``reserve(n)`` returns an event that fires once ``n`` bytes are held.
    Requests larger than the whole budget are clamped to it (they proceed
    alone once the staging area is empty, rather than deadlocking).
    """

    def __init__(self, sim: Simulator, capacity_bytes: int, name: str = "staging") -> None:
        if capacity_bytes < 1:
            raise ValueError(f"capacity must be >= 1 byte, got {capacity_bytes}")
        self.sim = sim
        self.capacity_bytes = capacity_bytes
        self.name = name
        self._grant_name = f"{name}.grant"
        self._in_use = 0
        self._waiters: collections.deque[tuple[int, Event]] = collections.deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity_bytes - self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def clamp(self, nbytes: int) -> int:
        """The reservable footprint for a request of ``nbytes``."""
        return min(nbytes, self.capacity_bytes)

    def reserve(self, nbytes: int) -> Event:
        """Reserve ``nbytes`` (clamped); event fires when held."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        amount = self.clamp(nbytes)
        if not self._waiters and self._in_use + amount <= self.capacity_bytes:
            # Uncontended fast path (construction + succeed fused): one
            # reservation per client write makes this hot during replay.
            self._in_use += amount
            sim = self.sim
            grant = Event.__new__(Event)
            grant.sim = sim
            grant.name = self._grant_name
            grant.callbacks = []
            grant.defused = False
            grant._value = amount
            grant._exception = None
            grant._scheduled = True
            grant._handled = False
            sim._sequence += 1
            sim._bucket.append(grant)
            return grant
        grant = Event(self.sim, name=self._grant_name)
        self._waiters.append((amount, grant))
        return grant

    def release(self, nbytes: int) -> None:
        """Release a previously granted reservation (pass the same size)."""
        amount = self.clamp(nbytes)
        if amount > self._in_use:
            raise RuntimeError(f"{self.name}: releasing {amount} bytes but only {self._in_use} held")
        self._in_use -= amount
        while self._waiters and self._in_use + self._waiters[0][0] <= self.capacity_bytes:
            next_amount, grant = self._waiters.popleft()
            self._in_use += next_amount
            grant.succeed(next_amount)

    def __repr__(self) -> str:
        return f"<ByteBudget {self.name!r} {self._in_use}/{self.capacity_bytes}B, {self.queued} waiting>"
