"""Simulation-as-a-service: the ``afraid-sim serve`` daemon.

The PR 1 sweep substrate (process-pool fan-out + content-addressed
result cache) turned into a long-lived front end: clients submit
simulation/sweep jobs over a local HTTP/JSON API, the
:class:`JobManager` fans cells out across a persistent worker pool,
streams per-cell progress back as NDJSON, answers previously-computed
cells from cache in microseconds, and survives worker crashes by
rebuilding the pool and requeueing the cells that were in flight.

Layers:

* :mod:`repro.service.protocol` — payload validation (the CellSpec /
  PolicySpec vocabulary over JSON);
* :mod:`repro.service.manager` — job tracking, bounded admission
  (429 backpressure), crash-tolerant execution, event logs;
* :mod:`repro.service.server` — the stdlib ThreadingHTTPServer front
  end (jobs, NDJSON event streams, /healthz, Prometheus /metrics);
* :mod:`repro.service.client` — the urllib client the CLI, tests, and
  the throughput benchmark share.

Quick start::

    from repro.service import JobManager, ServiceServer

    manager = JobManager(jobs=4, cache_dir=".repro-cache")
    server = ServiceServer(("127.0.0.1", 8642), manager)
    server.serve_forever()          # afraid-sim serve does exactly this
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.manager import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobManager,
    QueueFull,
    ServiceClosed,
)
from repro.service.protocol import (
    ProtocolError,
    cell_label,
    parse_cell,
    parse_job_payload,
    parse_policy,
    spec_to_payload,
)
from repro.service.server import ServiceHandler, ServiceServer, run_server

__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "QUEUED",
    "RUNNING",
    "TERMINAL_STATES",
    "Job",
    "JobManager",
    "ProtocolError",
    "QueueFull",
    "ServiceClient",
    "ServiceClosed",
    "ServiceError",
    "ServiceHandler",
    "ServiceServer",
    "cell_label",
    "parse_cell",
    "parse_job_payload",
    "parse_policy",
    "run_server",
    "spec_to_payload",
]
