"""The ``afraid-sim serve`` HTTP/JSON front end.

Pure stdlib: a :class:`http.server.ThreadingHTTPServer` (one thread per
connection, daemonised) over the :class:`~repro.service.manager.JobManager`.

Endpoints::

    GET    /healthz            liveness + queue occupancy
    GET    /metrics            Prometheus text exposition (obs.export)
    POST   /jobs               submit a job (202; 400 bad spec; 429 full)
    GET    /jobs               every job's snapshot
    GET    /jobs/<id>          one job's snapshot (404 unknown)
    GET    /jobs/<id>/result   per-cell results once terminal (409 before)
    GET    /jobs/<id>/events   NDJSON event stream; ``?since=N`` resumes,
                               ``?follow=0`` returns without blocking
    GET    /timeline           service-wide correlation timeline as NDJSON
                               (``?since=N`` filters by event seq)
    DELETE /jobs/<id>          cancel the job's unfinished cells

Backpressure is explicit: a full queue answers ``429`` with a
``Retry-After`` header and the occupancy in the body, so clients can
implement honest retry loops instead of timing out blind.
"""

from __future__ import annotations

import json
import re
import threading
import typing

from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.export import prometheus_text
from repro.service.manager import JobManager, QueueFull, ServiceClosed
from repro.service.protocol import ProtocolError

_JOB_PATH = re.compile(r"^/jobs/(?P<id>[^/]+)(?P<rest>/result|/events)?$")

#: Maximum accepted request body (a ladder over every workload is ~1 KB;
#: this is purely an abuse guard).
MAX_BODY_BYTES = 1 << 20


def _json_safe(value):
    if isinstance(value, float) and value != value:  # NaN
        return None
    if value == float("inf"):
        return "inf"
    if value == float("-inf"):
        return "-inf"
    if isinstance(value, dict):
        return {key: _json_safe(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_json_safe(item) for item in value]
    return value


def encode_json(payload: dict) -> bytes:
    """Strict-JSON body bytes (infinities as ``"inf"``, the cache convention)."""
    return (json.dumps(_json_safe(payload)) + "\n").encode("utf-8")


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes requests to the manager; all bodies are JSON or NDJSON."""

    server_version = "afraid-sim-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib name
        if not self.server.quiet:  # type: ignore[attr-defined]
            super().log_message(format, *args)

    # -- plumbing ---------------------------------------------------------------

    def _reply(self, status: int, payload: dict, headers: dict | None = None) -> None:
        body = encode_json(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _reply_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str, headers: dict | None = None) -> None:
        self._reply(status, {"error": message}, headers)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ProtocolError(f"request body over {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ProtocolError("empty request body; expected a JSON job payload")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") from None

    # -- routes -----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        path, _, query = self.path.partition("?")
        if path == "/healthz":
            self._reply(200, self.manager.health())
            return
        if path == "/metrics":
            self._reply_text(
                200,
                prometheus_text(self.manager.metrics.registry),
                "text/plain; version=0.0.4",
            )
            return
        if path == "/jobs":
            self._reply(
                200, {"jobs": [job.snapshot() for job in self.manager.list_jobs()]}
            )
            return
        if path == "/timeline":
            self._serve_timeline(query)
            return
        match = _JOB_PATH.match(path)
        if match is None:
            self._error(404, f"no such route: {path}")
            return
        job = self.manager.get(match.group("id"))
        if job is None:
            self._error(404, f"no such job: {match.group('id')}")
            return
        rest = match.group("rest")
        if rest is None:
            self._reply(200, job.snapshot())
        elif rest == "/result":
            if not job.terminal:
                self._error(409, f"job {job.id} is {job.state}; results need a terminal job")
            else:
                self._reply(200, job.result_payload())
        else:
            self._stream_events(job, query)

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        if self.path.partition("?")[0] != "/jobs":
            self._error(404, f"no such route: {self.path}")
            return
        try:
            payload = self._read_body()
            job = self.manager.submit(payload)
        except ProtocolError as exc:
            self._error(400, str(exc))
        except QueueFull as exc:
            self._error(
                429,
                str(exc),
                headers={
                    "Retry-After": "1",
                    "X-Queue-Pending": str(exc.pending),
                    "X-Queue-Limit": str(exc.limit),
                },
            )
        except ServiceClosed as exc:
            self._error(503, str(exc))
        else:
            self._reply(202, job.snapshot())

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib casing
        match = _JOB_PATH.match(self.path.partition("?")[0])
        if match is None or match.group("rest") is not None:
            self._error(404, f"no such route: {self.path}")
            return
        job = self.manager.cancel(match.group("id"))
        if job is None:
            self._error(404, f"no such job: {match.group('id')}")
        else:
            self._reply(200, job.snapshot())

    def _serve_timeline(self, query: str) -> None:
        """``GET /timeline``: the service-wide correlation timeline, NDJSON.

        One JSON object per event (the same schema the nemesis soak
        writes as ``timeline.jsonl``); ``?since=N`` returns only events
        with ``seq >= N`` for incremental polling.
        """
        params = dict(
            part.split("=", 1) for part in query.split("&") if "=" in part
        )
        try:
            since = int(params.get("since", 0))
        except ValueError:
            self._error(400, f"bad since={params.get('since')!r}")
            return
        lines = [
            encode_json(payload)
            for payload in self.manager.timeline.to_payloads()
            if payload["seq"] >= since
        ]
        body = b"".join(lines)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- NDJSON event streaming ---------------------------------------------------

    def _stream_events(self, job, query: str) -> None:
        params = dict(
            part.split("=", 1) for part in query.split("&") if "=" in part
        )
        try:
            since = int(params.get("since", 0))
        except ValueError:
            self._error(400, f"bad since={params.get('since')!r}")
            return
        follow = params.get("follow", "1") not in ("0", "false", "no")

        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()

        def write_chunk(data: bytes) -> None:
            self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
            self.wfile.write(data)
            self.wfile.write(b"\r\n")

        try:
            while True:
                events = (
                    job.wait_events(since, timeout=1.0)
                    if follow
                    else job.events[since:]
                )
                for event in events:
                    write_chunk(encode_json(event))
                since += len(events)
                if not follow or (job.terminal and since >= len(job.events)):
                    break
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream; nothing to clean up


class ServiceServer(ThreadingHTTPServer):
    """The daemon's listener; one daemon thread per connection."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        manager: JobManager,
        quiet: bool = True,
        handler: type[BaseHTTPRequestHandler] = ServiceHandler,
    ) -> None:
        super().__init__(address, handler)
        self.manager = manager
        self.quiet = quiet

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def run_server(
    manager: JobManager,
    host: str = "127.0.0.1",
    port: int = 0,
    install_signal_handlers: bool = True,
    quiet: bool = True,
    on_ready: typing.Callable[[ServiceServer], None] | None = None,
) -> None:
    """Serve until SIGTERM/SIGINT, then drain gracefully.

    Graceful drain: stop accepting connections, finish every admitted
    cell (writing results through to the cache), then stop the worker
    pool.  A second signal is not special-cased — the drain is already
    as fast as the in-flight cells allow.
    """
    server = ServiceServer((host, port), manager, quiet=quiet)

    if install_signal_handlers:
        import signal

        def _initiate_shutdown(_signum, _frame) -> None:
            # serve_forever() must be unblocked from another thread.
            threading.Thread(target=server.shutdown, daemon=True).start()

        signal.signal(signal.SIGTERM, _initiate_shutdown)
        signal.signal(signal.SIGINT, _initiate_shutdown)

    if on_ready is not None:
        on_ready(server)
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.server_close()
        manager.shutdown(drain=True)
