"""A small stdlib client for the ``afraid-sim serve`` API.

Used by the ``afraid-sim submit`` / ``status`` subcommands, the service
tests, and the throughput benchmark — anything that talks to the daemon
goes through this one urllib wrapper, so retry/backoff behaviour under
429 backpressure lives in exactly one place.
"""

from __future__ import annotations

import json
import time
import typing
import urllib.error
import urllib.request


class ServiceError(RuntimeError):
    """A non-2xx response; carries the HTTP status and decoded body."""

    def __init__(self, status: int, message: str, payload: dict | None = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload or {}


def _revive(value):
    if value == "inf":
        return float("inf")
    if value == "-inf":
        return float("-inf")
    if isinstance(value, dict):
        return {key: _revive(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_revive(item) for item in value]
    return value


class ServiceClient:
    """One daemon, addressed by base URL (e.g. ``http://127.0.0.1:8642``)."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing -----------------------------------------------------------------

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=body,
            method=method,
            headers={"Content-Type": "application/json"} if body else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return _revive(json.loads(response.read()))
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                decoded = _revive(json.loads(raw))
            except (json.JSONDecodeError, ValueError):
                decoded = {"error": raw.decode("utf-8", "replace")}
            raise ServiceError(
                exc.code, decoded.get("error", exc.reason), decoded
            ) from None

    # -- endpoints ----------------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics_text(self) -> str:
        request = urllib.request.Request(f"{self.base_url}/metrics")
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            return response.read().decode("utf-8")

    def submit(self, payload: dict) -> dict:
        """POST one job payload; returns the job snapshot (202)."""
        return self._request("POST", "/jobs", payload)

    def submit_with_backoff(
        self,
        payload: dict,
        retries: int = 20,
        backoff_s: float = 0.05,
        max_backoff_s: float = 1.0,
    ) -> dict:
        """Submit, honouring 429 backpressure with capped exponential backoff."""
        delay = backoff_s
        for attempt in range(retries):
            try:
                return self.submit(payload)
            except ServiceError as exc:
                if exc.status != 429 or attempt == retries - 1:
                    raise
                time.sleep(delay)
                delay = min(delay * 2, max_backoff_s)
        raise AssertionError("unreachable")

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/jobs/{job_id}")

    def wait(self, job_id: str, timeout: float = 300.0, poll_s: float = 0.05) -> dict:
        """Poll until the job is terminal; returns the final snapshot."""
        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.job(job_id)
            if snapshot["state"] in ("done", "failed", "cancelled"):
                return snapshot
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {snapshot['state']} after {timeout}s")
            time.sleep(poll_s)

    def stream_events(
        self, job_id: str, since: int = 0, follow: bool = True
    ) -> typing.Iterator[dict]:
        """Yield the job's NDJSON events as dicts; ends when the job does."""
        follow_flag = "1" if follow else "0"
        request = urllib.request.Request(
            f"{self.base_url}/jobs/{job_id}/events?since={since}&follow={follow_flag}"
        )
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            for line in response:
                line = line.strip()
                if line:
                    yield _revive(json.loads(line))
