"""Crash-tolerant job orchestration behind the ``afraid-sim serve`` API.

A **job** is one submission: a list of cells (the same
:class:`~repro.harness.runner.CellSpec` vocabulary as ``afraid-sim
sweep``), tracked from submission to a terminal state.  The
:class:`JobManager` sits between the HTTP layer and the
:class:`~repro.harness.runner.CellExecutor`:

* **Bounded admission** — the manager refuses submissions that would
  push the number of accepted-but-unfinished *simulated* cells past
  ``queue_limit`` (:class:`QueueFull`, surfaced as HTTP 429).  Cache
  hits are free and never rejected: the warm path costs one file read.
* **Cache-first answers** — every cell is probed against the
  content-addressed result cache *in the submitting thread*; hits
  complete synchronously in microseconds without touching the worker
  pool, and a fully-cached job is DONE before ``submit`` returns.
* **Crash-tolerant execution** — misses flow through the persistent
  executor, which rebuilds the pool and requeues in-flight cells when a
  worker dies; the manager surfaces those retries in the job's events
  and in the ``service_worker_restarts`` / ``service_cell_retries``
  metrics.
* **Deterministic results** — per-cell results are encoded with
  :func:`~repro.harness.runner.result_to_payload`, the exact encoding
  the sweep cache uses, so a job's payload for a given spec is
  byte-identical to what ``afraid-sim sweep`` produces.

Every state change appends an event to the job's ordered event log,
which the server streams as NDJSON.
"""

from __future__ import annotations

import functools
import threading
import time
import typing

from repro.harness.runner import (
    CellExecutor,
    CellOutcome,
    CellSpec,
    DEFAULT_CACHE_DIR,
    ResultCache,
    result_to_payload,
    run_cell,
)
from repro.obs.service import ServiceMetrics
from repro.obs.timeline import Timeline, TimelineEvent
from repro.service.protocol import ProtocolError, cell_label, parse_job_payload

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.harness.experiment import ExperimentResult
    from repro.obs import MetricsRegistry


class QueueFull(RuntimeError):
    """Admission refused: the submission queue is at capacity (HTTP 429)."""

    def __init__(self, pending: int, limit: int) -> None:
        super().__init__(f"submission queue full ({pending}/{limit} cells pending)")
        self.pending = pending
        self.limit = limit


class ServiceClosed(RuntimeError):
    """The manager is draining or stopped and accepts no new jobs (503)."""


#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})


class Job:
    """One tracked submission; thread-safe via its condition variable."""

    def __init__(self, job_id: str, specs: list[CellSpec]) -> None:
        self.id = job_id
        self.specs = specs
        self.state = QUEUED
        self.created_s = time.time()
        self.finished_s: float | None = None
        self.error: str | None = None
        self.cached = 0
        self.simulated = 0
        self.retried = 0
        #: Per-cell records in spec order; ``None`` until the cell finishes.
        self.cells: list[dict | None] = [None] * len(specs)
        self.events: list[dict] = []
        self._cond = threading.Condition()
        # Owned by the manager (under the manager lock):
        self.outstanding: set[int] = set(range(len(specs)))
        self.tickets: dict[int, object] = {}

    # -- queries (safe snapshots) ------------------------------------------------

    @property
    def total(self) -> int:
        return len(self.specs)

    @property
    def completed(self) -> int:
        return self.cached + self.simulated

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def snapshot(self) -> dict:
        """The JSON view served by ``GET /jobs/<id>``."""
        with self._cond:
            return {
                "id": self.id,
                "state": self.state,
                "created_s": self.created_s,
                "finished_s": self.finished_s,
                "cells_total": self.total,
                "cells_completed": self.completed,
                "cells_cached": self.cached,
                "cells_simulated": self.simulated,
                "cells_retried": self.retried,
                "events": len(self.events),
                "error": self.error,
            }

    def result_payload(self) -> dict:
        """The JSON view served by ``GET /jobs/<id>/result``.

        ``cells`` maps ``workload/policy`` labels to the exact
        ``result_to_payload`` encoding the sweep cache writes — the
        byte-identity contract with ``afraid-sim sweep``.
        """
        with self._cond:
            cells = {}
            details = []
            for record in self.cells:
                if record is None:
                    continue
                cells[record["cell"]] = record["result"]
                details.append(
                    {key: record[key] for key in ("cell", "from_cache", "attempts")}
                )
            return {
                "id": self.id,
                "state": self.state,
                "cells": cells,
                "details": details,
                "error": self.error,
            }

    # -- waiting -----------------------------------------------------------------

    def wait(self, timeout: float | None = None) -> str:
        """Block until the job is terminal (or ``timeout``); returns state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not self.terminal:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    break
                self._cond.wait(remaining)
            return self.state

    def wait_events(self, since: int, timeout: float | None = None) -> list[dict]:
        """Events with seq >= ``since``, blocking until at least one exists.

        Returns an empty list on timeout or when the job is terminal and
        fully consumed — the streaming loop's stop condition.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while len(self.events) <= since and not self.terminal:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    break
                self._cond.wait(remaining)
            return self.events[since:]

    # -- mutation (called by the manager) ------------------------------------------

    def add_event(self, kind: str, **fields) -> None:
        with self._cond:
            self.events.append(
                {"seq": len(self.events), "time_s": time.time(), "event": kind,
                 "job": self.id, **fields}
            )
            self._cond.notify_all()


class JobManager:
    """Owns the executor, the job table, and the admission queue."""

    def __init__(
        self,
        jobs: int = 2,
        cache_dir: str | None = DEFAULT_CACHE_DIR,
        queue_limit: int = 1024,
        max_attempts: int = 3,
        cell_fn: typing.Callable[[CellSpec], "ExperimentResult"] | None = None,
        registry: "MetricsRegistry | None" = None,
        cache_max_bytes: int | None = None,
        checkpoint_dir: str | None = None,
    ) -> None:
        self.metrics = ServiceMetrics(registry)
        self.queue_limit = queue_limit
        self.cache_max_bytes = cache_max_bytes
        self.checkpoint_dir = checkpoint_dir
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        if cell_fn is None:
            # A warm service restart replays only what the checkpoint
            # store has not already simulated; partial (ordinary)
            # functions pickle by reference, so this crosses the pool.
            cell_fn = (
                run_cell
                if checkpoint_dir is None
                else functools.partial(run_cell, checkpoint_dir=checkpoint_dir)
            )
        self.executor = CellExecutor(
            jobs=jobs,
            cache=self.cache,
            cell_fn=cell_fn,
            max_attempts=max_attempts,
            on_worker_restart=self.metrics.worker_restarts.inc,
        ).start()
        self.jobs: dict[str, Job] = {}
        # The service-wide correlation timeline (GET /timeline): every
        # job/cell state change on a "service" track, cell and terminal
        # events cause-linked to their job's submit event.  Wall-clock
        # stamped — the daemon is not under the sim determinism gate.
        self.timeline = Timeline()
        self._timeline_roots: dict[str, TimelineEvent] = {}
        self._lock = threading.Lock()
        self._pending_cells = 0
        self._next_id = 0
        self._closed = False
        if self.cache is not None and cache_max_bytes is not None:
            self.cache.prune(cache_max_bytes)

    # -- submission ----------------------------------------------------------------

    def submit(self, payload: dict | list[CellSpec]) -> Job:
        """Admit one job; raises :class:`ProtocolError` / :class:`QueueFull` /
        :class:`ServiceClosed` instead of partially accepting anything."""
        if isinstance(payload, list):
            specs = list(payload)
            if not specs:
                raise ProtocolError("job needs at least one cell")
        else:
            specs = parse_job_payload(payload)

        # Probe the cache outside any lock: pure file reads, and the split
        # decides how much queue capacity this job actually needs.
        probes: list[tuple[str | None, "ExperimentResult | None"]] = [
            self.executor.probe_cache(spec) for spec in specs
        ]
        misses = sum(1 for _key, hit in probes if hit is None)

        with self._lock:
            if self._closed:
                raise ServiceClosed("service is draining; not accepting jobs")
            if self._pending_cells + misses > self.queue_limit:
                self.metrics.jobs_rejected.inc()
                raise QueueFull(self._pending_cells, self.queue_limit)
            self._next_id += 1
            job = Job(f"job-{self._next_id:06d}", specs)
            self.jobs[job.id] = job
            self._pending_cells += misses
            self.metrics.jobs_submitted.inc()
            self.metrics.jobs_in_flight.inc()
        job.add_event("submitted", cells=len(specs), cached=len(specs) - misses)
        self._timeline_roots[job.id] = self.timeline.record(
            "service.job_submitted", time.time(), track="service",
            job=job.id, cells=len(specs), cached=len(specs) - misses,
        )

        submitted_at = time.monotonic()
        for index, (spec, (key, hit)) in enumerate(zip(specs, probes)):
            if hit is not None:
                self.metrics.record_lookup(hit=True)
                self._record_cell(
                    job, index,
                    CellOutcome(spec=spec, result=hit, from_cache=True),
                    submitted_at,
                )
            else:
                self.metrics.record_lookup(hit=False)
                with self._lock:
                    if index not in job.outstanding:
                        continue  # the job was cancelled mid-submit
                    ticket = self.executor.submit(
                        spec,
                        lambda outcome, job=job, index=index, t0=submitted_at: (
                            self._record_cell(job, index, outcome, t0)
                        ),
                        key=key,
                        probe_cache=False,
                    )
                    job.tickets[index] = ticket
        with job._cond:
            if job.state == QUEUED and misses:
                job.state = RUNNING
        self._refresh_gauges()
        return job

    # -- completion path -------------------------------------------------------------

    def _record_cell(
        self, job: Job, index: int, outcome: CellOutcome, submitted_at: float
    ) -> None:
        with self._lock:
            if index not in job.outstanding:
                return  # cancelled (or double delivery) — already accounted
            job.outstanding.discard(index)
            job.tickets.pop(index, None)
            if not outcome.from_cache:
                self._pending_cells -= 1

        latency_s = time.monotonic() - submitted_at
        self.metrics.cell_latency.observe(max(latency_s, 1e-9))
        label = cell_label(outcome.spec)

        if outcome.error is not None:
            self.metrics.cells_completed.inc()
            job.add_event(
                "cell_failed", cell=label, attempts=outcome.attempts, error=outcome.error
            )
            self.timeline.record(
                "service.cell_failed", time.time(), track="service",
                cause=self._timeline_roots.get(job.id),
                job=job.id, cell=label, error=outcome.error,
            )
            self._fail_job(job, f"cell {label}: {outcome.error}")
            return

        record = {
            "cell": label,
            "from_cache": outcome.from_cache,
            "attempts": outcome.attempts,
            "result": result_to_payload(outcome.result),
        }
        with job._cond:
            job.cells[index] = record
            if outcome.from_cache:
                job.cached += 1
            else:
                job.simulated += 1
            if outcome.attempts > 1:
                job.retried += 1
            if job.state == QUEUED and not outcome.from_cache:
                job.state = RUNNING
        self.metrics.cells_completed.inc()
        if outcome.attempts > 1:
            self.metrics.cell_retries.inc(outcome.attempts - 1)
        result = outcome.result
        job.add_event(
            "cell_completed",
            cell=label,
            from_cache=outcome.from_cache,
            attempts=outcome.attempts,
            latency_s=latency_s,
            mean_io_time_ms=result.mean_io_time_ms,
            unprotected_fraction=result.unprotected_fraction,
            metrics=self._metric_snapshot(),
        )
        self.timeline.record(
            "service.cell_completed", time.time(), track="service",
            cause=self._timeline_roots.get(job.id),
            job=job.id, cell=label, from_cache=outcome.from_cache,
            latency_s=latency_s,
        )

        finished = False
        with job._cond:
            if not job.terminal and job.completed == job.total:
                job.state = DONE
                job.finished_s = time.time()
                finished = True
                job._cond.notify_all()
        if finished:
            self.metrics.jobs_completed.inc()
            self.metrics.jobs_in_flight.dec()
            job.add_event(
                "job_completed",
                state=DONE,
                cells=job.total,
                cached=job.cached,
                simulated=job.simulated,
                wall_s=time.time() - job.created_s,
            )
            self.timeline.record(
                "service.job_completed", time.time(), track="service",
                cause=self._timeline_roots.get(job.id),
                job=job.id, cells=job.total, cached=job.cached,
                simulated=job.simulated,
            )
            self._maybe_prune()
        self._refresh_gauges()

    def _fail_job(self, job: Job, error: str) -> None:
        self._abandon_outstanding(job)
        with job._cond:
            if job.terminal:
                return
            job.state = FAILED
            job.error = error
            job.finished_s = time.time()
            job._cond.notify_all()
        self.metrics.jobs_failed.inc()
        self.metrics.jobs_in_flight.dec()
        job.add_event("job_failed", state=FAILED, error=error)
        self.timeline.record(
            "service.job_failed", time.time(), track="service",
            cause=self._timeline_roots.get(job.id), job=job.id, error=error,
        )
        self._refresh_gauges()

    def _abandon_outstanding(self, job: Job) -> None:
        """Drop a job's unfinished cells from the executor and the accounting."""
        with self._lock:
            outstanding = list(job.outstanding)
            job.outstanding.clear()
            tickets = [job.tickets.pop(i) for i in outstanding if i in job.tickets]
            # Cells without a ticket were cache hits still being recorded;
            # ticketed ones were queued/in-flight and count against the limit.
            self._pending_cells -= len(tickets)
        for ticket in tickets:
            self.executor.cancel(ticket)

    # -- control -------------------------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        return self.jobs.get(job_id)

    def list_jobs(self) -> list[Job]:
        return list(self.jobs.values())

    def cancel(self, job_id: str) -> Job | None:
        """Cancel a job's unfinished cells; terminal jobs are left alone."""
        job = self.jobs.get(job_id)
        if job is None:
            return None
        self._abandon_outstanding(job)
        with job._cond:
            if job.terminal:
                return job
            job.state = CANCELLED
            job.finished_s = time.time()
            job._cond.notify_all()
        self.metrics.jobs_cancelled.inc()
        self.metrics.jobs_in_flight.dec()
        job.add_event("job_cancelled", state=CANCELLED)
        self.timeline.record(
            "service.job_cancelled", time.time(), track="service",
            cause=self._timeline_roots.get(job.id), job=job.id,
        )
        self._refresh_gauges()
        return job

    def shutdown(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the service.

        ``drain=True`` (SIGTERM path): refuse new jobs, finish everything
        already admitted, then stop the pool.  ``drain=False``: cancel
        all active jobs and abandon in-flight cells.
        """
        with self._lock:
            self._closed = True
        if not drain:
            for job in self.list_jobs():
                if not job.terminal:
                    self.cancel(job.id)
        self.executor.shutdown(drain=drain, timeout=timeout)

    @property
    def pending_cells(self) -> int:
        """Admitted cells not yet finished (the backpressure quantity)."""
        return self._pending_cells

    # -- metrics -------------------------------------------------------------------

    def _refresh_gauges(self) -> None:
        self.metrics.queue_depth.set(self.executor.queue_depth)
        self.metrics.cells_in_flight.set(self.executor.inflight)

    def _metric_snapshot(self) -> dict:
        """The compact registry excerpt embedded in per-cell events."""
        value = self.metrics.registry.value
        return {
            "queue_depth": self.executor.queue_depth,
            "cells_in_flight": self.executor.inflight,
            "jobs_in_flight": value("service_jobs_in_flight", 0.0),
            "cache_hit_ratio": value("service_cache_hit_ratio", 0.0),
            "worker_restarts": value("service_worker_restarts", 0.0),
        }

    def _maybe_prune(self) -> None:
        if self.cache is not None and self.cache_max_bytes is not None:
            self.cache.prune(self.cache_max_bytes)

    def health(self) -> dict:
        """The ``GET /healthz`` body."""
        with self._lock:
            active = sum(1 for job in self.jobs.values() if not job.terminal)
            return {
                "status": "draining" if self._closed else "ok",
                "jobs_total": len(self.jobs),
                "jobs_active": active,
                "pending_cells": self._pending_cells,
                "queue_limit": self.queue_limit,
                "queue_depth": self.executor.queue_depth,
                "worker_restarts": self.executor.worker_restarts,
            }
