"""The serve daemon's wire vocabulary: job payloads in, views + events out.

A job submission is JSON speaking the exact same cell/policy vocabulary
as :class:`~repro.harness.runner.CellSpec` / ``PolicySpec`` — the specs
a client submits over HTTP are the specs ``afraid-sim sweep`` builds
locally, which is what makes service results byte-identical to sweep
results for the same configuration.

Two submission shapes are accepted:

* explicit cells::

      {"cells": [{"workload": "hplajw", "policy": {"kind": "afraid"}},
                 {"workload": "ATT", "policy": {"kind": "mttdl",
                                                "mttdl_target": 1e7}}],
       "duration_s": 30.0, "seed": 42}

  Top-level ``duration_s`` / ``seed`` / ``ndisks`` / ... act as defaults
  each cell may override; a policy may also be the bare kind string.

* the sweep ladder, mirroring ``afraid-sim sweep``'s arguments::

      {"workloads": ["hplajw", "ATT"], "targets": [1e7, 1e6],
       "duration_s": 30.0, "seed": 42}

Malformed payloads raise :class:`ProtocolError`, which the server maps
to ``400`` with the message in the body — validation happens at the
edge, so a worker process never sees a spec it cannot run.
"""

from __future__ import annotations

import typing

from repro.harness.runner import CellSpec, PolicySpec, ladder_specs
from repro.traces import CATALOG, workload_names


class ProtocolError(ValueError):
    """A malformed job payload (maps to HTTP 400)."""


#: CellSpec fields a submission may set, with their expected coercions.
_CELL_FIELDS: dict[str, typing.Callable] = {
    "workload": str,
    "duration_s": float,
    "seed": int,
    "ndisks": int,
    "stripe_unit_sectors": int,
    "idle_threshold_s": float,
    "extra_settle_s": float,
}

#: Top-level keys shared by both submission shapes.
_DEFAULT_KEYS = frozenset(_CELL_FIELDS) - {"workload"}


def _require_mapping(value, what: str) -> dict:
    if not isinstance(value, dict):
        raise ProtocolError(f"{what} must be a JSON object, got {type(value).__name__}")
    return value


def parse_policy(value) -> PolicySpec:
    """A policy payload — ``"afraid"`` or ``{"kind": ..., ...}`` — to a spec."""
    if isinstance(value, str):
        value = {"kind": value}
    value = _require_mapping(value, "policy")
    unknown = set(value) - {"kind", "mttdl_target"}
    if unknown:
        raise ProtocolError(f"unknown policy keys: {sorted(unknown)}")
    if "kind" not in value:
        raise ProtocolError('policy needs a "kind"')
    target = value.get("mttdl_target")
    try:
        return PolicySpec(
            str(value["kind"]),
            mttdl_target=float(target) if target is not None else None,
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError(str(exc)) from None


def parse_cell(payload, defaults: dict | None = None) -> CellSpec:
    """One cell payload to a :class:`CellSpec`, applying job-level defaults."""
    payload = _require_mapping(payload, "cell")
    unknown = set(payload) - set(_CELL_FIELDS) - {"policy"}
    if unknown:
        raise ProtocolError(f"unknown cell keys: {sorted(unknown)}")
    merged = dict(defaults or {})
    merged.update(payload)
    if "workload" not in merged:
        raise ProtocolError('cell needs a "workload"')
    if "policy" not in merged:
        raise ProtocolError('cell needs a "policy"')
    kwargs = {}
    for field, coerce in _CELL_FIELDS.items():
        if field in merged:
            try:
                kwargs[field] = coerce(merged[field])
            except (TypeError, ValueError):
                raise ProtocolError(
                    f"cell field {field!r}: cannot make a {coerce.__name__} "
                    f"of {merged[field]!r}"
                ) from None
    spec = CellSpec(policy=parse_policy(merged["policy"]), **kwargs)
    if spec.workload not in CATALOG:
        raise ProtocolError(
            f"unknown workload {spec.workload!r}; choose from {workload_names()}"
        )
    return spec


def parse_job_payload(payload) -> list[CellSpec]:
    """A full submission body to its list of cell specs.

    Accepts either the explicit-``cells`` shape or the sweep-ladder
    shape (``workloads`` + optional ``targets``); exactly one of the two
    must be present.
    """
    payload = _require_mapping(payload, "job")
    has_cells = "cells" in payload
    has_ladder = "workloads" in payload
    if has_cells == has_ladder:
        raise ProtocolError('job needs exactly one of "cells" or "workloads"')

    if has_cells:
        unknown = set(payload) - _DEFAULT_KEYS - {"cells", "policy"}
        if unknown:
            raise ProtocolError(f"unknown job keys: {sorted(unknown)}")
        cells = payload["cells"]
        if not isinstance(cells, list) or not cells:
            raise ProtocolError('"cells" must be a non-empty list')
        defaults = {key: payload[key] for key in payload if key != "cells"}
        return [parse_cell(cell, defaults) for cell in cells]

    unknown = set(payload) - _DEFAULT_KEYS - {
        "workloads", "targets", "include_raid5", "include_raid0",
    }
    if unknown:
        raise ProtocolError(f"unknown job keys: {sorted(unknown)}")
    workloads = payload["workloads"]
    if not isinstance(workloads, list) or not workloads:
        raise ProtocolError('"workloads" must be a non-empty list')
    for workload in workloads:
        if workload not in CATALOG:
            raise ProtocolError(
                f"unknown workload {workload!r}; choose from {workload_names()}"
            )
    targets = payload.get("targets", [])
    if not isinstance(targets, list):
        raise ProtocolError('"targets" must be a list of hours')
    cell_kwargs = {}
    for key in _DEFAULT_KEYS:
        if key in payload:
            try:
                cell_kwargs[key] = _CELL_FIELDS[key](payload[key])
            except (TypeError, ValueError):
                raise ProtocolError(f"job field {key!r}: bad value {payload[key]!r}") from None
    try:
        targets = [float(target) for target in targets]
    except (TypeError, ValueError):
        raise ProtocolError('"targets" must be a list of hours') from None
    return ladder_specs(
        [str(w) for w in workloads],
        targets,
        include_raid5=bool(payload.get("include_raid5", True)),
        include_raid0=bool(payload.get("include_raid0", True)),
        **cell_kwargs,
    )


def cell_label(spec: CellSpec) -> str:
    """The ``workload/policy`` label a cell's results are keyed under."""
    return f"{spec.workload}/{spec.policy.label}"


def spec_to_payload(spec: CellSpec) -> dict:
    """The JSON view of one cell spec (round-trips through parse_cell)."""
    payload = spec.to_config()
    if payload["policy"].get("mttdl_target") is None:
        payload["policy"] = {"kind": payload["policy"]["kind"]}
    return payload
