"""Parity-update policies: the AFRAID availability/performance dial.

A policy decides, continuously:

* **write mode** — AFRAID (write data, defer parity) or RAID 5
  (read-modify-write in the critical path);
* **when the scrubber may run** — only in detected idle periods
  (baseline), regardless of load (eager / forced), or never (the paper's
  RAID 0 model);
* **forced scrubs** — e.g. the MTTDL_x policy's "start a parity update
  when more than 20 stripes are unprotected, even if the array is not
  idle" rule.

Policies see the array through the narrow :class:`ArrayView` protocol.
"""

from __future__ import annotations

import enum
import typing

from repro.availability import ReliabilityParams, afraid_mttdl

if typing.TYPE_CHECKING:  # pragma: no cover - optional observability
    from repro.obs import MetricsRegistry, Tracer


class WriteMode(enum.Enum):
    """How a client write maintains (or defers) parity."""

    AFRAID = "afraid"  # write data only; mark stripes dirty
    RAID5 = "raid5"  # full read-modify-write, parity stays fresh


class ArrayView(typing.Protocol):
    """What a policy may observe and request of its array."""

    @property
    def now(self) -> float: ...

    @property
    def ndisks(self) -> int: ...

    @property
    def dirty_stripe_count(self) -> int: ...

    @property
    def is_idle(self) -> bool: ...

    def unprotected_fraction_so_far(self) -> float: ...

    def idle_fraction_so_far(self) -> float: ...

    def request_scrub(self, force: bool = False) -> None: ...


class ParityPolicy:
    """Base policy: pure AFRAID (the paper's baseline configuration).

    Data is written immediately, parity rebuilds happen only in detected
    idle periods, and nothing is ever forced.
    """

    name = "afraid"

    def __init__(self) -> None:
        self.array: ArrayView | None = None
        #: Optional decision tracer, set by the controller's
        #: ``attach_observability``; ``None`` costs one check per decision.
        self.tracer: "Tracer | None" = None
        #: Optional metrics registry (same attachment path); policies
        #: publish decision counters (e.g. ``mode_switches_total``) into it.
        self.registry: "MetricsRegistry | None" = None

    def attach(self, array: ArrayView) -> None:
        """Bind the policy to its array (called once by the controller)."""
        self.array = array

    # -- decision points ---------------------------------------------------------------

    def write_mode(self, stripes: typing.Sequence[int] = ()) -> WriteMode:
        """Mode for the client write about to be serviced.

        ``stripes`` are the stripes the write touches — most policies
        ignore them, but per-region policies (§5) dispatch on them.
        """
        return WriteMode.AFRAID

    def may_scrub_now(self) -> bool:
        """May the scrubber start/continue during a detected idle period?"""
        return True

    def should_scrub_stripe(self, stripe: int) -> bool:
        """Is ``stripe`` eligible for background parity rebuild?

        Per-region policies return False for RAID 0-flagged regions,
        whose stripes deliberately stay unredundant (§5).
        """
        return True

    def scrub_despite_load(self) -> bool:
        """May the scrubber run even when clients are active?"""
        return False

    def on_stripes_marked(self) -> None:
        """Called after a write marks stripes (dirty count may have grown)."""

    def describe(self) -> str:
        return self.name


class BaselineAfraidPolicy(ParityPolicy):
    """Alias for the base policy, for explicitness in experiment tables."""

    name = "afraid"


class NeverScrubPolicy(ParityPolicy):
    """The paper's RAID 0 model: an AFRAID that never updates parity.

    Using the same code path as AFRAID for the unprotected datapoint keeps
    performance comparisons exact (§4.1).
    """

    name = "raid0"

    def may_scrub_now(self) -> bool:
        return False


class AlwaysRaid5Policy(ParityPolicy):
    """Traditional RAID 5: every write pays the small-update penalty."""

    name = "raid5"

    def write_mode(self, stripes: typing.Sequence[int] = ()) -> WriteMode:
        return WriteMode.RAID5


class DirtyStripeThresholdPolicy(ParityPolicy):
    """Bound MDLR by capping the number of unprotected stripes.

    When more than ``max_dirty_stripes`` are marked, a scrub is forced
    even if the array is busy.  The paper found 20 stripes "fairly
    effective and caused little performance degradation" (§4.1).
    """

    name = "threshold"

    def __init__(self, max_dirty_stripes: int = 20) -> None:
        super().__init__()
        if max_dirty_stripes < 1:
            raise ValueError(f"max_dirty_stripes must be >= 1, got {max_dirty_stripes}")
        self.max_dirty_stripes = max_dirty_stripes
        self._forcing = False

    def scrub_despite_load(self) -> bool:
        return self._forcing

    def on_stripes_marked(self) -> None:
        assert self.array is not None
        if self.array.dirty_stripe_count > self.max_dirty_stripes:
            if not self._forcing and self.tracer is not None:
                self.tracer.instant(
                    "policy.force_scrub", track="policy", category="policy",
                    dirty=self.array.dirty_stripe_count,
                    threshold=self.max_dirty_stripes,
                )
            self._forcing = True
            self.array.request_scrub(force=True)
        else:
            self._forcing = False

    def describe(self) -> str:
        return f"{self.name}({self.max_dirty_stripes})"


class MttdlTargetPolicy(DirtyStripeThresholdPolicy):
    """The paper's MTTDL_x policy (§4.1).

    Keeps the achieved disk-related MTTDL above ``target_h`` by
    continuously evaluating eq. (2c) on the unprotected-time fraction
    observed so far, and reverting to RAID 5 mode (plus kicking off parity
    updates for pending stripes) whenever the target is not being met.  It
    also bounds MDLR via the inherited >20-dirty-stripes forced scrub.
    """

    name = "mttdl"

    def __init__(
        self,
        target_h: float,
        params: ReliabilityParams | None = None,
        max_dirty_stripes: int = 20,
        safety_factor: float = 1.25,
    ) -> None:
        super().__init__(max_dirty_stripes=max_dirty_stripes)
        if target_h <= 0:
            raise ValueError(f"target MTTDL must be positive, got {target_h}")
        if safety_factor < 1.0:
            raise ValueError(f"safety factor must be >= 1, got {safety_factor}")
        self.target_h = target_h
        #: Revert to RAID 5 a little before the target is actually crossed,
        #: so scrub latency cannot drag the achieved value below it.  This
        #: is why the paper's simple implementation was "never more than 5%
        #: below its target, and usually far exceeded it" (§4.3).
        self.safety_factor = safety_factor
        self.params = params if params is not None else ReliabilityParams()
        self._raid5_mode = False  # last decision, for transition instants

    def achieved_mttdl_h(self) -> float:
        """Disk-related MTTDL achieved so far, per eq. (2c).

        When the array has an :class:`~repro.obs.ExposureMonitor`, the
        value comes from it (which also refreshes the registry's
        ``achieved_mttdl_h`` gauge) — the policy reads the same live
        metric it exports rather than recomputing ad hoc.  The monitor
        evaluates the identical equation on the identical whole-run
        snapshot, so decisions don't depend on whether telemetry is on.
        """
        assert self.array is not None
        exposure = getattr(self.array, "exposure", None)
        if exposure is not None:
            return exposure.achieved_mttdl_h(params=self.params)
        fraction = self.array.unprotected_fraction_so_far()
        return afraid_mttdl(
            ndisks=self.array.ndisks,
            mttf_disk_h=self.params.mttf_disk_h,
            mttr_h=self.params.mttr_h,
            unprotected_fraction=fraction,
        )

    def meeting_target(self) -> bool:
        return self.achieved_mttdl_h() >= self.target_h * self.safety_factor

    def write_mode(self, stripes: typing.Sequence[int] = ()) -> WriteMode:
        if self.meeting_target():
            if self._raid5_mode:
                self._raid5_mode = False
                self._mode_switched()
                if self.tracer is not None:
                    self.tracer.instant(
                        "policy.resume_afraid", track="policy", category="policy",
                        achieved_mttdl_h=self.achieved_mttdl_h(),
                    )
            return WriteMode.AFRAID
        # Goal missed: revert to RAID 5 and drain the pending parity debt.
        assert self.array is not None
        if not self._raid5_mode:
            self._raid5_mode = True
            self._mode_switched()
            if self.tracer is not None:
                self.tracer.instant(
                    "policy.revert_raid5", track="policy", category="policy",
                    achieved_mttdl_h=self.achieved_mttdl_h(),
                    target_h=self.target_h,
                )
        self.array.request_scrub(force=True)
        return WriteMode.RAID5

    def _mode_switched(self) -> None:
        if self.registry is not None:
            self.registry.counter(
                "mode_switches_total", "AFRAID/RAID 5 write-mode transitions"
            ).inc()

    def scrub_despite_load(self) -> bool:
        return self._forcing or not self.meeting_target()

    def describe(self) -> str:
        return f"MTTDL_{self.target_h:g}"


class EagerScrubPolicy(ParityPolicy):
    """Scrub whenever there is parity debt, idle or not.

    The most availability-aggressive refinement in §1.1: parity rebuilding
    gets priority over foreground I/Os.
    """

    name = "eager"

    def scrub_despite_load(self) -> bool:
        return True

    def on_stripes_marked(self) -> None:
        assert self.array is not None
        self.array.request_scrub(force=True)
