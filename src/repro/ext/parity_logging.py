"""Parity logging [Stodolsky93] — the paper's closest prior comparator (§2).

A parity-logging array keeps full redundancy at all times, but moves the
parity *write* out of the small-update critical path:

1. foreground: read old data, write new data (2 I/Os — AFRAID needs 1);
   the xor of old and new data (the *parity-update image*) goes into an
   NVRAM fill buffer;
2. when a fill buffer is full, it is appended to an on-disk log region
   with one large sequential write (cheap per image);
3. when the log region fills, it is *reclaimed*: the log and the parity
   region are read sequentially, the images are applied, and the parity
   region is rewritten — a burst of large I/Os that can interfere with
   foreground traffic, which is exactly the behaviour the paper contrasts
   with AFRAID's preemptible stripe-at-a-time scrub.

The model reserves a log region at the end of each disk (images are
logged on the disk that holds the target stripe's parity, so a reclaim is
a single-disk sequential sweep).  NVRAM exhaustion applies back-pressure
to writers, mirroring the "log fills up" failure mode the paper discusses.
"""

from __future__ import annotations

import dataclasses

from repro.array.request import ArrayRequest
from repro.disk import DiskIO, IoKind, MechanicalDisk
from repro.idle import IdleDetector
from repro.layout import Raid5Layout
from repro.sched import DiskDriver, FcfsScheduler
from repro.sim import AllOf, Event, Resource, Simulator


@dataclasses.dataclass(frozen=True)
class ParityLogConfig:
    """Sizing knobs for the log hierarchy."""

    nvram_buffer_bytes: int = 64 * 1024  # fill buffer per parity disk
    log_region_bytes: int = 1024 * 1024  # on-disk log per disk
    #: Parity bytes re-read/re-written per log byte during reclaim (the
    #: images of a full log usually touch a comparable span of parity).
    reclaim_parity_ratio: float = 1.0


@dataclasses.dataclass
class ParityLogStats:
    writes: int = 0
    reads: int = 0
    log_flushes: int = 0
    reclaims: int = 0
    foreground_ios: int = 0
    background_ios: int = 0


class ParityLoggingArray:
    """Timing model of a parity-logging RAID 5."""

    def __init__(
        self,
        sim: Simulator,
        disks: list[MechanicalDisk],
        stripe_unit_sectors: int,
        config: ParityLogConfig | None = None,
        idle_threshold_s: float = 0.100,
        name: str = "plog",
    ) -> None:
        if len(disks) < 3:
            raise ValueError(f"need >= 3 disks, got {len(disks)}")
        self.sim = sim
        self.disks = list(disks)
        self.config = config if config is not None else ParityLogConfig()
        self.name = name
        self.sector_bytes = disks[0].geometry.sector_bytes

        # Reserve the log region at the end of every disk.
        log_sectors = -(-self.config.log_region_bytes // self.sector_bytes)
        usable = min(disk.geometry.total_sectors for disk in disks) - log_sectors
        if usable < stripe_unit_sectors:
            raise ValueError("log region leaves no room for data")
        self.layout = Raid5Layout(len(disks), stripe_unit_sectors, usable)
        self._log_base_lba = self.layout.nstripes * stripe_unit_sectors

        self.drivers = [
            DiskDriver(sim, disk, FcfsScheduler(), name=f"{name}.be{index}")
            for index, disk in enumerate(disks)
        ]
        self.slots = Resource(sim, capacity=len(disks), name=f"{name}.slots")
        self.detector = IdleDetector(sim, threshold_s=idle_threshold_s)
        self.stats = ParityLogStats()
        self.io_times: list[float] = []

        # Per parity disk: bytes buffered in NVRAM and bytes in the on-disk log.
        self._nvram_fill = [0] * len(disks)
        self._log_fill = [0] * len(disks)
        self._maintenance_running = [False] * len(disks)
        # Like AFRAID's scrubber, drain pending log work in idle periods
        # (the paper suggests exactly this extension for parity logging).
        self.detector.on_idle.append(self._on_idle)

    # -- client API ---------------------------------------------------------------------

    def submit(self, request: ArrayRequest) -> Event:
        if request.offset_sectors + request.nsectors > self.layout.total_data_sectors:
            raise ValueError("request exceeds array data capacity")
        request.submit_time = self.sim.now
        self.detector.activity_started()
        done = self.sim.event(name=f"{self.name}.done")
        self.sim.process(self._service(request, done), name=f"{self.name}.service")
        return done

    def _service(self, request: ArrayRequest, done: Event):
        yield self.slots.acquire()
        try:
            if request.is_write:
                yield from self._write(request)
            else:
                yield from self._read(request)
        except BaseException as exc:
            self.slots.release()
            self.detector.activity_ended()
            done.fail(exc)
            return
        self.slots.release()
        request.complete_time = self.sim.now
        self.io_times.append(request.io_time)
        self.stats.writes += request.is_write
        self.stats.reads += not request.is_write
        self.detector.activity_ended()
        done.succeed(request)

    def _read(self, request: ArrayRequest):
        events = []
        for run in self.layout.map_extent(request.offset_sectors, request.nsectors):
            events.append(self.drivers[run.disk].submit(DiskIO(IoKind.READ, run.disk_lba, run.nsectors)))
            self.stats.foreground_ios += 1
        yield AllOf(self.sim, events)

    def _write(self, request: ArrayRequest):
        runs = self.layout.map_extent(request.offset_sectors, request.nsectors)
        # Critical path: read old data, write new data (no parity I/O).
        reads = []
        for run in runs:
            reads.append(self.drivers[run.disk].submit(DiskIO(IoKind.READ, run.disk_lba, run.nsectors)))
            self.stats.foreground_ios += 1
        yield AllOf(self.sim, reads)
        writes = []
        for run in runs:
            writes.append(self.drivers[run.disk].submit(DiskIO(IoKind.WRITE, run.disk_lba, run.nsectors)))
            self.stats.foreground_ios += 1
        yield AllOf(self.sim, writes)

        # Buffer one parity-update image per run in the parity disk's NVRAM
        # fill buffer; back-pressure when the buffer is full.
        for run in runs:
            parity_disk = self.layout.parity_disk(run.stripe)
            image_bytes = run.nsectors * self.sector_bytes
            while self._nvram_fill[parity_disk] + image_bytes > self.config.nvram_buffer_bytes:
                yield from self._flush_log(parity_disk)
            self._nvram_fill[parity_disk] += image_bytes

    # -- log maintenance -----------------------------------------------------------------

    def _on_idle(self) -> None:
        for disk in range(len(self.disks)):
            if self._nvram_fill[disk] and not self._maintenance_running[disk]:
                self._maintenance_running[disk] = True
                self.sim.process(self._idle_flush(disk), name=f"{self.name}.flush{disk}")

    def _idle_flush(self, disk: int):
        try:
            yield from self._flush_log(disk)
        finally:
            self._maintenance_running[disk] = False

    def _flush_log(self, disk: int):
        """Append the NVRAM fill buffer to the on-disk log (one big write)."""
        fill = self._nvram_fill[disk]
        if fill == 0:
            return
        self._nvram_fill[disk] = 0
        nsectors = max(1, fill // self.sector_bytes)
        lba = self._log_base_lba + (self._log_fill[disk] // self.sector_bytes)
        yield self.drivers[disk].submit(DiskIO(IoKind.WRITE, lba, nsectors))
        self.stats.background_ios += 1
        self.stats.log_flushes += 1
        self._log_fill[disk] += fill
        if self._log_fill[disk] >= self.config.log_region_bytes:
            yield from self._reclaim(disk)

    def _reclaim(self, disk: int):
        """Apply a full log to the parity region: the expensive batch.

        Sequential read of the log, sequential read of the covered parity
        span, then a sequential rewrite of that span — all on one disk,
        and all competing with foreground I/O on it.
        """
        log_bytes = self._log_fill[disk]
        self._log_fill[disk] = 0
        log_sectors = max(1, log_bytes // self.sector_bytes)
        parity_sectors = max(1, int(log_sectors * self.config.reclaim_parity_ratio))
        parity_lba = 0  # parity units of this disk start at its low LBAs
        yield self.drivers[disk].submit(DiskIO(IoKind.READ, self._log_base_lba, log_sectors))
        yield self.drivers[disk].submit(
            DiskIO(IoKind.READ, parity_lba, min(parity_sectors, self._log_base_lba))
        )
        yield self.drivers[disk].submit(
            DiskIO(IoKind.WRITE, parity_lba, min(parity_sectors, self._log_base_lba))
        )
        self.stats.background_ios += 3
        self.stats.reclaims += 1

    @property
    def mean_io_time(self) -> float:
        return sum(self.io_times) / len(self.io_times) if self.io_times else 0.0

    @property
    def pending_log_bytes(self) -> int:
        """Parity debt parked in NVRAM + on-disk logs (fully redundant,
        unlike AFRAID's parity lag — but it must eventually be applied)."""
        return sum(self._nvram_fill) + sum(self._log_fill)
