"""AFRAID on RAID 6 — the timing model of the paper's §5 refinement.

A RAID 6 small write normally pays an even higher penalty than RAID 5:
six disk I/Os (read old data, old P, old Q; write all three back).  The
refinement defers either or both syndrome updates:

* ``DeferralMode.NONE``       — plain RAID 6: 6 I/Os, always 2-failure-safe;
* ``DeferralMode.DEFER_Q``    — 4 I/Os, immediately 1-failure-safe, fully
  redundant after the background Q rebuild;
* ``DeferralMode.DEFER_BOTH`` — 1 I/O, AFRAID-style exposure until the
  background rebuild refreshes both syndromes.

This controller is a deliberately lean exploratory model (no array cache
or staging budget — both would affect all modes identically); it reuses
the production disks, drivers, idle detector and NVRAM mark memories, and
reports the same mean-I/O-time and exposure metrics as the main stack so
the modes can be laid side by side in a bench.
"""

from __future__ import annotations

import enum

from repro.array.request import ArrayRequest
from repro.availability import ParityLagTracker
from repro.disk import DiskIO, IoKind, MechanicalDisk
from repro.idle import IdleDetector
from repro.layout.raid6 import Raid6Layout
from repro.nvram import MarkMemory
from repro.sched import DiskDriver, FcfsScheduler
from repro.sim import AllOf, Event, Resource, Simulator


class DeferralMode(enum.Enum):
    """Which syndrome updates a client write defers."""

    NONE = "raid6"
    DEFER_Q = "defer_q"
    DEFER_BOTH = "defer_both"


class Raid6AfraidArray:
    """A P+Q array whose write path defers 0, 1, or 2 syndrome updates."""

    def __init__(
        self,
        sim: Simulator,
        disks: list[MechanicalDisk],
        stripe_unit_sectors: int,
        mode: DeferralMode = DeferralMode.DEFER_Q,
        idle_threshold_s: float = 0.100,
        name: str = "raid6",
    ) -> None:
        if len(disks) < 4:
            raise ValueError(f"RAID 6 needs >= 4 disks, got {len(disks)}")
        self.sim = sim
        self.disks = list(disks)
        self.mode = mode
        self.name = name
        self.sector_bytes = disks[0].geometry.sector_bytes
        usable = min(disk.geometry.total_sectors for disk in disks)
        self.layout = Raid6Layout(len(disks), stripe_unit_sectors, usable)
        self.unit_bytes = stripe_unit_sectors * self.sector_bytes
        self.drivers = [
            DiskDriver(sim, disk, FcfsScheduler(), name=f"{name}.be{index}")
            for index, disk in enumerate(disks)
        ]
        self.slots = Resource(sim, capacity=len(disks), name=f"{name}.slots")
        self.detector = IdleDetector(sim, threshold_s=idle_threshold_s)
        self.stale_p = MarkMemory(self.layout.nstripes)
        self.stale_q = MarkMemory(self.layout.nstripes)
        #: Bytes in stripes with BOTH syndromes stale (single-failure risk).
        self.exposure_tracker = ParityLagTracker(start_time=sim.now)
        #: Bytes in stripes below full two-failure redundancy.
        self.degraded_tracker = ParityLagTracker(start_time=sim.now)
        self.io_times: list[float] = []
        self.disk_ios = 0
        self.stripes_scrubbed = 0
        self._scrub_running = False
        self._finished = False
        self.detector.on_idle.append(self._on_idle)

    # -- exposure bookkeeping -----------------------------------------------------------

    def _stripe_bytes(self) -> int:
        return self.layout.data_units_per_stripe * self.unit_bytes

    def _record_exposure(self) -> None:
        if self._finished:
            return
        both = set(self.stale_p.marked_stripes) & set(self.stale_q.marked_stripes)
        either = set(self.stale_p.marked_stripes) | set(self.stale_q.marked_stripes)
        self.exposure_tracker.record(self.sim.now, len(both) * self._stripe_bytes())
        self.degraded_tracker.record(self.sim.now, len(either) * self._stripe_bytes())

    def finalize(self) -> None:
        if not self._finished:
            self._finished = True
            self.exposure_tracker.finish(self.sim.now)
            self.degraded_tracker.finish(self.sim.now)

    # -- client API ------------------------------------------------------------------------

    def submit(self, request: ArrayRequest) -> Event:
        """Service one request; the event fires at completion."""
        if request.offset_sectors + request.nsectors > self.layout.total_data_sectors:
            raise ValueError("request exceeds array data capacity")
        request.submit_time = self.sim.now
        self.detector.activity_started()
        done = self.sim.event(name=f"{self.name}.done")
        self.sim.process(self._service(request, done), name=f"{self.name}.service")
        return done

    def _service(self, request: ArrayRequest, done: Event):
        yield self.slots.acquire()
        try:
            if request.is_write:
                yield from self._write(request)
            else:
                yield from self._read(request)
        except BaseException as exc:
            self.slots.release()
            self.detector.activity_ended()
            done.fail(exc)
            return
        self.slots.release()
        request.complete_time = self.sim.now
        self.io_times.append(request.io_time)
        self.detector.activity_ended()
        done.succeed(request)

    def _read(self, request: ArrayRequest):
        events = []
        for run in self.layout.map_extent(request.offset_sectors, request.nsectors):
            events.append(self.drivers[run.disk].submit(DiskIO(IoKind.READ, run.disk_lba, run.nsectors)))
            self.disk_ios += 1
        yield AllOf(self.sim, events)

    def _write(self, request: ArrayRequest):
        runs = self.layout.map_extent(request.offset_sectors, request.nsectors)
        stripes = sorted({run.stripe for run in runs})
        defer_p = self.mode is DeferralMode.DEFER_BOTH
        defer_q = self.mode is not DeferralMode.NONE

        # Mark deferred syndromes stale *before* data lands.
        for stripe in stripes:
            if defer_p:
                self.stale_p.mark(stripe)
            if defer_q:
                self.stale_q.mark(stripe)
        if defer_p or defer_q:
            self._record_exposure()

        unit_sectors = self.layout.stripe_unit_sectors
        if not defer_p or not defer_q:
            # Read-modify-write pre-reads: old data always, plus each
            # syndrome being freshened in the foreground.
            reads = []
            for run in runs:
                reads.append(self.drivers[run.disk].submit(DiskIO(IoKind.READ, run.disk_lba, run.nsectors)))
                self.disk_ios += 1
            for stripe in stripes:
                if not defer_p:
                    p = self.layout.parity_unit(stripe)
                    reads.append(self.drivers[p.disk].submit(DiskIO(IoKind.READ, p.disk_lba, unit_sectors)))
                    self.disk_ios += 1
                if not defer_q:
                    q = self.layout.parity_q_unit(stripe)
                    reads.append(self.drivers[q.disk].submit(DiskIO(IoKind.READ, q.disk_lba, unit_sectors)))
                    self.disk_ios += 1
            yield AllOf(self.sim, reads)

        writes = []
        for run in runs:
            writes.append(self.drivers[run.disk].submit(DiskIO(IoKind.WRITE, run.disk_lba, run.nsectors)))
            self.disk_ios += 1
        for stripe in stripes:
            if not defer_p:
                p = self.layout.parity_unit(stripe)
                writes.append(self.drivers[p.disk].submit(DiskIO(IoKind.WRITE, p.disk_lba, unit_sectors)))
                self.disk_ios += 1
            if not defer_q:
                q = self.layout.parity_q_unit(stripe)
                writes.append(self.drivers[q.disk].submit(DiskIO(IoKind.WRITE, q.disk_lba, unit_sectors)))
                self.disk_ios += 1
        yield AllOf(self.sim, writes)

    # -- background syndrome rebuilding ---------------------------------------------------------

    def _on_idle(self) -> None:
        if (self.stale_p.count or self.stale_q.count) and not self._scrub_running:
            self._scrub_running = True
            self.sim.process(self._scrub_loop(), name=f"{self.name}.scrubber")

    def _scrub_loop(self):
        try:
            while (self.stale_p.count or self.stale_q.count) and self.detector.is_idle:
                oldest_q = self.stale_q.oldest()
                oldest_p = self.stale_p.oldest()
                stripe = (oldest_p or oldest_q)[0]
                yield from self._scrub_stripe(stripe)
        finally:
            self._scrub_running = False

    def _scrub_stripe(self, stripe: int):
        """Read the stripe's data units, rewrite whichever syndromes are stale."""
        unit_sectors = self.layout.stripe_unit_sectors
        reads = []
        for unit in self.layout.data_units(stripe):
            reads.append(self.drivers[unit.disk].submit(DiskIO(IoKind.READ, unit.disk_lba, unit_sectors)))
            self.disk_ios += 1
        yield AllOf(self.sim, reads)
        writes = []
        if self.stale_p.is_marked(stripe):
            p = self.layout.parity_unit(stripe)
            writes.append(self.drivers[p.disk].submit(DiskIO(IoKind.WRITE, p.disk_lba, unit_sectors)))
            self.disk_ios += 1
        if self.stale_q.is_marked(stripe):
            q = self.layout.parity_q_unit(stripe)
            writes.append(self.drivers[q.disk].submit(DiskIO(IoKind.WRITE, q.disk_lba, unit_sectors)))
            self.disk_ios += 1
        if writes:
            yield AllOf(self.sim, writes)
        self.stale_p.clear_stripe(stripe)
        self.stale_q.clear_stripe(stripe)
        self.stripes_scrubbed += 1
        self._record_exposure()

    @property
    def mean_io_time(self) -> float:
        return sum(self.io_times) / len(self.io_times) if self.io_times else 0.0
