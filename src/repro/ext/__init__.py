"""Extensions: the paper's §2 comparator and §5 refinements.

* :mod:`repro.ext.gf256` / :mod:`repro.ext.raid6_blocks` — GF(2⁸)
  arithmetic and a byte-accurate P+Q (Reed-Solomon) dual-parity array,
  the substrate for combining AFRAID with RAID 6 (§5).
* :mod:`repro.ext.raid6_afraid` — the timing model of AFRAID-on-RAID 6:
  defer neither, one, or both parity updates per write.
* :mod:`repro.ext.parity_logging` — the parity-logging array of
  [Stodolsky93], the paper's closest prior solution (§2), for head-to-head
  comparison benches.
* :mod:`repro.ext.policies` — §5 policy refinements: per-region
  redundancy flags, the conservative-start auto-switch, and a
  [Golding95]-predictor-driven scrub gate.
* :mod:`repro.ext.rebuild` — degraded-mode operation and background
  rebuild onto a spare after a disk failure (the standard RAID machinery
  §2 notes AFRAID inherits).
"""

from repro.ext.gf256 import GF256
from repro.ext.parity_logging import ParityLogConfig, ParityLoggingArray
from repro.ext.policies import AdaptiveStartPolicy, PredictiveScrubPolicy, RegionMap, RegionPolicy
from repro.ext.raid6_afraid import DeferralMode, Raid6AfraidArray
from repro.ext.raid6_blocks import Raid6FunctionalArray
from repro.ext.rebuild import RebuildManager

__all__ = [
    "AdaptiveStartPolicy",
    "DeferralMode",
    "GF256",
    "ParityLogConfig",
    "ParityLoggingArray",
    "PredictiveScrubPolicy",
    "Raid6AfraidArray",
    "Raid6FunctionalArray",
    "RebuildManager",
    "RegionMap",
    "RegionPolicy",
]
