"""A byte-accurate P+Q (RAID 6) array with optionally deferred parity.

The functional substrate for the paper's §5 refinement: "The AFRAID
technique could be combined with the RAID 6 parity scheme to delay either
or both parity-block updates: if only one was deferred, partial redundancy
protection would be available immediately, and full redundancy once the
parity-rebuild happened for the other parity block."

Tracks P-staleness and Q-staleness per stripe independently, so every
redundancy state the refinement creates is representable:

* both fresh   — survives any two disk failures;
* one stale    — survives any single disk failure (partial redundancy);
* both stale   — new data in the stripe is unprotected (AFRAID exposure).
"""

from __future__ import annotations

import numpy as np

from repro.blocks.store import BlockStore, StoreDiskFailedError
from repro.ext.gf256 import GF256
from repro.layout.raid6 import Raid6Layout


class Raid6DataLostError(Exception):
    """More failures than the surviving syndromes can repair."""


class Raid6FunctionalArray:
    """Real-bytes RAID 6 with independently deferrable P and Q."""

    def __init__(self, layout: Raid6Layout, sector_bytes: int = 512) -> None:
        self.layout = layout
        self.sector_bytes = sector_bytes
        striped_sectors = layout.nstripes * layout.stripe_unit_sectors
        self.store = BlockStore(layout.ndisks, striped_sectors, sector_bytes)
        self._stale_p: set[int] = set()
        self._stale_q: set[int] = set()

    # -- state ------------------------------------------------------------------------

    @property
    def stale_p_stripes(self) -> frozenset[int]:
        return frozenset(self._stale_p)

    @property
    def stale_q_stripes(self) -> frozenset[int]:
        return frozenset(self._stale_q)

    def redundancy_level(self, stripe: int) -> int:
        """How many simultaneous disk failures this stripe tolerates now."""
        return 2 - (stripe in self._stale_p) - (stripe in self._stale_q)

    # -- writes ------------------------------------------------------------------------

    def write(self, logical_sector: int, data: bytes, update_p: bool = True, update_q: bool = True) -> None:
        """Write ``data``; freshen P and/or Q per the deferral flags.

        Updated syndromes are recomputed from the whole stripe (the
        reconstruct-write path — simple and always correct, including when
        the stripe was already stale).
        """
        buffer = np.frombuffer(bytes(data), dtype=np.uint8)
        if buffer.size % self.sector_bytes != 0:
            raise ValueError("write must be a whole number of sectors")
        nsectors = buffer.size // self.sector_bytes
        offset = 0
        touched: list[int] = []
        for run in self.layout.map_extent(logical_sector, nsectors):
            run_bytes = run.nsectors * self.sector_bytes
            self.store.write(run.disk, run.disk_lba, buffer[offset : offset + run_bytes])
            offset += run_bytes
            if run.stripe not in touched:
                touched.append(run.stripe)
        for stripe in touched:
            if update_p:
                self._rebuild_p(stripe)
            else:
                self._stale_p.add(stripe)
            if update_q:
                self._rebuild_q(stripe)
            else:
                self._stale_q.add(stripe)

    # -- scrubbing ----------------------------------------------------------------------

    def scrub_stripe(self, stripe: int, rebuild_p: bool = True, rebuild_q: bool = True) -> None:
        """Background rebuild of the stale syndrome(s) of ``stripe``."""
        if rebuild_p:
            self._rebuild_p(stripe)
        if rebuild_q:
            self._rebuild_q(stripe)

    def _data_units(self, stripe: int) -> list[np.ndarray]:
        # Zero-copy views: every consumer (xor folds, GF256.syndromes,
        # array_equal) reads them without mutating, and the only store
        # write while they are alive targets a parity unit, which never
        # overlaps a data unit.
        nsectors = self.layout.stripe_unit_sectors
        return [
            self.store.read_view(unit.disk, unit.disk_lba, nsectors)
            for unit in self.layout.data_units(stripe)
        ]

    def _rebuild_p(self, stripe: int) -> None:
        units = self._data_units(stripe)
        p = np.zeros_like(units[0])
        for unit in units:
            p ^= unit
        parity = self.layout.parity_unit(stripe)
        self.store.write(parity.disk, parity.disk_lba, p)
        self._stale_p.discard(stripe)

    def _rebuild_q(self, stripe: int) -> None:
        units = self._data_units(stripe)
        _p, q = GF256.syndromes(units)
        q_unit = self.layout.parity_q_unit(stripe)
        self.store.write(q_unit.disk, q_unit.disk_lba, q)
        self._stale_q.discard(stripe)

    # -- reads with recovery ------------------------------------------------------------------

    def fail_disk(self, disk: int) -> None:
        self.store.fail(disk)

    def read(self, logical_sector: int, nsectors: int) -> bytes:
        """Read, reconstructing through up to two failures where possible."""
        pieces = []
        for run in self.layout.map_extent(logical_sector, nsectors):
            try:
                piece = self.store.read_view(run.disk, run.disk_lba, run.nsectors)
            except StoreDiskFailedError:
                unit = self._recover_unit(run.stripe, run.unit_index)
                in_unit = run.disk_lba - run.stripe * self.layout.stripe_unit_sectors
                start = in_unit * self.sector_bytes
                piece = unit[start : start + run.nsectors * self.sector_bytes]
            pieces.append(piece)
        return b"".join(piece.tobytes() for piece in pieces)

    def _recover_unit(self, stripe: int, unit_index: int) -> np.ndarray:
        """Reconstruct one whole (lost) data unit of ``stripe``."""
        nsectors = self.layout.stripe_unit_sectors
        survivors: list[tuple[int, np.ndarray]] = []
        lost_indices: list[int] = []
        for unit in self.layout.data_units(stripe):
            try:
                survivors.append(
                    (unit.unit_index, self.store.read_view(unit.disk, unit.disk_lba, nsectors))
                )
            except StoreDiskFailedError:
                lost_indices.append(unit.unit_index)
        p = self._read_syndrome(stripe, use_q=False)
        q = self._read_syndrome(stripe, use_q=True)

        if len(lost_indices) == 1:
            if p is not None:
                result = p.copy()
                for _index, unit in survivors:
                    result ^= unit
                return result
            if q is not None:
                return GF256.recover_one_from_q(q, survivors, unit_index)
            raise Raid6DataLostError(
                f"stripe {stripe}: lost a data unit with both syndromes unavailable"
            )
        if len(lost_indices) == 2:
            if p is None or q is None:
                if p is not None:
                    detail = "only P is available"
                elif q is not None:
                    detail = "only Q is available"
                else:
                    detail = "neither syndrome is available"
                raise Raid6DataLostError(f"stripe {stripe}: two data units lost and {detail}")
            a, b = lost_indices
            d_a, d_b = GF256.recover_two(p, q, survivors, a, b)
            return d_a if unit_index == a else d_b
        raise Raid6DataLostError(f"stripe {stripe}: {len(lost_indices)} data units lost")

    def _read_syndrome(self, stripe: int, use_q: bool) -> np.ndarray | None:
        """A syndrome usable for recovery, or None (failed disk or stale)."""
        stale = self._stale_q if use_q else self._stale_p
        if stripe in stale:
            return None
        unit = self.layout.parity_q_unit(stripe) if use_q else self.layout.parity_unit(stripe)
        try:
            # A view is enough: recovery copies before folding survivors in.
            return self.store.read_view(unit.disk, unit.disk_lba, self.layout.stripe_unit_sectors)
        except StoreDiskFailedError:
            return None

    # -- verification ---------------------------------------------------------------------------

    def syndromes_consistent(self, stripe: int) -> tuple[bool, bool]:
        """(P consistent?, Q consistent?) against the current data."""
        units = self._data_units(stripe)
        expected_p, expected_q = GF256.syndromes(units)
        parity = self.layout.parity_unit(stripe)
        q_unit = self.layout.parity_q_unit(stripe)
        nsectors = self.layout.stripe_unit_sectors
        actual_p = self.store.read_view(parity.disk, parity.disk_lba, nsectors)
        actual_q = self.store.read_view(q_unit.disk, q_unit.disk_lba, nsectors)
        return bool(np.array_equal(expected_p, actual_p)), bool(np.array_equal(expected_q, actual_q))
