"""Degraded-mode rebuild onto a spare disk.

Section 2 of the paper notes that "all the well-known techniques that
have been developed for performing stripe rebuilds in a recently repaired
disk array can be applied to the problem of rebuilding the parity in
AFRAID" — and conversely, an AFRAID array needs the standard machinery
too: when a member dies, the array runs degraded (reads reconstruct
through parity) while a background sweep regenerates the lost disk's
contents onto a spare, stripe by stripe, optionally yielding to
foreground traffic between stripes ([Muntz90, Holland92] style).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.array.controller import DiskArray
from repro.disk import DiskIO, IoKind, LatentSectorError, MechanicalDisk
from repro.sched import DiskDriver, FcfsScheduler
from repro.sim import AllOf, Event, Simulator

if typing.TYPE_CHECKING:  # pragma: no cover - optional observability
    from repro.obs import HistogramSet, MetricsRegistry, Tracer


@dataclasses.dataclass
class RebuildStats:
    stripes_rebuilt: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def duration_s(self) -> float:
        return self.finished_at - self.started_at


class RebuildManager:
    """Coordinates failure handling and spare rebuild for one array."""

    def __init__(self, sim: Simulator, array: DiskArray, yield_to_foreground: bool = True) -> None:
        self.sim = sim
        self.array = array
        #: Pause between stripes while clients are active (rebuild still
        #: makes progress in every idle moment; set False for a flat-out
        #: sweep that competes with the foreground).
        self.yield_to_foreground = yield_to_foreground
        self.stats = RebuildStats()
        # Inherit the array's observability sinks (if any were attached):
        # per-stripe rebuild latencies land in the "rebuild" class and the
        # sweep shows up as spans on a "rebuild" track.
        self.tracer: "Tracer | None" = array.tracer
        self.hists: "HistogramSet | None" = array.hists
        self.registry: "MetricsRegistry | None" = array.registry

    def fail_and_rebuild(self, disk_index: int, spare: MechanicalDisk) -> Event:
        """Kill member ``disk_index`` and rebuild it onto ``spare``.

        Returns an event that fires when the array is whole again (the
        spare installed as the new member, degraded mode left).  Any
        stripes that were dirty at failure time have already lost their
        vulnerable unit (AFRAID's exposure); the rebuild regenerates what
        parity can express.
        """
        array = self.array
        if spare.geometry.total_sectors < array.layout.disk_sectors:
            raise ValueError("spare is smaller than the failed member")
        array.disks[disk_index].fail()
        if array.functional is not None:
            array.functional.fail_disk(disk_index)
        array.enter_degraded(disk_index)
        if self.tracer is not None:
            self.tracer.instant(
                "disk_failed", track="rebuild", category="fault",
                disk=disk_index, dirty_stripes=array.dirty_stripe_count,
            )
        return self.rebuild_onto(disk_index, spare)

    def rebuild_onto(self, disk_index: int, spare: MechanicalDisk) -> Event:
        """Rebuild an *already failed*, degraded member onto ``spare``.

        The half of :meth:`fail_and_rebuild` after the failure itself —
        what a repair technician (or the fault-campaign engine, some
        repair delay after an injected failure) triggers.  Returns an
        event that fires when the array is whole again.
        """
        array = self.array
        if disk_index not in array.failed_disks:
            raise ValueError(
                f"array is degraded on {array.degraded_disk}, not disk {disk_index}"
            )
        if spare.geometry.total_sectors < array.layout.disk_sectors:
            raise ValueError("spare is smaller than the failed member")
        done = self.sim.event(name=f"{array.name}.rebuilt")
        self.sim.process(self._rebuild(disk_index, spare, done), name=f"{array.name}.rebuild")
        return done

    def _rebuild(self, disk_index: int, spare: MechanicalDisk, done: Event):
        array = self.array
        spare_driver = DiskDriver(self.sim, spare, FcfsScheduler(), name=f"{array.name}.spare")
        unit_sectors = array.layout.stripe_unit_sectors
        self.stats.started_at = self.sim.now

        organization = array.organization
        declustered = organization.declustered
        partner = disk_index ^ 1 if organization.mirrored else None

        for stripe in range(array.layout.nstripes):
            if declustered and disk_index not in array.layout.stripe_members(stripe):
                continue  # this disk holds no unit of the stripe
            if self.yield_to_foreground:
                while not array.detector.is_idle:
                    # Re-check shortly after the array drains.
                    yield self.sim.timeout(array.detector.threshold_s)
            stripe_started = self.sim.now
            # Read enough survivors to regenerate the lost unit: the
            # mirror partner for mirrored organizations (every other
            # member via parity if the whole pair died under RAID 1+5),
            # every surviving stripe member otherwise.  A latent sector
            # error on a survivor is repaired in place (rewrite) and the
            # stripe retried, scrubber-style.
            attempts = 0
            while True:
                reads = []
                repair_units = None
                if organization.mirrored:
                    if not array.disks[partner].failed:
                        reads.append(
                            array.drivers[partner].submit(
                                DiskIO(IoKind.READ, stripe * unit_sectors, unit_sectors)
                            )
                        )
                    elif array.layout.has_parity:
                        # Whole pair dead: reconstruct through parity from
                        # one alive copy of every other pair's unit.
                        for member in range(array.ndisks):
                            if member in (disk_index, partner) or member % 2:
                                continue
                            source = member if not array.disks[member].failed else member ^ 1
                            if array.disks[source].failed:
                                continue  # that pair is gone too; data is lost
                            reads.append(
                                array.drivers[source].submit(
                                    DiskIO(IoKind.READ, stripe * unit_sectors, unit_sectors)
                                )
                            )
                    # RAID 1 / RAID 1/0 with the pair dead: contents are
                    # unrecoverable (already recorded as a data-loss
                    # event); the spare comes back zero-filled.
                elif declustered:
                    repair_units = list(array.layout.data_units(stripe))
                    repair_units.append(array.layout.parity_unit(stripe))
                    for member in array.layout.stripe_members(stripe):
                        if member == disk_index:
                            continue
                        reads.append(
                            array.drivers[member].submit(
                                DiskIO(
                                    IoKind.READ,
                                    array.layout.unit_lba(stripe, member),
                                    unit_sectors,
                                )
                            )
                        )
                else:
                    for member in range(array.ndisks):
                        if member == disk_index:
                            continue
                        reads.append(
                            array.drivers[member].submit(
                                DiskIO(IoKind.READ, stripe * unit_sectors, unit_sectors)
                            )
                        )
                try:
                    if reads:
                        yield AllOf(self.sim, reads)
                except LatentSectorError:
                    attempts += 1
                    if attempts > 3:
                        raise
                    yield from array._repair_latent_extent(
                        stripe * unit_sectors, unit_sectors, units=repair_units
                    )
                    continue
                break
            target_lba = (
                array.layout.unit_lba(stripe, disk_index)
                if declustered
                else stripe * unit_sectors
            )
            yield spare_driver.submit(DiskIO(IoKind.WRITE, target_lba, unit_sectors))
            self.stats.stripes_rebuilt += 1
            if self.registry is not None:
                self.registry.counter(
                    "rebuild_stripes_total", "stripes regenerated onto a spare"
                ).inc()
            if self.hists is not None:
                self.hists.record("rebuild", self.sim.now - stripe_started)
            if self.tracer is not None:
                self.tracer.complete(
                    "rebuild_stripe", start_s=stripe_started,
                    duration_s=self.sim.now - stripe_started,
                    track="rebuild", category="rebuild", stripe=stripe,
                )

        # Install the spare as the new member.
        array.disks[disk_index] = spare
        array.drivers[disk_index] = spare_driver
        if array.functional is not None:
            self._rebuild_functional(disk_index)
        array.leave_degraded(disk_index)
        if array.marks.count:
            # Parity debt accrued before/during the failure: now that the
            # array is whole again, let the scrubber drain it.
            array.request_scrub(force=True)
        self.stats.finished_at = self.sim.now
        if self.tracer is not None:
            self.tracer.complete(
                "rebuild", start_s=self.stats.started_at,
                duration_s=self.stats.duration_s,
                track="rebuild", category="rebuild",
                disk=disk_index, stripes=self.stats.stripes_rebuilt,
            )
        done.succeed(self.stats)

    def _rebuild_functional(self, disk_index: int) -> None:
        """Regenerate the replaced disk's bytes in the functional twin.

        Clean rows reconstruct the lost unit exactly through parity —
        sub-unit aware, so a partially dirty stripe still recovers its
        clean slices; rows under dirty marks lost that unit for good and
        come back zero-filled, with parity recomputed so the twin stays
        internally consistent for later failures.
        """
        functional = self.array.functional
        assert functional is not None
        layout = functional.layout
        unit_sectors = layout.stripe_unit_sectors

        # Phase 1: reconstruct what parity can express, before replacing.
        recovered: dict[int, object] = {}  # disk_lba -> unit contents
        needs_parity_rebuild: list[int] = []
        for stripe in range(layout.nstripes):
            parity = layout.parity_unit(stripe)
            if parity.disk == disk_index:
                needs_parity_rebuild.append(stripe)  # only parity was lost
                continue
            if functional.dirty_sub_units(stripe):
                needs_parity_rebuild.append(stripe)  # dirty slices zero-fill
            recovered[stripe * unit_sectors] = functional.reconstruct_data_unit(
                stripe, disk_index
            )

        # Phase 2: install the fresh disk and write everything back.
        functional.store.replace(disk_index)
        for disk_lba, data in recovered.items():
            functional.store.write(disk_index, disk_lba, data)
        for stripe in needs_parity_rebuild:
            functional.scrub_stripe(stripe)