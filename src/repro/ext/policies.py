"""Policy refinements from §5 of the paper.

* :class:`RegionPolicy` — stripe-aligned regions of the array carry
  permanent redundancy flags, "from full RAID 5 redundancy-preservation
  to zero-redundancy RAID 0-style storage", so data can be mapped to the
  guarantee it needs.
* :class:`AdaptiveStartPolicy` — the conservative complement of MTTDL_x:
  start in RAID 5 mode and switch into AFRAID behaviour only once the
  observed I/O pattern shows enough idle time to keep the redundancy
  deficit bounded.
* :class:`PredictiveScrubPolicy` — gates the scrubber on the
  [Golding95] idle-period predictor: only start a rebuild when the
  current idle period is predicted to outlast it (the paper's baseline
  deliberately ignores the predictor; this is the "smarter" variant).
"""

from __future__ import annotations

import bisect
import enum
import typing

from repro.idle import MovingAverageIdlePredictor
from repro.policy import ParityPolicy, WriteMode


class RegionRedundancy(enum.Enum):
    """The redundancy guarantee of one region."""

    RAID5 = "raid5"  # parity kept fresh in the write path
    AFRAID = "afraid"  # parity deferred to idle time
    RAID0 = "raid0"  # parity never maintained


class RegionMap:
    """Stripe-aligned regions with per-region redundancy flags.

    Built from ``[(first_stripe, redundancy), ...]`` boundaries; each
    region runs to the next boundary.  Stripe 0 must be covered.
    """

    def __init__(self, boundaries: list[tuple[int, RegionRedundancy]]) -> None:
        if not boundaries:
            raise ValueError("need at least one region")
        ordered = sorted(boundaries, key=lambda boundary: boundary[0])
        if ordered[0][0] != 0:
            raise ValueError("the first region must start at stripe 0")
        starts = [start for start, _redundancy in ordered]
        if len(set(starts)) != len(starts):
            raise ValueError("duplicate region boundaries")
        self._starts = starts
        self._redundancies = [redundancy for _start, redundancy in ordered]

    def redundancy_of(self, stripe: int) -> RegionRedundancy:
        """The flag covering ``stripe``."""
        if stripe < 0:
            raise ValueError(f"stripe must be >= 0, got {stripe}")
        index = bisect.bisect_right(self._starts, stripe) - 1
        return self._redundancies[index]

    @classmethod
    def uniform(cls, redundancy: RegionRedundancy) -> "RegionMap":
        return cls([(0, redundancy)])


class RegionPolicy(ParityPolicy):
    """Per-region write modes and scrub eligibility.

    A write touching stripes with mixed flags takes the *strictest* mode
    (RAID 5 wins), matching how a guarantee must hold for all data it
    covers.  RAID 0-flagged stripes are marked on write like any AFRAID
    stripe but are never scheduled for rebuild.
    """

    name = "regions"

    def __init__(self, region_map: RegionMap) -> None:
        super().__init__()
        self.region_map = region_map

    def write_mode(self, stripes: typing.Sequence[int] = ()) -> WriteMode:
        for stripe in stripes:
            if self.region_map.redundancy_of(stripe) is RegionRedundancy.RAID5:
                return WriteMode.RAID5
        return WriteMode.AFRAID

    def should_scrub_stripe(self, stripe: int) -> bool:
        return self.region_map.redundancy_of(stripe) is not RegionRedundancy.RAID0


class AdaptiveStartPolicy(ParityPolicy):
    """Begin conservatively in RAID 5; switch to AFRAID once the workload
    demonstrably has the idle time to pay the parity debt.

    The switch condition is an observed idle fraction above
    ``idle_fraction_needed`` after at least ``observation_s`` of traffic;
    the policy keeps re-evaluating, so a workload that turns busy drops
    back to RAID 5 (§5 notes this is the conservative mirror image of
    MTTDL_x, which starts permissive and tightens).
    """

    name = "adaptive"

    def __init__(self, idle_fraction_needed: float = 0.5, observation_s: float = 2.0) -> None:
        super().__init__()
        if not 0.0 < idle_fraction_needed < 1.0:
            raise ValueError("idle_fraction_needed must be in (0, 1)")
        if observation_s < 0:
            raise ValueError("observation_s must be >= 0")
        self.idle_fraction_needed = idle_fraction_needed
        self.observation_s = observation_s
        self._started_at: float | None = None

    def write_mode(self, stripes: typing.Sequence[int] = ()) -> WriteMode:
        assert self.array is not None
        if self._started_at is None:
            self._started_at = self.array.now
        observed_for = self.array.now - self._started_at
        if observed_for < self.observation_s:
            return WriteMode.RAID5
        if self.array.idle_fraction_so_far() >= self.idle_fraction_needed:
            return WriteMode.AFRAID
        return WriteMode.RAID5

    def describe(self) -> str:
        return f"adaptive({self.idle_fraction_needed:g})"


class PredictiveScrubPolicy(ParityPolicy):
    """Scrub only when the predicted idle period can fit a rebuild.

    Wraps the baseline AFRAID behaviour with a [Golding95]-style gate: a
    stripe rebuild costs roughly one round of data-unit reads plus a
    parity write (``stripe_scrub_estimate_s``); if the EWMA predictor
    expects the current idle period to be shorter, the scrubber holds
    off rather than colliding with the next burst.
    """

    name = "predictive"

    def __init__(self, stripe_scrub_estimate_s: float = 0.040, alpha: float = 0.3) -> None:
        super().__init__()
        if stripe_scrub_estimate_s <= 0:
            raise ValueError("scrub estimate must be positive")
        self.stripe_scrub_estimate_s = stripe_scrub_estimate_s
        self.alpha = alpha
        self._predictor: MovingAverageIdlePredictor | None = None

    def attach(self, array) -> None:
        super().attach(array)
        detector = getattr(array, "detector", None)
        if detector is None:
            raise TypeError("PredictiveScrubPolicy needs an array with an idle detector")
        self._predictor = MovingAverageIdlePredictor(
            detector, alpha=self.alpha, initial_s=self.stripe_scrub_estimate_s
        )

    def may_scrub_now(self) -> bool:
        assert self._predictor is not None
        return self._predictor.predict() >= self.stripe_scrub_estimate_s

    def describe(self) -> str:
        return f"predictive({self.stripe_scrub_estimate_s * 1e3:g}ms)"
