"""I/O schedulers and device drivers.

The paper's configuration (§4.1): the *host* device driver orders client
requests with C-LOOK over the array's logical address space, while the
*back-end* drivers inside the array feed each disk FCFS.  This package
provides both queue disciplines (plus SSTF and LOOK for comparison
experiments) and the :class:`~repro.sched.driver.DiskDriver` pump that
serialises commands onto one :class:`~repro.disk.MechanicalDisk`.
"""

from repro.sched.driver import DiskDriver
from repro.sched.queues import ClookScheduler, FcfsScheduler, IoScheduler, LookScheduler, SstfScheduler

__all__ = [
    "ClookScheduler",
    "DiskDriver",
    "FcfsScheduler",
    "IoScheduler",
    "LookScheduler",
    "SstfScheduler",
]
