"""Queue disciplines for I/O scheduling.

Each scheduler holds ``(item, position)`` pairs and pops the next item given
the current head position.  Position is an abstract non-negative integer —
a logical block address at the host level, a cylinder or LBA at the disk
level.  Ties (equal positions) are always broken FIFO so behaviour is
deterministic.
"""

from __future__ import annotations

import abc
import bisect
import collections
import typing

T = typing.TypeVar("T")


class IoScheduler(abc.ABC, typing.Generic[T]):
    """Interface shared by all queue disciplines."""

    #: Whether :meth:`pop` actually consults ``head_position``.  Callers
    #: that must *compute* the head position (e.g. the device driver
    #: mapping its disk's cylinder back to an LBA) can skip that work for
    #: order-insensitive disciplines like FCFS.
    uses_position: bool = True

    @abc.abstractmethod
    def push(self, item: T, position: int) -> None:
        """Enqueue ``item`` keyed at ``position``."""

    @abc.abstractmethod
    def pop(self, head_position: int) -> tuple[T, int]:
        """Dequeue and return ``(item, position)`` given the head position."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of queued items."""

    def __bool__(self) -> bool:
        return len(self) > 0


class FcfsScheduler(IoScheduler[T]):
    """First-come first-served: arrival order, positions ignored.

    This is the paper's back-end discipline inside the array.
    """

    uses_position = False

    def __init__(self) -> None:
        self._queue: collections.deque[tuple[T, int]] = collections.deque()

    def push(self, item: T, position: int) -> None:
        self._queue.append((item, position))

    def pop(self, head_position: int) -> tuple[T, int]:
        if not self._queue:
            raise IndexError("pop from empty scheduler")
        return self._queue.popleft()

    def push_front(self, item: T, position: int) -> None:
        """Return ``item`` to the head of the queue (undo a pop).

        Used by the device driver to hand back a prefetched batch when a
        mid-run fault invalidates its precomputed timings: items pushed
        front in reverse pop order restore the exact FCFS order.
        """
        self._queue.appendleft((item, position))

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        # Checked once per pumped command; skip the __len__ indirection.
        return bool(self._queue)


class _SortedQueue(typing.Generic[T]):
    """A position-sorted queue with FIFO tie-breaking, built on bisect."""

    def __init__(self) -> None:
        self._entries: list[tuple[int, int, T]] = []  # (position, seq, item)
        self._sequence = 0

    def insert(self, item: T, position: int) -> None:
        self._sequence += 1
        bisect.insort(self._entries, (position, self._sequence, item))

    def pop_index(self, index: int) -> tuple[T, int]:
        position, _seq, item = self._entries.pop(index)
        return item, position

    def first_at_or_after(self, position: int) -> int | None:
        """Index of the first entry with position >= ``position``, else None."""
        index = bisect.bisect_left(self._entries, (position, 0, None))  # type: ignore[arg-type]
        return index if index < len(self._entries) else None

    def last_at_or_before(self, position: int) -> int | None:
        """Index of the last entry with position <= ``position``, else None."""
        index = bisect.bisect_right(self._entries, (position, float("inf"), None)) - 1  # type: ignore[arg-type]
        return index if index >= 0 else None

    def positions(self) -> list[int]:
        return [position for position, _seq, _item in self._entries]

    def items(self) -> list[T]:
        """Queued items in position order (does not dequeue)."""
        return [item for _position, _seq, item in self._entries]

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)


class ClookScheduler(IoScheduler[T]):
    """Circular LOOK: sweep upward; on running out, jump to the lowest.

    This is the paper's host-driver discipline [Worthington94a].
    """

    def __init__(self) -> None:
        self._sorted: _SortedQueue[T] = _SortedQueue()

    def push(self, item: T, position: int) -> None:
        self._sorted.insert(item, position)

    def pop(self, head_position: int) -> tuple[T, int]:
        if not self._sorted:
            raise IndexError("pop from empty scheduler")
        index = self._sorted.first_at_or_after(head_position)
        if index is None:
            index = 0  # wrap around to the lowest position
        return self._sorted.pop_index(index)

    def pending(self) -> list[T]:
        """Queued items without dequeuing them, in position order.

        The array's batch planner (:mod:`repro.array.batchplan`) reads
        the backlog through this to plan several requests at once.
        """
        return self._sorted.items()

    def __len__(self) -> int:
        return len(self._sorted)

    def __bool__(self) -> bool:
        # Truth-tested several times per pump step; skip the
        # __len__ → _SortedQueue.__len__ → list.__len__ chain.
        return bool(self._sorted._entries)


class SstfScheduler(IoScheduler[T]):
    """Shortest seek time first: pop the entry nearest the head."""

    def __init__(self) -> None:
        self._sorted: _SortedQueue[T] = _SortedQueue()

    def push(self, item: T, position: int) -> None:
        self._sorted.insert(item, position)

    def pop(self, head_position: int) -> tuple[T, int]:
        if not self._sorted:
            raise IndexError("pop from empty scheduler")
        above = self._sorted.first_at_or_after(head_position)
        below = self._sorted.last_at_or_before(head_position)
        if above is None:
            assert below is not None
            return self._sorted.pop_index(below)
        if below is None:
            return self._sorted.pop_index(above)
        positions = self._sorted.positions()
        if positions[above] - head_position < head_position - positions[below]:
            return self._sorted.pop_index(above)
        return self._sorted.pop_index(below)

    def __len__(self) -> int:
        return len(self._sorted)


class LookScheduler(IoScheduler[T]):
    """Elevator (LOOK): sweep up, then down, reversing at the extremes."""

    def __init__(self) -> None:
        self._sorted: _SortedQueue[T] = _SortedQueue()
        self._ascending = True

    def push(self, item: T, position: int) -> None:
        self._sorted.insert(item, position)

    def pop(self, head_position: int) -> tuple[T, int]:
        if not self._sorted:
            raise IndexError("pop from empty scheduler")
        if self._ascending:
            index = self._sorted.first_at_or_after(head_position)
            if index is None:
                self._ascending = False
                index = self._sorted.last_at_or_before(head_position)
        else:
            index = self._sorted.last_at_or_before(head_position)
            if index is None:
                self._ascending = True
                index = self._sorted.first_at_or_after(head_position)
        assert index is not None
        return self._sorted.pop_index(index)

    def __len__(self) -> int:
        return len(self._sorted)
