"""The back-end device driver: a queue pump in front of one disk.

The driver accepts :class:`~repro.disk.DiskIO` submissions at any time,
orders them with its queue discipline (FCFS in the paper's configuration),
and keeps the disk busy with one command at a time.  Completion events
carry the :class:`~repro.disk.ServiceBreakdown`; if the disk fails, queued
and in-flight commands fail with :class:`~repro.disk.DiskFailedError`.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.disk import DiskFailedError, DiskIO, LatentSectorError, MechanicalDisk
from repro.sched.queues import FcfsScheduler, IoScheduler
from repro.sim import Event, Simulator
from repro.sim.events import _PENDING

if typing.TYPE_CHECKING:  # pragma: no cover - optional observability
    from repro.obs import Tracer


@dataclasses.dataclass
class DriverStats:
    """Cumulative per-driver counters."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    queue_time: float = 0.0  # time spent waiting in the driver queue

    @property
    def mean_queue_time(self) -> float:
        done = self.completed + self.failed
        return self.queue_time / done if done else 0.0


class DiskDriver:
    """Serialises :class:`DiskIO` commands onto one mechanical disk."""

    def __init__(
        self,
        sim: Simulator,
        disk: MechanicalDisk,
        scheduler: IoScheduler | None = None,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.disk = disk
        self.scheduler: IoScheduler = scheduler if scheduler is not None else FcfsScheduler()
        self.name = name or f"driver({disk.name})"
        self._ev_done = f"{self.name}.done"
        self._ev_pump = f"{self.name}.pump"
        self.stats = DriverStats()
        self._pumping = False
        #: Optional span-per-command tracer; ``None`` (the default) keeps
        #: the pump's disabled path to one attribute load per command.
        self.tracer: "Tracer | None" = None

    @property
    def queued(self) -> int:
        """Commands waiting in the driver queue (excludes the one in service)."""
        return len(self.scheduler)

    @property
    def busy(self) -> bool:
        """True while the pump is draining the queue or a command is in service."""
        return self._pumping

    def submit(self, io: DiskIO) -> Event:
        """Queue ``io``; the returned event fires at completion.

        The event's value is the :class:`~repro.disk.ServiceBreakdown`; it
        fails with :class:`DiskFailedError` if the disk dies first.
        """
        # Event() inlined: one completion per disk command, and the
        # constructor call was measurable at replay scale.
        sim = self.sim
        completion = Event.__new__(Event)
        completion.sim = sim
        completion.name = self._ev_done
        completion.callbacks = []
        completion.defused = False
        completion._value = _PENDING
        completion._exception = None
        completion._scheduled = False
        completion._handled = False
        self.stats.submitted += 1
        self.scheduler.push((io, completion, sim._now), io.lba)
        if not self._pumping:
            self._pumping = True
            sim.process(self._pump(), name=self._ev_pump)
        return completion

    def _pump(self):
        sim = self.sim
        disk = self.disk
        scheduler = self.scheduler
        stats = self.stats
        geometry = disk.geometry
        # FCFS (the paper's back end) ignores the head position; skip the
        # cylinder → LBA conversion per command unless the discipline
        # actually seeks by position.
        uses_position = scheduler.uses_position
        try:
            while scheduler:
                head = (
                    geometry.physical_to_lba(disk.current_cylinder, 0, 0)
                    if uses_position
                    else 0
                )
                (io, completion, submit_time), _position = scheduler.pop(head)
                stats.queue_time += sim._now - submit_time
                tracer = self.tracer
                issued = sim.now if tracer is not None else 0.0
                try:
                    # The disk triggers ``completion`` directly (no relay
                    # event): the pump waits on the same event it hands to
                    # the submitter.
                    yield disk.execute(io, completion)
                except (DiskFailedError, LatentSectorError):
                    # ``completion`` was already failed by the disk.  A
                    # latent sector error fails only this command — the
                    # mechanism made the full (timed) attempt and the
                    # drive keeps serving the queue.
                    stats.failed += 1
                    if tracer is not None:
                        tracer.instant(
                            "io_failed", track=self.name, category="disk",
                            lba=io.lba, nsectors=io.nsectors,
                        )
                else:
                    stats.completed += 1
                    if tracer is not None:
                        tracer.complete(
                            io.kind.value, start_s=issued,
                            duration_s=sim.now - issued,
                            track=self.name, category="disk",
                            lba=io.lba, nsectors=io.nsectors,
                        )
                    # With immediate reporting, completion fires before the
                    # media write finishes; wait out the mechanism before
                    # issuing the next command.
                    while disk._busy_until > sim._now:
                        yield sim.timeout(disk._busy_until - sim._now)
        finally:
            self._pumping = False
