"""The back-end device driver: a queue pump in front of one disk.

The driver accepts :class:`~repro.disk.DiskIO` submissions at any time,
orders them with its queue discipline (FCFS in the paper's configuration),
and keeps the disk busy with one command at a time.  Completion events
carry the :class:`~repro.disk.ServiceBreakdown`; if the disk fails, queued
and in-flight commands fail with :class:`~repro.disk.DiskFailedError`.
"""

from __future__ import annotations

import dataclasses
import typing
from collections import deque
from heapq import heappush as _heappush

from repro.disk import DiskFailedError, DiskIO, LatentSectorError, MechanicalDisk
from repro.disk.disk import IoKind, ServiceBreakdown
from repro.disk.vector import VECTOR_MIN, batch_service_parts
from repro.sched.queues import FcfsScheduler, IoScheduler
from repro.sim import Event, Simulator
from repro.sim.events import _PENDING

if typing.TYPE_CHECKING:  # pragma: no cover - optional observability
    from repro.obs import Tracer

# Enum member lookups are LOAD_ATTR chains; one module-level binding keeps
# the per-command issue path to a single fast local/global load.
_READ = IoKind.READ


@dataclasses.dataclass
class DriverStats:
    """Cumulative per-driver counters."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    queue_time: float = 0.0  # time spent waiting in the driver queue

    @property
    def mean_queue_time(self) -> float:
        done = self.completed + self.failed
        return self.queue_time / done if done else 0.0


class DiskDriver:
    """Serialises :class:`DiskIO` commands onto one mechanical disk."""

    def __init__(
        self,
        sim: Simulator,
        disk: MechanicalDisk,
        scheduler: IoScheduler | None = None,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.disk = disk
        self.scheduler: IoScheduler = scheduler if scheduler is not None else FcfsScheduler()
        self.name = name or f"driver({disk.name})"
        self._ev_done = f"{self.name}.done"
        self._ev_pump = f"{self.name}.pump"
        self.stats = DriverStats()
        self._pumping = False
        #: The pump callback, bound once: it is appended to every disk
        #: completion, and each ``self._step`` reference would allocate a
        #: fresh bound-method object.
        self._step_cb = self._step
        #: Optional span-per-command tracer; ``None`` (the default) keeps
        #: the pump's disabled path to one attribute load per command.
        self.tracer: "Tracer | None" = None
        #: Callback-pump state: the event the pump is parked on (an
        #: in-service completion or a media busy-wait timeout).
        self._wait: Event | None = None
        self._wait_is_completion = False
        #: Precomputed drain run: ``(io, completion, submit_time, parts)``
        #: entries popped from the scheduler whose service timings were
        #: computed in one vectorised pass (see repro.disk.vector).  Still
        #: logically queued — issued one per completion wake.
        self._batch: deque = deque()

    @property
    def queued(self) -> int:
        """Commands waiting in the driver queue (excludes the one in service).

        Counts the precomputed batch too: those commands are still queued
        as far as any observer (telemetry samplers) is concerned.
        """
        return len(self.scheduler) + len(self._batch)

    @property
    def busy(self) -> bool:
        """True while the pump is draining the queue or a command is in service."""
        return self._pumping

    def submit(self, io: DiskIO) -> Event:
        """Queue ``io``; the returned event fires at completion.

        The event's value is the :class:`~repro.disk.ServiceBreakdown`; it
        fails with :class:`DiskFailedError` if the disk dies first.
        """
        # Event() inlined: one completion per disk command, and the
        # constructor call was measurable at replay scale.
        sim = self.sim
        completion = Event.__new__(Event)
        completion.sim = sim
        completion.name = self._ev_done
        completion.callbacks = []
        completion.defused = False
        completion._value = _PENDING
        completion._exception = None
        completion._scheduled = False
        completion._handled = False
        self.stats.submitted += 1
        disk = self.disk
        if (
            not self._pumping
            and self.tracer is None
            and not self._batch
            and type(self.scheduler) is FcfsScheduler
            and not self.scheduler._queue
            and not disk.immediate_report
            and disk.readahead_segments == 0
            and not disk._failed
            and not disk._latent_errors
            and disk._busy_until <= sim._now
        ):
            # Idle fused lane: the drain this submit would start takes the
            # scalar fast lane in _step and issues this very command — the
            # guards here pin down that exact path — so skip the scheduler
            # round-trip and the drain preamble and issue directly
            # (_issue_precomputed inlined; queue_time += 0.0 elided: the
            # accumulator is never -0.0, so the sum is bit-identical).
            # Same floats, same events, same bookkeeping order.
            self._pumping = True
            now = sim._now
            seek, rotational_latency, transfer, cylinder, head = disk._service_parts(
                io.lba, io.nsectors, now
            )
            overhead = disk.controller_overhead_s
            total = overhead + seek + rotational_latency + transfer
            disk._current_cylinder = cylinder
            disk._current_head = head
            when = now + total
            disk._busy_until = when
            dstats = disk.stats
            dstats.busy_time += total
            dstats.seek_time += seek
            dstats.rotational_latency += rotational_latency
            dstats.transfer_time += transfer
            if io.kind is _READ:
                dstats.reads += 1
                dstats.sectors_read += io.nsectors
            else:
                dstats.writes += 1
                dstats.sectors_written += io.nsectors
            completion._value = ServiceBreakdown(
                overhead, seek, rotational_latency, transfer
            )
            completion._scheduled = True
            sim._sequence += 1
            if when > now:
                _heappush(sim._queue, (when, sim._sequence, completion))
            else:
                sim._bucket.append(completion)
            disk._inflight = completion
            completion.callbacks.append(self._step_cb)
            self._wait = completion
            self._wait_is_completion = True
            return completion
        self.scheduler.push((io, completion, sim._now), io.lba)
        if not self._pumping:
            self._pumping = True
            if self.tracer is not None:
                sim.process(self._pump(), name=self._ev_pump)
            else:
                # Callback pump (the default): the drain runs as plain
                # callbacks instead of a generator process — no frame
                # suspension per command, and the first drain step runs
                # synchronously (no bootstrap kick event: the drain's
                # first action either issues this very command or parks
                # on a busy-wait timeout, neither of which interleaves
                # with other same-instant events).
                self._step(None)
        return completion

    def _step(self, event: Event) -> None:
        """One callback-pump step: settle what we were parked on, then drain.

        Mirrors :meth:`_pump` hop for hop — each ``yield`` there is a
        ``callbacks.append(self._step); return`` here, at the same cascade
        position, so the event pattern (and therefore every (time, seq)
        tie-break) is identical.
        """
        sim = self.sim
        disk = self.disk
        stats = self.stats
        wait = self._wait
        if wait is not None:
            if event is not wait:
                return  # stale wakeup (defensive; should not occur)
            self._wait = None
            if self._wait_is_completion:
                if event._exception is None:
                    stats.completed += 1
                else:
                    # The disk already failed the completion (whole-disk
                    # or latent-sector error); the command is accounted
                    # and the drive keeps serving the queue.
                    stats.failed += 1
        # With immediate reporting the completion fires at the buffer
        # ack; wait out the mechanism before issuing the next command.
        if disk._busy_until > sim._now:
            timeout = sim.timeout(disk._busy_until - sim._now)
            timeout.callbacks.append(self._step_cb)
            self._wait = timeout
            self._wait_is_completion = False
            return
        scheduler = self.scheduler
        batch = self._batch
        if not scheduler and not batch:
            # Nothing queued (the common completion wake): stop pumping.
            self._pumping = False
            return
        if batch:
            if disk._failed or disk._latent_errors:
                # A mid-run fault invalidates the precomputed chain (the
                # timings assumed a healthy disk).  Hand the tail back to
                # the queue front — reverse pop order restores FCFS — and
                # drain through the exact scalar path below.
                while batch:
                    io, completion, submit_time, _part = batch.pop()
                    scheduler.push_front((io, completion, submit_time), io.lba)
            else:
                self._issue_precomputed(*batch.popleft())
                return
        elif (
            type(scheduler) is FcfsScheduler
            and not disk.immediate_report
            and disk.readahead_segments == 0
            and not disk._failed
            and not disk._latent_errors
        ):
            # Fast lanes: eligibility pins down the execute() success
            # path exactly — no drive cache (readahead off), report at
            # media completion (immediate_report off), healthy disk — so
            # service timings are a pure function of the state right now
            # and the generic drain's per-command branches are dead.
            queue = scheduler._queue
            depth = len(queue)
            if depth >= VECTOR_MIN:
                # Vectorised: every queued command will be issued back to
                # back under FCFS; precompute the whole run's timings in
                # one pass (repro.disk.vector) and issue from the batch
                # one completion wake at a time.
                entries = [queue.popleft()[0] for _ in range(depth)]
                parts = batch_service_parts(disk, [entry[0] for entry in entries], sim._now)
                batch.extend(
                    (entry[0], entry[1], entry[2], part)
                    for entry, part in zip(entries, parts)
                )
                self._issue_precomputed(*batch.popleft())
                return
            # Scalar fused: shallow queues (light traces rarely go deeper
            # than 4) skip the array-op and batch bookkeeping — one exact
            # _service_parts call, issued directly (_issue_precomputed
            # inlined; same addition order as execute()).
            io, completion, submit_time = queue.popleft()[0]
            now = sim._now
            seek, rotational_latency, transfer, cylinder, head = disk._service_parts(
                io.lba, io.nsectors, now
            )
            overhead = disk.controller_overhead_s
            total = overhead + seek + rotational_latency + transfer
            stats.queue_time += now - submit_time
            disk._current_cylinder = cylinder
            disk._current_head = head
            when = now + total
            disk._busy_until = when
            dstats = disk.stats
            dstats.busy_time += total
            dstats.seek_time += seek
            dstats.rotational_latency += rotational_latency
            dstats.transfer_time += transfer
            if io.kind is _READ:
                dstats.reads += 1
                dstats.sectors_read += io.nsectors
            else:
                dstats.writes += 1
                dstats.sectors_written += io.nsectors
            completion._value = ServiceBreakdown(
                overhead, seek, rotational_latency, transfer
            )
            completion._scheduled = True
            sim._sequence += 1
            if when > now:
                _heappush(sim._queue, (when, sim._sequence, completion))
            else:
                sim._bucket.append(completion)
            disk._inflight = completion
            completion.callbacks.append(self._step_cb)
            self._wait = completion
            self._wait_is_completion = True
            return
        geometry = disk.geometry
        uses_position = scheduler.uses_position
        while scheduler:
            head = (
                geometry.physical_to_lba(disk.current_cylinder, 0, 0)
                if uses_position
                else 0
            )
            (io, completion, submit_time), _position = scheduler.pop(head)
            stats.queue_time += sim._now - submit_time
            try:
                disk.execute(io, completion)
            except (DiskFailedError, LatentSectorError):
                stats.failed += 1
                continue
            except BaseException:
                self._pumping = False
                raise
            completion.callbacks.append(self._step_cb)
            self._wait = completion
            self._wait_is_completion = True
            return
        self._pumping = False

    def _issue_precomputed(self, io, completion, submit_time, part) -> None:
        """Issue one batch command, replaying ``MechanicalDisk.execute``.

        ``part`` is the precomputed ``(seek, rotational_latency, transfer,
        cylinder, head, total)`` from :func:`batch_service_parts`.  Every
        state/stats mutation below mirrors the execute() success path in
        the same order; the batch eligibility guard (healthy disk, no
        read-ahead, no immediate reporting) guarantees execute() would
        have taken exactly this path with exactly these floats.
        """
        sim = self.sim
        disk = self.disk
        now = sim._now
        self.stats.queue_time += now - submit_time
        seek, rotational_latency, transfer, cylinder, head, total = part
        disk._current_cylinder = cylinder
        disk._current_head = head
        when = now + total
        disk._busy_until = when
        stats = disk.stats
        stats.busy_time += total
        stats.seek_time += seek
        stats.rotational_latency += rotational_latency
        stats.transfer_time += transfer
        if io.kind is _READ:
            stats.reads += 1
            stats.sectors_read += io.nsectors
        else:
            stats.writes += 1
            stats.sectors_written += io.nsectors
        # _schedule_completion inlined; report_after == total for reads
        # and for writes without immediate reporting (the guard).
        completion._value = ServiceBreakdown(
            disk.controller_overhead_s, seek, rotational_latency, transfer
        )
        completion._scheduled = True
        sim._sequence += 1
        if when > now:
            _heappush(sim._queue, (when, sim._sequence, completion))
        else:
            sim._bucket.append(completion)
        disk._inflight = completion
        completion.callbacks.append(self._step_cb)
        self._wait = completion
        self._wait_is_completion = True

    def _pump(self):
        sim = self.sim
        disk = self.disk
        scheduler = self.scheduler
        stats = self.stats
        geometry = disk.geometry
        # FCFS (the paper's back end) ignores the head position; skip the
        # cylinder → LBA conversion per command unless the discipline
        # actually seeks by position.
        uses_position = scheduler.uses_position
        try:
            while scheduler:
                head = (
                    geometry.physical_to_lba(disk.current_cylinder, 0, 0)
                    if uses_position
                    else 0
                )
                (io, completion, submit_time), _position = scheduler.pop(head)
                stats.queue_time += sim._now - submit_time
                tracer = self.tracer
                issued = sim.now if tracer is not None else 0.0
                try:
                    # The disk triggers ``completion`` directly (no relay
                    # event): the pump waits on the same event it hands to
                    # the submitter.
                    yield disk.execute(io, completion)
                except (DiskFailedError, LatentSectorError):
                    # ``completion`` was already failed by the disk.  A
                    # latent sector error fails only this command — the
                    # mechanism made the full (timed) attempt and the
                    # drive keeps serving the queue.
                    stats.failed += 1
                    if tracer is not None:
                        tracer.instant(
                            "io_failed", track=self.name, category="disk",
                            lba=io.lba, nsectors=io.nsectors,
                        )
                else:
                    stats.completed += 1
                    if tracer is not None:
                        tracer.complete(
                            io.kind.value, start_s=issued,
                            duration_s=sim.now - issued,
                            track=self.name, category="disk",
                            lba=io.lba, nsectors=io.nsectors,
                        )
                    # With immediate reporting, completion fires before the
                    # media write finishes; wait out the mechanism before
                    # issuing the next command.
                    while disk._busy_until > sim._now:
                        yield sim.timeout(disk._busy_until - sim._now)
        finally:
            self._pumping = False
