"""Parity-declustered RAID 5 via a complete block design.

A declustered layout spreads each stripe over only ``k`` of the ``n``
member disks, cycling through every ``k``-subset of the disks (the
*complete block design* of Holland & Gibson).  With ``P = C(n, k)``
stripes per period, each disk appears in ``r = C(n-1, k-1)`` of them, so
after a disk failure a rebuild reads only the fraction ``r / P = k / n``
of every surviving disk — rebuild load declusters across the whole
array instead of hammering the ``k - 1`` survivors of one stripe group.

Stripe ``s`` uses the ``(s % P)``-th ``k``-subset in lexicographic
order; parity rotates within the subset (``s % k``) so no member
becomes a parity hotspot.  Unlike :class:`~repro.layout.raid5.Raid5Layout`,
per-disk LBAs of one stripe differ: each disk packs only the stripes it
participates in, so the unit slot on a disk is its *ordinal* appearance
within the period, not the stripe number.
"""

from __future__ import annotations

import itertools
import math

from repro.layout.base import ExtentRun, StripeUnit, UnitKind, check_layout_args

#: Upper bound on stripes per period (``C(n, k)``); beyond this the
#: per-period tables stop being "small metadata".
_MAX_PERIOD = 65536


class DeclusteredRaid5Layout:
    """Maps array-logical sectors with parity declustered over ``k``-of-``n`` disks.

    Parameters
    ----------
    ndisks:
        Total member disks ``n``; must be >= 4.
    stripe_unit_sectors:
        Stripe unit ("depth") in sectors.
    disk_sectors:
        Usable sectors per member disk.
    stripe_width:
        Units per stripe ``k`` (data + parity), ``3 <= k < ndisks``.
        Defaults to ``ndisks - 1``, the gentlest declustering.
    """

    _EXTENT_CACHE_MAX = 8192
    _LOCATE_CACHE_MAX = 8192
    _STRIPE_CACHE_MAX = 4096

    mirrored = False
    has_parity = True

    def __init__(
        self,
        ndisks: int,
        stripe_unit_sectors: int,
        disk_sectors: int,
        stripe_width: int | None = None,
    ) -> None:
        check_layout_args(ndisks, stripe_unit_sectors, disk_sectors, min_disks=4)
        k = ndisks - 1 if stripe_width is None else stripe_width
        if not 3 <= k < ndisks:
            raise ValueError(
                f"stripe width must satisfy 3 <= k < ndisks, got k={k} for {ndisks} disks"
            )
        period = math.comb(ndisks, k)
        if period > _MAX_PERIOD:
            raise ValueError(
                f"block design period C({ndisks}, {k}) = {period} exceeds {_MAX_PERIOD}"
            )
        self.ndisks = ndisks
        self.stripe_width = k
        self.stripe_unit_sectors = stripe_unit_sectors
        self.disk_sectors = disk_sectors
        self.data_units_per_stripe = k - 1
        self.stripe_data_sectors = self.data_units_per_stripe * stripe_unit_sectors
        #: Stripes per block-design period and per-disk units per period.
        self.period = period
        self.units_per_disk_per_period = math.comb(ndisks - 1, k - 1)
        disk_units = disk_sectors // stripe_unit_sectors
        self.nstripes = (disk_units // self.units_per_disk_per_period) * period
        if self.nstripes == 0:
            raise ValueError(
                f"disk too small for one block-design period: need "
                f"{self.units_per_disk_per_period} units/disk, have {disk_units}"
            )
        self.total_data_sectors = self.nstripes * self.stripe_data_sectors
        # One lexicographic k-subset per period stripe, plus each disk's
        # ordinal appearance within the period (its unit slot) and the
        # inverse map (disk, ordinal) -> period stripe for logical_of.
        self._members_by_period_stripe = tuple(
            itertools.combinations(range(ndisks), k)
        )
        ordinals: list[dict[int, int]] = []
        seen = [0] * ndisks
        stripes_by_disk: list[list[int]] = [[] for _ in range(ndisks)]
        for index, members in enumerate(self._members_by_period_stripe):
            table = {}
            for disk in members:
                table[disk] = seen[disk]
                seen[disk] += 1
                stripes_by_disk[disk].append(index)
            ordinals.append(table)
        self._ordinal_by_period_stripe = tuple(ordinals)
        self._period_stripes_by_disk = tuple(tuple(rows) for rows in stripes_by_disk)
        self._extent_cache: dict[tuple[int, int], tuple[ExtentRun, ...]] = {}
        self._locate_cache: dict[int, StripeUnit] = {}
        self._parity_cache: dict[int, StripeUnit] = {}
        self._units_cache: dict[int, tuple[StripeUnit, ...]] = {}

    # -- pickling ---------------------------------------------------------------

    _TRANSIENT = ("_extent_cache", "_locate_cache", "_parity_cache", "_units_cache")

    def __getstate__(self):
        state = self.__dict__.copy()
        for key in self._TRANSIENT:
            state.pop(key, None)
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._extent_cache = {}
        self._locate_cache = {}
        self._parity_cache = {}
        self._units_cache = {}

    # -- per-stripe structure ---------------------------------------------------

    @property
    def disk_sectors_used(self) -> int:
        """Sectors of each member the striped region occupies.

        Uniform across members: the stripe count is always a whole number
        of block-design periods, and every disk holds exactly
        ``units_per_disk_per_period`` units per period.
        """
        return (
            (self.nstripes // self.period)
            * self.units_per_disk_per_period
            * self.stripe_unit_sectors
        )

    def stripe_members(self, stripe: int) -> tuple[int, ...]:
        """The disks participating in ``stripe``, ascending."""
        self._check_stripe(stripe)
        return self._members_by_period_stripe[stripe % self.period]

    def unit_lba(self, stripe: int, disk: int) -> int:
        """First sector of ``stripe``'s unit on member ``disk``."""
        self._check_stripe(stripe)
        period_stripe = stripe % self.period
        ordinal = self._ordinal_by_period_stripe[period_stripe].get(disk)
        if ordinal is None:
            raise ValueError(f"disk {disk} not a member of stripe {stripe}")
        slot = (stripe // self.period) * self.units_per_disk_per_period + ordinal
        return slot * self.stripe_unit_sectors

    def parity_disk(self, stripe: int) -> int:
        """Disk holding the parity unit of ``stripe``."""
        self._check_stripe(stripe)
        members = self._members_by_period_stripe[stripe % self.period]
        return members[stripe % self.stripe_width]

    def parity_unit(self, stripe: int) -> StripeUnit:
        """Placement of the parity unit of ``stripe``."""
        cache = self._parity_cache
        unit = cache.get(stripe)
        if unit is not None:
            return unit
        disk = self.parity_disk(stripe)
        unit = StripeUnit(
            stripe=stripe,
            kind=UnitKind.PARITY,
            unit_index=0,
            disk=disk,
            disk_lba=self.unit_lba(stripe, disk),
        )
        if len(cache) >= self._STRIPE_CACHE_MAX:
            del cache[next(iter(cache))]
        cache[stripe] = unit
        return unit

    def data_disk(self, stripe: int, unit_index: int) -> int:
        """Disk holding data unit ``unit_index`` of ``stripe``."""
        if not 0 <= unit_index < self.data_units_per_stripe:
            raise ValueError(f"unit_index {unit_index} out of range")
        self._check_stripe(stripe)
        members = self._members_by_period_stripe[stripe % self.period]
        parity_pos = stripe % self.stripe_width
        return members[(parity_pos + 1 + unit_index) % self.stripe_width]

    def data_units(self, stripe: int) -> tuple[StripeUnit, ...]:
        """All data units of ``stripe``, in logical order."""
        cache = self._units_cache
        units = cache.get(stripe)
        if units is not None:
            return units
        self._check_stripe(stripe)
        members = self._members_by_period_stripe[stripe % self.period]
        parity_pos = stripe % self.stripe_width
        built: list[StripeUnit] = []
        for index in range(self.data_units_per_stripe):
            disk = members[(parity_pos + 1 + index) % self.stripe_width]
            built.append(
                StripeUnit(
                    stripe=stripe,
                    kind=UnitKind.DATA,
                    unit_index=index,
                    disk=disk,
                    disk_lba=self.unit_lba(stripe, disk),
                )
            )
        units = tuple(built)
        if len(cache) >= self._STRIPE_CACHE_MAX:
            del cache[next(iter(cache))]
        cache[stripe] = units
        return units

    # -- logical address mapping ------------------------------------------------

    def stripe_of(self, logical_sector: int) -> int:
        """The stripe containing ``logical_sector``."""
        self._check_logical(logical_sector)
        return logical_sector // self.stripe_data_sectors

    def locate(self, logical_sector: int) -> StripeUnit:
        """The stripe unit containing ``logical_sector``."""
        cache = self._locate_cache
        unit = cache.get(logical_sector)
        if unit is not None:
            return unit
        self._check_logical(logical_sector)
        stripe, within = divmod(logical_sector, self.stripe_data_sectors)
        unit_index = within // self.stripe_unit_sectors
        disk = self.data_disk(stripe, unit_index)
        unit = StripeUnit(
            stripe=stripe,
            kind=UnitKind.DATA,
            unit_index=unit_index,
            disk=disk,
            disk_lba=self.unit_lba(stripe, disk),
        )
        if len(cache) >= self._LOCATE_CACHE_MAX:
            del cache[next(iter(cache))]
        cache[logical_sector] = unit
        return unit

    def map_extent(self, logical_sector: int, nsectors: int) -> tuple[ExtentRun, ...]:
        """Split a logical extent into per-disk runs (stripe-unit bounded)."""
        cache = self._extent_cache
        key = (logical_sector, nsectors)
        cached = cache.get(key)
        if cached is not None:
            return cached
        if nsectors < 1:
            raise ValueError(f"nsectors must be >= 1, got {nsectors}")
        self._check_logical(logical_sector)
        if logical_sector + nsectors > self.total_data_sectors:
            raise ValueError("extent extends past end of array")
        stripe_data_sectors = self.stripe_data_sectors
        unit_sectors = self.stripe_unit_sectors
        runs: list[ExtentRun] = []
        position = logical_sector
        remaining = nsectors
        while remaining > 0:
            stripe, within = divmod(position, stripe_data_sectors)
            unit_index, unit_offset = divmod(within, unit_sectors)
            run = unit_sectors - unit_offset
            if run > remaining:
                run = remaining
            disk = self.data_disk(stripe, unit_index)
            runs.append(
                ExtentRun(
                    stripe=stripe,
                    unit_index=unit_index,
                    disk=disk,
                    disk_lba=self.unit_lba(stripe, disk) + unit_offset,
                    nsectors=run,
                    logical_sector=position,
                )
            )
            position += run
            remaining -= run
        frozen = tuple(runs)
        if len(cache) >= self._EXTENT_CACHE_MAX:
            del cache[next(iter(cache))]
        cache[key] = frozen
        return frozen

    def stripes_touched(self, logical_sector: int, nsectors: int) -> range:
        """The stripes a logical extent intersects."""
        if nsectors < 1:
            raise ValueError(f"nsectors must be >= 1, got {nsectors}")
        first = self.stripe_of(logical_sector)
        last = self.stripe_of(logical_sector + nsectors - 1)
        return range(first, last + 1)

    def logical_of(self, disk: int, disk_lba: int) -> StripeUnit:
        """Inverse map: what does sector ``disk_lba`` of ``disk`` hold?"""
        if not 0 <= disk < self.ndisks:
            raise ValueError(f"disk {disk} out of range")
        slot = disk_lba // self.stripe_unit_sectors
        repetition, ordinal = divmod(slot, self.units_per_disk_per_period)
        stripe = repetition * self.period + self._period_stripes_by_disk[disk][ordinal]
        if not 0 <= stripe < self.nstripes:
            raise ValueError(f"disk_lba {disk_lba} outside striped region")
        if disk == self.parity_disk(stripe):
            return self.parity_unit(stripe)
        members = self._members_by_period_stripe[stripe % self.period]
        parity_pos = stripe % self.stripe_width
        unit_index = (members.index(disk) - parity_pos - 1) % self.stripe_width
        return StripeUnit(
            stripe=stripe,
            kind=UnitKind.DATA,
            unit_index=unit_index,
            disk=disk,
            disk_lba=slot * self.stripe_unit_sectors,
        )

    def logical_sector_of_unit(self, stripe: int, unit_index: int) -> int:
        """First logical sector stored in data unit ``unit_index`` of ``stripe``."""
        self._check_stripe(stripe)
        return stripe * self.stripe_data_sectors + unit_index * self.stripe_unit_sectors

    # -- helpers ----------------------------------------------------------------

    def _check_stripe(self, stripe: int) -> None:
        if not 0 <= stripe < self.nstripes:
            raise ValueError(f"stripe {stripe} out of range [0, {self.nstripes})")

    def _check_logical(self, logical_sector: int) -> None:
        if not 0 <= logical_sector < self.total_data_sectors:
            raise ValueError(
                f"logical sector {logical_sector} out of range [0, {self.total_data_sectors})"
            )

    def __repr__(self) -> str:
        return (
            f"<DeclusteredRaid5Layout {self.ndisks} disks, k={self.stripe_width}, "
            f"unit={self.stripe_unit_sectors} sectors, {self.nstripes} stripes>"
        )
