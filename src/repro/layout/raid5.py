"""Left-symmetric RAID 5 layout.

In the left-symmetric organisation the parity unit rotates one disk to the
*left* each stripe, and data units start just right of parity and wrap:

    disk:      0    1    2    3    4
    stripe 0  D0   D1   D2   D3   P
    stripe 1  D1   D2   D3   P    D0
    stripe 2  D2   D3   P    D0   D1
    ...

This places consecutive data units of consecutive stripes on consecutive
disks, so large sequential reads hit all spindles evenly — the reason it is
the canonical RAID 5 layout and the one the paper uses.
"""

from __future__ import annotations


from repro.layout.base import ExtentRun, StripeUnit, UnitKind, check_layout_args


class Raid5Layout:
    """Maps array-logical sectors to (disk, disk_lba) with rotating parity.

    Parameters
    ----------
    ndisks:
        Total member disks, N+1.  The paper's arrays are 5 disks wide.
    stripe_unit_sectors:
        Stripe unit ("depth") in sectors — 16 for the paper's 8 KB units.
    disk_sectors:
        Usable sectors per member disk; one stripe unit per disk per stripe.
    """

    #: Bounds for the per-layout mapping caches.  Extent/locate keys follow
    #: the client address stream (bounded by the trace working set); the
    #: per-stripe caches follow the stripes in flight.  Eviction is FIFO —
    #: the working sets fit comfortably, so hit-promotion would be pure
    #: overhead on the hot path.
    _EXTENT_CACHE_MAX = 8192
    _LOCATE_CACHE_MAX = 8192
    _STRIPE_CACHE_MAX = 4096

    def __init__(self, ndisks: int, stripe_unit_sectors: int, disk_sectors: int) -> None:
        check_layout_args(ndisks, stripe_unit_sectors, disk_sectors, min_disks=3)
        self.ndisks = ndisks
        self.stripe_unit_sectors = stripe_unit_sectors
        self.disk_sectors = disk_sectors
        self.data_units_per_stripe = ndisks - 1
        self.stripe_data_sectors = self.data_units_per_stripe * stripe_unit_sectors
        self.nstripes = disk_sectors // stripe_unit_sectors
        self.total_data_sectors = self.nstripes * self.stripe_data_sectors
        # The rotation is periodic in ``stripe % ndisks``; tabulating the
        # parity disk and the data-disk tuple per phase turns the per-unit
        # modular arithmetic into one index each.
        self._parity_disk_by_phase = tuple(ndisks - 1 - phase for phase in range(ndisks))
        self._data_disks_by_phase = tuple(
            tuple((parity + 1 + index) % ndisks for index in range(self.data_units_per_stripe))
            for parity in self._parity_disk_by_phase
        )
        self._extent_cache: dict[tuple[int, int], tuple[ExtentRun, ...]] = {}
        self._locate_cache: dict[int, StripeUnit] = {}
        self._parity_cache: dict[int, StripeUnit] = {}
        self._units_cache: dict[int, tuple[StripeUnit, ...]] = {}

    # -- pickling ---------------------------------------------------------------

    #: Derived memoisation state a snapshot must not carry: it is rebuilt
    #: on demand (and re-warmed in bulk by the replay harness), and a full
    #: extent cache multiplies the pickled size of every shard snapshot.
    _TRANSIENT = (
        "_extent_cache",
        "_locate_cache",
        "_parity_cache",
        "_units_cache",
        "_batchplan_disk_table",
    )

    def __getstate__(self):
        state = self.__dict__.copy()
        for key in self._TRANSIENT:
            state.pop(key, None)
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._extent_cache = {}
        self._locate_cache = {}
        self._parity_cache = {}
        self._units_cache = {}

    # -- per-stripe structure ---------------------------------------------------

    def parity_disk(self, stripe: int) -> int:
        """Disk holding the parity unit of ``stripe``."""
        self._check_stripe(stripe)
        return self._parity_disk_by_phase[stripe % self.ndisks]

    def parity_unit(self, stripe: int) -> StripeUnit:
        """Placement of the parity unit of ``stripe``."""
        cache = self._parity_cache
        unit = cache.get(stripe)
        if unit is not None:
            return unit
        unit = StripeUnit(
            stripe=stripe,
            kind=UnitKind.PARITY,
            unit_index=0,
            disk=self.parity_disk(stripe),
            disk_lba=stripe * self.stripe_unit_sectors,
        )
        if len(cache) >= self._STRIPE_CACHE_MAX:
            del cache[next(iter(cache))]
        cache[stripe] = unit
        return unit

    def data_disk(self, stripe: int, unit_index: int) -> int:
        """Disk holding data unit ``unit_index`` of ``stripe``."""
        if not 0 <= unit_index < self.data_units_per_stripe:
            raise ValueError(f"unit_index {unit_index} out of range")
        self._check_stripe(stripe)
        return self._data_disks_by_phase[stripe % self.ndisks][unit_index]

    def data_units(self, stripe: int) -> tuple[StripeUnit, ...]:
        """All data units of ``stripe``, in logical order."""
        cache = self._units_cache
        units = cache.get(stripe)
        if units is not None:
            return units
        self._check_stripe(stripe)
        disks = self._data_disks_by_phase[stripe % self.ndisks]
        disk_lba = stripe * self.stripe_unit_sectors
        units = tuple(
            StripeUnit(
                stripe=stripe,
                kind=UnitKind.DATA,
                unit_index=index,
                disk=disks[index],
                disk_lba=disk_lba,
            )
            for index in range(self.data_units_per_stripe)
        )
        if len(cache) >= self._STRIPE_CACHE_MAX:
            del cache[next(iter(cache))]
        cache[stripe] = units
        return units

    # -- logical address mapping ---------------------------------------------------

    def stripe_of(self, logical_sector: int) -> int:
        """The stripe containing ``logical_sector``."""
        self._check_logical(logical_sector)
        return logical_sector // self.stripe_data_sectors

    def locate(self, logical_sector: int) -> StripeUnit:
        """The stripe unit containing ``logical_sector``."""
        cache = self._locate_cache
        unit = cache.get(logical_sector)
        if unit is not None:
            return unit
        self._check_logical(logical_sector)
        stripe, within = divmod(logical_sector, self.stripe_data_sectors)
        unit_index = within // self.stripe_unit_sectors
        unit = StripeUnit(
            stripe=stripe,
            kind=UnitKind.DATA,
            unit_index=unit_index,
            disk=self._data_disks_by_phase[stripe % self.ndisks][unit_index],
            disk_lba=stripe * self.stripe_unit_sectors,
        )
        if len(cache) >= self._LOCATE_CACHE_MAX:
            del cache[next(iter(cache))]
        cache[logical_sector] = unit
        return unit

    def map_extent(self, logical_sector: int, nsectors: int) -> tuple[ExtentRun, ...]:
        """Split a logical extent into per-disk runs (stripe-unit bounded).

        Results are immutable and cached on ``(logical_sector, nsectors)``:
        replayed traces, scrub passes, and sequential access patterns
        re-map the same extents constantly, and the divmod walk plus run
        construction dominated layout time in whole-trace profiles.
        """
        cache = self._extent_cache
        key = (logical_sector, nsectors)
        cached = cache.get(key)
        if cached is not None:
            return cached
        if nsectors < 1:
            raise ValueError(f"nsectors must be >= 1, got {nsectors}")
        self._check_logical(logical_sector)
        if logical_sector + nsectors > self.total_data_sectors:
            raise ValueError("extent extends past end of array")
        stripe_data_sectors = self.stripe_data_sectors
        unit_sectors = self.stripe_unit_sectors
        disks_by_phase = self._data_disks_by_phase
        ndisks = self.ndisks
        runs: list[ExtentRun] = []
        position = logical_sector
        remaining = nsectors
        while remaining > 0:
            stripe, within = divmod(position, stripe_data_sectors)
            unit_index, unit_offset = divmod(within, unit_sectors)
            run = unit_sectors - unit_offset
            if run > remaining:
                run = remaining
            runs.append(
                ExtentRun(
                    stripe=stripe,
                    unit_index=unit_index,
                    disk=disks_by_phase[stripe % ndisks][unit_index],
                    disk_lba=stripe * unit_sectors + unit_offset,
                    nsectors=run,
                    logical_sector=position,
                )
            )
            position += run
            remaining -= run
        frozen = tuple(runs)
        if len(cache) >= self._EXTENT_CACHE_MAX:
            del cache[next(iter(cache))]
        cache[key] = frozen
        return frozen

    def stripes_touched(self, logical_sector: int, nsectors: int) -> range:
        """The stripes a logical extent intersects."""
        if nsectors < 1:
            raise ValueError(f"nsectors must be >= 1, got {nsectors}")
        first = self.stripe_of(logical_sector)
        last = self.stripe_of(logical_sector + nsectors - 1)
        return range(first, last + 1)

    def logical_of(self, disk: int, disk_lba: int) -> StripeUnit:
        """Inverse map: what does sector ``disk_lba`` of ``disk`` hold?

        Returns the :class:`StripeUnit` the sector belongs to (its
        ``unit_index`` is 0 for parity).  Use the unit's kind to tell
        whether the sector is data or parity.
        """
        if not 0 <= disk < self.ndisks:
            raise ValueError(f"disk {disk} out of range")
        if not 0 <= disk_lba < self.nstripes * self.stripe_unit_sectors:
            raise ValueError(f"disk_lba {disk_lba} outside striped region")
        stripe = disk_lba // self.stripe_unit_sectors
        parity_disk = self.parity_disk(stripe)
        if disk == parity_disk:
            return self.parity_unit(stripe)
        unit_index = (disk - parity_disk - 1) % self.ndisks
        return StripeUnit(
            stripe=stripe,
            kind=UnitKind.DATA,
            unit_index=unit_index,
            disk=disk,
            disk_lba=stripe * self.stripe_unit_sectors,
        )

    def logical_sector_of_unit(self, stripe: int, unit_index: int) -> int:
        """First logical sector stored in data unit ``unit_index`` of ``stripe``."""
        self._check_stripe(stripe)
        return stripe * self.stripe_data_sectors + unit_index * self.stripe_unit_sectors

    # -- helpers ---------------------------------------------------------------------

    def _check_stripe(self, stripe: int) -> None:
        if not 0 <= stripe < self.nstripes:
            raise ValueError(f"stripe {stripe} out of range [0, {self.nstripes})")

    def _check_logical(self, logical_sector: int) -> None:
        if not 0 <= logical_sector < self.total_data_sectors:
            raise ValueError(
                f"logical sector {logical_sector} out of range [0, {self.total_data_sectors})"
            )

    def __repr__(self) -> str:
        return (
            f"<Raid5Layout {self.ndisks} disks, unit={self.stripe_unit_sectors} sectors, "
            f"{self.nstripes} stripes>"
        )
