"""Plain striping (RAID 0), no redundancy.

Provided for completeness and for capacity/addressing comparisons.  Note
that the paper's RAID 0 *performance* datapoint is an AFRAID that never
scrubs (so all three models share one code path); this class is the true
RAID 0 layout where every unit holds data.
"""

from __future__ import annotations

from repro.layout.base import ExtentRun, StripeUnit, UnitKind, check_layout_args


class Raid0Layout:
    """Maps array-logical sectors across ``ndisks`` with no parity."""

    def __init__(self, ndisks: int, stripe_unit_sectors: int, disk_sectors: int) -> None:
        check_layout_args(ndisks, stripe_unit_sectors, disk_sectors, min_disks=2)
        self.ndisks = ndisks
        self.stripe_unit_sectors = stripe_unit_sectors
        self.disk_sectors = disk_sectors
        self.data_units_per_stripe = ndisks
        self.stripe_data_sectors = ndisks * stripe_unit_sectors
        self.nstripes = disk_sectors // stripe_unit_sectors
        self.total_data_sectors = self.nstripes * self.stripe_data_sectors

    def stripe_of(self, logical_sector: int) -> int:
        self._check_logical(logical_sector)
        return logical_sector // self.stripe_data_sectors

    def locate(self, logical_sector: int) -> StripeUnit:
        self._check_logical(logical_sector)
        stripe, within = divmod(logical_sector, self.stripe_data_sectors)
        unit_index = within // self.stripe_unit_sectors
        return StripeUnit(
            stripe=stripe,
            kind=UnitKind.DATA,
            unit_index=unit_index,
            disk=unit_index,
            disk_lba=stripe * self.stripe_unit_sectors,
        )

    def map_extent(self, logical_sector: int, nsectors: int) -> list[ExtentRun]:
        if nsectors < 1:
            raise ValueError(f"nsectors must be >= 1, got {nsectors}")
        self._check_logical(logical_sector)
        if logical_sector + nsectors > self.total_data_sectors:
            raise ValueError("extent extends past end of array")
        runs: list[ExtentRun] = []
        position = logical_sector
        remaining = nsectors
        while remaining > 0:
            stripe, within = divmod(position, self.stripe_data_sectors)
            unit_index, unit_offset = divmod(within, self.stripe_unit_sectors)
            run = min(remaining, self.stripe_unit_sectors - unit_offset)
            runs.append(
                ExtentRun(
                    stripe=stripe,
                    unit_index=unit_index,
                    disk=unit_index,
                    disk_lba=stripe * self.stripe_unit_sectors + unit_offset,
                    nsectors=run,
                    logical_sector=position,
                )
            )
            position += run
            remaining -= run
        return runs

    def _check_logical(self, logical_sector: int) -> None:
        if not 0 <= logical_sector < self.total_data_sectors:
            raise ValueError(
                f"logical sector {logical_sector} out of range [0, {self.total_data_sectors})"
            )

    def __repr__(self) -> str:
        return (
            f"<Raid0Layout {self.ndisks} disks, unit={self.stripe_unit_sectors} sectors, "
            f"{self.nstripes} stripes>"
        )
