"""Declarative array organizations.

An :class:`ArrayOrganization` bundles everything the rest of the stack
needs to know about a redundancy scheme — geometry constraints, which
layout class realises it, whether units are mirrored, whether a parity
unit exists, and what set of concurrent disk failures loses data — so
the controller, factory, rebuild manager, availability models, harness,
and CLI all branch on one declared object instead of assuming RAID 5.

The registry covers the organizations of the paper plus the mirrored and
hybrid schemes of Thomasian's surveys:

``raid5``
    Left-symmetric rotated parity (the paper's array; the default).
``raid5d``
    Parity-declustered RAID 5 over a complete block design; rebuild
    load spreads over all survivors.
``raid1``
    One mirrored pair.
``raid10``
    Striping over mirrored pairs.
``raid15``
    Hybrid RAID 1+5: RAID 5 parity rotation over mirrored pairs.

The AFRAID deferral applies to each: deferred parity for the parity
organizations, deferred mirror copy for the mirrored ones, and deferred
parity with inline mirror copies for the hybrid.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.layout.declustered import DeclusteredRaid5Layout
from repro.layout.mirror import Raid1Layout, Raid10Layout, Raid15Layout
from repro.layout.raid5 import Raid5Layout


@dataclasses.dataclass(frozen=True)
class ArrayOrganization:
    """One redundancy scheme, declared once and consumed everywhere."""

    name: str
    #: Human-readable name used in error messages ("RAID 5", "RAID 1/0"...).
    display: str
    min_disks: int
    #: Disk count must be a multiple of this (2 for pair-mirrored schemes).
    disks_multiple_of: int
    #: Exact disk count when the scheme fixes it (RAID 1), else None.
    exact_disks: int | None
    mirrored: bool
    has_parity: bool
    declustered: bool
    #: Layout class; called as ``(ndisks, stripe_unit_sectors, disk_sectors)``.
    layout_factory: typing.Callable = dataclasses.field(compare=False)

    def validate(self, ndisks: int) -> None:
        """Reject disk counts the organization cannot be built over."""
        if self.exact_disks is not None and ndisks != self.exact_disks:
            raise ValueError(
                f"need exactly {self.exact_disks} disks for {self.display}, got {ndisks}"
            )
        if ndisks < self.min_disks:
            raise ValueError(f"need >= {self.min_disks} disks for {self.display}, got {ndisks}")
        if ndisks % self.disks_multiple_of:
            raise ValueError(
                f"need a multiple of {self.disks_multiple_of} disks for "
                f"{self.display}, got {ndisks}"
            )

    def build_layout(self, ndisks: int, stripe_unit_sectors: int, disk_sectors: int):
        """Construct the layout realising this organization."""
        self.validate(ndisks)
        return self.layout_factory(ndisks, stripe_unit_sectors, disk_sectors)

    # -- failure semantics ------------------------------------------------------

    def loses_data(self, failed_disks: typing.Iterable[int]) -> bool:
        """Whether the concurrent failure of ``failed_disks`` loses data.

        This is the *catastrophic* criterion (all redundancy of some
        stripe gone); deferred-update exposure on top of it is accounted
        separately by the availability models.
        """
        failed = set(failed_disks)
        if not self.mirrored:
            # Single parity (or none): any second concurrent failure is fatal.
            return len(failed) >= 2 if self.has_parity else len(failed) >= 1
        dead_pairs = sum(
            1 for disk in failed if disk % 2 == 0 and disk + 1 in failed
        )
        if self.has_parity:
            # RAID 1+5 reconstructs one fully-dead pair through parity.
            return dead_pairs >= 2
        return dead_pairs >= 1

    def can_absorb(self, failed_disks: typing.Iterable[int]) -> bool:
        """Whether the array still serves all data with ``failed_disks`` down."""
        return not self.loses_data(failed_disks)


ORGANIZATIONS: dict[str, ArrayOrganization] = {
    org.name: org
    for org in (
        ArrayOrganization(
            name="raid5",
            display="RAID 5",
            min_disks=3,
            disks_multiple_of=1,
            exact_disks=None,
            mirrored=False,
            has_parity=True,
            declustered=False,
            layout_factory=Raid5Layout,
        ),
        ArrayOrganization(
            name="raid5d",
            display="declustered RAID 5",
            min_disks=4,
            disks_multiple_of=1,
            exact_disks=None,
            mirrored=False,
            has_parity=True,
            declustered=True,
            layout_factory=DeclusteredRaid5Layout,
        ),
        ArrayOrganization(
            name="raid1",
            display="RAID 1",
            min_disks=2,
            disks_multiple_of=2,
            exact_disks=2,
            mirrored=True,
            has_parity=False,
            declustered=False,
            layout_factory=Raid1Layout,
        ),
        ArrayOrganization(
            name="raid10",
            display="RAID 1/0",
            min_disks=4,
            disks_multiple_of=2,
            exact_disks=None,
            mirrored=True,
            has_parity=False,
            declustered=False,
            layout_factory=Raid10Layout,
        ),
        ArrayOrganization(
            name="raid15",
            display="RAID 1+5",
            min_disks=6,
            disks_multiple_of=2,
            exact_disks=None,
            mirrored=True,
            has_parity=True,
            declustered=False,
            layout_factory=Raid15Layout,
        ),
    )
}

#: The organization every existing entry point assumed before the
#: abstraction existed; all defaults resolve to it.
DEFAULT_ORGANIZATION = "raid5"


def get_organization(name: "str | ArrayOrganization") -> ArrayOrganization:
    """Resolve an organization by name (idempotent on instances)."""
    if isinstance(name, ArrayOrganization):
        return name
    org = ORGANIZATIONS.get(name)
    if org is None:
        known = ", ".join(sorted(ORGANIZATIONS))
        raise ValueError(f"unknown organization {name!r} (known: {known})")
    return org
