"""Shared layout types.

Terminology (matching the paper): a *stripe* is one row of *stripe units*
across all disks; the stripe unit ("stripe depth") is 8 KB in the paper's
configuration.  For RAID 5, each stripe holds N data units plus one parity
unit on an array of N+1 disks.
"""

from __future__ import annotations

import dataclasses
import enum


class UnitKind(enum.Enum):
    """What a stripe unit on some disk holds."""

    DATA = "data"
    PARITY = "parity"
    PARITY_Q = "parity_q"  # second parity of RAID 6


@dataclasses.dataclass(frozen=True)
class StripeUnit:
    """One stripe unit's physical placement."""

    stripe: int
    kind: UnitKind
    unit_index: int  # data-unit ordinal within the stripe; 0 for parity units
    disk: int
    disk_lba: int  # first sector of the unit on that disk


@dataclasses.dataclass(frozen=True)
class ExtentRun:
    """A contiguous piece of a logical extent landing on one disk.

    ``logical_sector`` is where this run starts in array-logical space;
    the run never crosses a stripe-unit boundary.
    """

    stripe: int
    unit_index: int
    disk: int
    disk_lba: int  # first sector of the run on the disk
    nsectors: int
    logical_sector: int


def check_layout_args(ndisks: int, stripe_unit_sectors: int, disk_sectors: int, min_disks: int) -> None:
    """Validate common layout constructor arguments."""
    if ndisks < min_disks:
        raise ValueError(f"need >= {min_disks} disks, got {ndisks}")
    if stripe_unit_sectors < 1:
        raise ValueError(f"stripe unit must be >= 1 sector, got {stripe_unit_sectors}")
    if disk_sectors < stripe_unit_sectors:
        raise ValueError(
            f"disk ({disk_sectors} sectors) smaller than one stripe unit ({stripe_unit_sectors})"
        )
