"""Shared layout types.

Terminology (matching the paper): a *stripe* is one row of *stripe units*
across all disks; the stripe unit ("stripe depth") is 8 KB in the paper's
configuration.  For RAID 5, each stripe holds N data units plus one parity
unit on an array of N+1 disks.
"""

from __future__ import annotations

import enum


class UnitKind(enum.Enum):
    """What a stripe unit on some disk holds."""

    DATA = "data"
    PARITY = "parity"
    PARITY_Q = "parity_q"  # second parity of RAID 6
    MIRROR = "mirror"  # secondary copy of a mirrored unit


class StripeUnit:
    """One stripe unit's physical placement.

    A plain ``__slots__`` class rather than a frozen dataclass: layouts
    build one per stripe unit on every mapping-cache miss, and the frozen
    dataclass ``__init__`` (one ``object.__setattr__`` per field) was
    measurable at whole-trace replay scale.  Value semantics (eq/hash/
    repr) are preserved.
    """

    __slots__ = ("stripe", "kind", "unit_index", "disk", "disk_lba")

    def __init__(
        self, stripe: int, kind: UnitKind, unit_index: int, disk: int, disk_lba: int
    ) -> None:
        self.stripe = stripe
        self.kind = kind
        #: Data-unit ordinal within the stripe; 0 for parity units.
        self.unit_index = unit_index
        self.disk = disk
        #: First sector of the unit on that disk.
        self.disk_lba = disk_lba

    def _astuple(self) -> tuple:
        return (self.stripe, self.kind, self.unit_index, self.disk, self.disk_lba)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StripeUnit):
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return (
            f"StripeUnit(stripe={self.stripe!r}, kind={self.kind!r}, "
            f"unit_index={self.unit_index!r}, disk={self.disk!r}, "
            f"disk_lba={self.disk_lba!r})"
        )


class ExtentRun:
    """A contiguous piece of a logical extent landing on one disk.

    ``logical_sector`` is where this run starts in array-logical space;
    the run never crosses a stripe-unit boundary.

    Like :class:`StripeUnit`, a plain ``__slots__`` class: extent mapping
    constructs these in bulk (scalar walks and the vectorised batch
    planner both), and dataclass construction overhead was measurable.
    """

    __slots__ = ("stripe", "unit_index", "disk", "disk_lba", "nsectors", "logical_sector")

    def __init__(
        self,
        stripe: int,
        unit_index: int,
        disk: int,
        disk_lba: int,
        nsectors: int,
        logical_sector: int,
    ) -> None:
        self.stripe = stripe
        self.unit_index = unit_index
        self.disk = disk
        #: First sector of the run on the disk.
        self.disk_lba = disk_lba
        self.nsectors = nsectors
        self.logical_sector = logical_sector

    def _astuple(self) -> tuple:
        return (
            self.stripe, self.unit_index, self.disk,
            self.disk_lba, self.nsectors, self.logical_sector,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExtentRun):
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return (
            f"ExtentRun(stripe={self.stripe!r}, unit_index={self.unit_index!r}, "
            f"disk={self.disk!r}, disk_lba={self.disk_lba!r}, "
            f"nsectors={self.nsectors!r}, logical_sector={self.logical_sector!r})"
        )


def check_layout_args(
    ndisks: int, stripe_unit_sectors: int, disk_sectors: int, min_disks: int
) -> None:
    """Validate common layout constructor arguments."""
    if ndisks < min_disks:
        raise ValueError(f"need >= {min_disks} disks, got {ndisks}")
    if stripe_unit_sectors < 1:
        raise ValueError(f"stripe unit must be >= 1 sector, got {stripe_unit_sectors}")
    if disk_sectors < stripe_unit_sectors:
        raise ValueError(
            f"disk ({disk_sectors} sectors) smaller than one stripe unit ({stripe_unit_sectors})"
        )
