"""Rotating P+Q (RAID 6) layout — substrate for the paper's §5 extension.

The paper suggests combining AFRAID with RAID 6: defer one or both parity
updates, giving partial redundancy immediately and full redundancy after
the background rebuild.  This layout places two parity units per stripe
(P and Q on adjacent disks, rotating left each stripe) and N−2 data units.
"""

from __future__ import annotations

from repro.layout.base import ExtentRun, StripeUnit, UnitKind, check_layout_args


class Raid6Layout:
    """Maps array-logical sectors with two rotating parity units."""

    def __init__(self, ndisks: int, stripe_unit_sectors: int, disk_sectors: int) -> None:
        check_layout_args(ndisks, stripe_unit_sectors, disk_sectors, min_disks=4)
        self.ndisks = ndisks
        self.stripe_unit_sectors = stripe_unit_sectors
        self.disk_sectors = disk_sectors
        self.data_units_per_stripe = ndisks - 2
        self.stripe_data_sectors = self.data_units_per_stripe * stripe_unit_sectors
        self.nstripes = disk_sectors // stripe_unit_sectors
        self.total_data_sectors = self.nstripes * self.stripe_data_sectors

    def parity_disk(self, stripe: int) -> int:
        """Disk holding the P unit of ``stripe``."""
        self._check_stripe(stripe)
        return self.ndisks - 1 - (stripe % self.ndisks)

    def parity_q_disk(self, stripe: int) -> int:
        """Disk holding the Q unit of ``stripe`` (immediately left of P)."""
        return (self.parity_disk(stripe) - 1) % self.ndisks

    def parity_unit(self, stripe: int) -> StripeUnit:
        return StripeUnit(
            stripe=stripe,
            kind=UnitKind.PARITY,
            unit_index=0,
            disk=self.parity_disk(stripe),
            disk_lba=stripe * self.stripe_unit_sectors,
        )

    def parity_q_unit(self, stripe: int) -> StripeUnit:
        return StripeUnit(
            stripe=stripe,
            kind=UnitKind.PARITY_Q,
            unit_index=0,
            disk=self.parity_q_disk(stripe),
            disk_lba=stripe * self.stripe_unit_sectors,
        )

    def data_disk(self, stripe: int, unit_index: int) -> int:
        """Disk holding data unit ``unit_index`` of ``stripe``.

        Data occupies disks in circular order starting just right of P,
        skipping the P and Q disks.
        """
        if not 0 <= unit_index < self.data_units_per_stripe:
            raise ValueError(f"unit_index {unit_index} out of range")
        p_disk = self.parity_disk(stripe)
        q_disk = self.parity_q_disk(stripe)
        order = []
        disk = (p_disk + 1) % self.ndisks
        while len(order) < self.data_units_per_stripe:
            if disk not in (p_disk, q_disk):
                order.append(disk)
            disk = (disk + 1) % self.ndisks
        return order[unit_index]

    def data_units(self, stripe: int) -> list[StripeUnit]:
        return [
            StripeUnit(
                stripe=stripe,
                kind=UnitKind.DATA,
                unit_index=index,
                disk=self.data_disk(stripe, index),
                disk_lba=stripe * self.stripe_unit_sectors,
            )
            for index in range(self.data_units_per_stripe)
        ]

    def stripe_of(self, logical_sector: int) -> int:
        self._check_logical(logical_sector)
        return logical_sector // self.stripe_data_sectors

    def map_extent(self, logical_sector: int, nsectors: int) -> list[ExtentRun]:
        if nsectors < 1:
            raise ValueError(f"nsectors must be >= 1, got {nsectors}")
        self._check_logical(logical_sector)
        if logical_sector + nsectors > self.total_data_sectors:
            raise ValueError("extent extends past end of array")
        runs: list[ExtentRun] = []
        position = logical_sector
        remaining = nsectors
        while remaining > 0:
            stripe, within = divmod(position, self.stripe_data_sectors)
            unit_index, unit_offset = divmod(within, self.stripe_unit_sectors)
            run = min(remaining, self.stripe_unit_sectors - unit_offset)
            runs.append(
                ExtentRun(
                    stripe=stripe,
                    unit_index=unit_index,
                    disk=self.data_disk(stripe, unit_index),
                    disk_lba=stripe * self.stripe_unit_sectors + unit_offset,
                    nsectors=run,
                    logical_sector=position,
                )
            )
            position += run
            remaining -= run
        return runs

    def stripes_touched(self, logical_sector: int, nsectors: int) -> range:
        if nsectors < 1:
            raise ValueError(f"nsectors must be >= 1, got {nsectors}")
        first = self.stripe_of(logical_sector)
        last = self.stripe_of(logical_sector + nsectors - 1)
        return range(first, last + 1)

    def _check_stripe(self, stripe: int) -> None:
        if not 0 <= stripe < self.nstripes:
            raise ValueError(f"stripe {stripe} out of range [0, {self.nstripes})")

    def _check_logical(self, logical_sector: int) -> None:
        if not 0 <= logical_sector < self.total_data_sectors:
            raise ValueError(
                f"logical sector {logical_sector} out of range [0, {self.total_data_sectors})"
            )

    def __repr__(self) -> str:
        return (
            f"<Raid6Layout {self.ndisks} disks, unit={self.stripe_unit_sectors} sectors, "
            f"{self.nstripes} stripes>"
        )
