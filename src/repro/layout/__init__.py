"""Data layouts: how array-logical addresses map onto member disks.

The paper uses a left-symmetric RAID 5 layout (§2, last paragraph) with an
8 KB stripe unit.  :class:`~repro.layout.raid5.Raid5Layout` implements it;
:class:`~repro.layout.raid0.Raid0Layout` is plain striping (provided for
completeness — the paper's RAID 0 datapoint is actually an AFRAID that
never scrubs, which reuses the RAID 5 layout); and
:class:`~repro.layout.raid6.Raid6Layout` is the P+Q extension discussed in
§5 of the paper.
"""

from repro.layout.base import ExtentRun, StripeUnit, UnitKind
from repro.layout.raid0 import Raid0Layout
from repro.layout.raid5 import Raid5Layout
from repro.layout.raid6 import Raid6Layout

__all__ = [
    "ExtentRun",
    "Raid0Layout",
    "Raid5Layout",
    "Raid6Layout",
    "StripeUnit",
    "UnitKind",
]
