"""Data layouts: how array-logical addresses map onto member disks.

The paper uses a left-symmetric RAID 5 layout (§2, last paragraph) with an
8 KB stripe unit.  :class:`~repro.layout.raid5.Raid5Layout` implements it;
:class:`~repro.layout.raid0.Raid0Layout` is plain striping (provided for
completeness — the paper's RAID 0 datapoint is actually an AFRAID that
never scrubs, which reuses the RAID 5 layout); and
:class:`~repro.layout.raid6.Raid6Layout` is the P+Q extension discussed in
§5 of the paper.

Beyond the paper's organization, :mod:`repro.layout.mirror` adds RAID 1,
RAID 1/0, and hybrid RAID 1+5 (each with a deferred-copy AFRAID variant),
and :mod:`repro.layout.declustered` adds parity-declustered RAID 5.  The
:class:`~repro.layout.organization.ArrayOrganization` registry declares
them all for the controller, factory, availability models, and CLI.
"""

from repro.layout.base import ExtentRun, StripeUnit, UnitKind
from repro.layout.declustered import DeclusteredRaid5Layout
from repro.layout.mirror import Raid1Layout, Raid10Layout, Raid15Layout
from repro.layout.organization import (
    DEFAULT_ORGANIZATION,
    ORGANIZATIONS,
    ArrayOrganization,
    get_organization,
)
from repro.layout.raid0 import Raid0Layout
from repro.layout.raid5 import Raid5Layout
from repro.layout.raid6 import Raid6Layout

__all__ = [
    "DEFAULT_ORGANIZATION",
    "ORGANIZATIONS",
    "ArrayOrganization",
    "DeclusteredRaid5Layout",
    "ExtentRun",
    "Raid0Layout",
    "Raid1Layout",
    "Raid10Layout",
    "Raid15Layout",
    "Raid5Layout",
    "Raid6Layout",
    "StripeUnit",
    "UnitKind",
    "get_organization",
]
