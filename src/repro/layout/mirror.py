"""Mirrored layouts: RAID 1, RAID 1/0, and hybrid RAID 1+5.

RAID 1/0 stripes data units across mirrored pairs of disks: pair ``i``
is disks ``(2i, 2i+1)``, the even disk is the *primary* copy and the odd
disk the *mirror*.  Data unit ``u`` of every stripe lives on pair ``u``:

    pair:      0         1         2
    disk:    0    1    2    3    4    5
    stripe0  D0   D0'  D1   D1'  D2   D2'
    stripe1  D0   D0'  D1   D1'  D2   D2'

RAID 1 is the two-disk special case (one pair, no striping).

RAID 1+5 layers left-symmetric RAID 5 parity rotation *over the pairs*:
each stripe has ``npairs - 1`` data units plus one parity unit, and every
unit (data and parity alike) is mirrored within its pair.  With 3 pairs:

    pair:      0         1         2
    stripe 0  D0   D0'  D1   D1'  P    P'
    stripe 1  D1   D1'  P    P'   D0   D0'
    stripe 2  P    P'   D0   D0'  D1   D1'

The AFRAID deferral analogue for mirrors writes only the primary copy in
the fast path and marks the stripe in NVRAM; the scrubber copies primary
to mirror during idle, exactly as deferred parity is scrubbed in.  For
RAID 1+5 both copies of the data are written inline (dirty stripes stay
mirror-protected) and only the parity update is deferred.
"""

from __future__ import annotations


from repro.layout.base import ExtentRun, StripeUnit, UnitKind, check_layout_args


class Raid10Layout:
    """Striped mirror pairs: data unit ``u`` on disk ``2u``, copy on ``2u+1``.

    Parameters
    ----------
    ndisks:
        Total member disks; must be even and >= 2.
    stripe_unit_sectors:
        Stripe unit ("depth") in sectors.
    disk_sectors:
        Usable sectors per member disk.
    """

    _EXTENT_CACHE_MAX = 8192
    _LOCATE_CACHE_MAX = 8192
    _STRIPE_CACHE_MAX = 4096

    #: Organization traits consumed by the controller and rebuild paths.
    mirrored = True
    has_parity = False

    _MIN_DISKS = 4

    def __init__(self, ndisks: int, stripe_unit_sectors: int, disk_sectors: int) -> None:
        check_layout_args(ndisks, stripe_unit_sectors, disk_sectors, min_disks=self._MIN_DISKS)
        if ndisks % 2:
            raise ValueError(f"mirrored layouts need an even disk count, got {ndisks}")
        self.ndisks = ndisks
        self.npairs = ndisks // 2
        self.stripe_unit_sectors = stripe_unit_sectors
        self.disk_sectors = disk_sectors
        self.data_units_per_stripe = self.npairs
        self.stripe_data_sectors = self.data_units_per_stripe * stripe_unit_sectors
        self.nstripes = disk_sectors // stripe_unit_sectors
        self.total_data_sectors = self.nstripes * self.stripe_data_sectors
        self._extent_cache: dict[tuple[int, int], tuple[ExtentRun, ...]] = {}
        self._locate_cache: dict[int, StripeUnit] = {}
        self._units_cache: dict[int, tuple[StripeUnit, ...]] = {}

    # -- pickling ---------------------------------------------------------------

    _TRANSIENT = ("_extent_cache", "_locate_cache", "_units_cache")

    def __getstate__(self):
        state = self.__dict__.copy()
        for key in self._TRANSIENT:
            state.pop(key, None)
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._extent_cache = {}
        self._locate_cache = {}
        self._units_cache = {}

    # -- mirror structure -------------------------------------------------------

    @staticmethod
    def mirror_disk(disk: int) -> int:
        """The other member of ``disk``'s mirror pair."""
        return disk ^ 1

    @staticmethod
    def pair_of(disk: int) -> int:
        """The mirror-pair index holding ``disk``."""
        return disk // 2

    def data_disk(self, stripe: int, unit_index: int) -> int:
        """Primary disk holding data unit ``unit_index`` of ``stripe``."""
        if not 0 <= unit_index < self.data_units_per_stripe:
            raise ValueError(f"unit_index {unit_index} out of range")
        self._check_stripe(stripe)
        return 2 * unit_index

    def data_units(self, stripe: int) -> tuple[StripeUnit, ...]:
        """All primary data units of ``stripe``, in logical order."""
        cache = self._units_cache
        units = cache.get(stripe)
        if units is not None:
            return units
        self._check_stripe(stripe)
        disk_lba = stripe * self.stripe_unit_sectors
        units = tuple(
            StripeUnit(
                stripe=stripe,
                kind=UnitKind.DATA,
                unit_index=index,
                disk=2 * index,
                disk_lba=disk_lba,
            )
            for index in range(self.data_units_per_stripe)
        )
        if len(cache) >= self._STRIPE_CACHE_MAX:
            del cache[next(iter(cache))]
        cache[stripe] = units
        return units

    def mirror_unit(self, stripe: int, unit_index: int) -> StripeUnit:
        """The secondary copy of data unit ``unit_index`` of ``stripe``."""
        self._check_stripe(stripe)
        if not 0 <= unit_index < self.data_units_per_stripe:
            raise ValueError(f"unit_index {unit_index} out of range")
        return StripeUnit(
            stripe=stripe,
            kind=UnitKind.MIRROR,
            unit_index=unit_index,
            disk=2 * unit_index + 1,
            disk_lba=stripe * self.stripe_unit_sectors,
        )

    # -- logical address mapping ------------------------------------------------

    def stripe_of(self, logical_sector: int) -> int:
        """The stripe containing ``logical_sector``."""
        self._check_logical(logical_sector)
        return logical_sector // self.stripe_data_sectors

    def locate(self, logical_sector: int) -> StripeUnit:
        """The primary stripe unit containing ``logical_sector``."""
        cache = self._locate_cache
        unit = cache.get(logical_sector)
        if unit is not None:
            return unit
        self._check_logical(logical_sector)
        stripe, within = divmod(logical_sector, self.stripe_data_sectors)
        unit_index = within // self.stripe_unit_sectors
        unit = StripeUnit(
            stripe=stripe,
            kind=UnitKind.DATA,
            unit_index=unit_index,
            disk=2 * unit_index,
            disk_lba=stripe * self.stripe_unit_sectors,
        )
        if len(cache) >= self._LOCATE_CACHE_MAX:
            del cache[next(iter(cache))]
        cache[logical_sector] = unit
        return unit

    def map_extent(self, logical_sector: int, nsectors: int) -> tuple[ExtentRun, ...]:
        """Split a logical extent into primary-copy per-disk runs."""
        cache = self._extent_cache
        key = (logical_sector, nsectors)
        cached = cache.get(key)
        if cached is not None:
            return cached
        if nsectors < 1:
            raise ValueError(f"nsectors must be >= 1, got {nsectors}")
        self._check_logical(logical_sector)
        if logical_sector + nsectors > self.total_data_sectors:
            raise ValueError("extent extends past end of array")
        stripe_data_sectors = self.stripe_data_sectors
        unit_sectors = self.stripe_unit_sectors
        runs: list[ExtentRun] = []
        position = logical_sector
        remaining = nsectors
        while remaining > 0:
            stripe, within = divmod(position, stripe_data_sectors)
            unit_index, unit_offset = divmod(within, unit_sectors)
            run = unit_sectors - unit_offset
            if run > remaining:
                run = remaining
            runs.append(
                ExtentRun(
                    stripe=stripe,
                    unit_index=unit_index,
                    disk=2 * unit_index,
                    disk_lba=stripe * unit_sectors + unit_offset,
                    nsectors=run,
                    logical_sector=position,
                )
            )
            position += run
            remaining -= run
        frozen = tuple(runs)
        if len(cache) >= self._EXTENT_CACHE_MAX:
            del cache[next(iter(cache))]
        cache[key] = frozen
        return frozen

    def stripes_touched(self, logical_sector: int, nsectors: int) -> range:
        """The stripes a logical extent intersects."""
        if nsectors < 1:
            raise ValueError(f"nsectors must be >= 1, got {nsectors}")
        first = self.stripe_of(logical_sector)
        last = self.stripe_of(logical_sector + nsectors - 1)
        return range(first, last + 1)

    def logical_of(self, disk: int, disk_lba: int) -> StripeUnit:
        """Inverse map: what does sector ``disk_lba`` of ``disk`` hold?"""
        if not 0 <= disk < self.ndisks:
            raise ValueError(f"disk {disk} out of range")
        if not 0 <= disk_lba < self.nstripes * self.stripe_unit_sectors:
            raise ValueError(f"disk_lba {disk_lba} outside striped region")
        stripe = disk_lba // self.stripe_unit_sectors
        unit_index = disk // 2
        return StripeUnit(
            stripe=stripe,
            kind=UnitKind.DATA if disk % 2 == 0 else UnitKind.MIRROR,
            unit_index=unit_index,
            disk=disk,
            disk_lba=stripe * self.stripe_unit_sectors,
        )

    def logical_sector_of_unit(self, stripe: int, unit_index: int) -> int:
        """First logical sector stored in data unit ``unit_index`` of ``stripe``."""
        self._check_stripe(stripe)
        return stripe * self.stripe_data_sectors + unit_index * self.stripe_unit_sectors

    # -- helpers ----------------------------------------------------------------

    def _check_stripe(self, stripe: int) -> None:
        if not 0 <= stripe < self.nstripes:
            raise ValueError(f"stripe {stripe} out of range [0, {self.nstripes})")

    def _check_logical(self, logical_sector: int) -> None:
        if not 0 <= logical_sector < self.total_data_sectors:
            raise ValueError(
                f"logical sector {logical_sector} out of range [0, {self.total_data_sectors})"
            )

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.ndisks} disks ({self.npairs} pairs), "
            f"unit={self.stripe_unit_sectors} sectors, {self.nstripes} stripes>"
        )


class Raid1Layout(Raid10Layout):
    """Basic mirroring: exactly one pair, no striping across pairs."""

    _MIN_DISKS = 2

    def __init__(self, ndisks: int, stripe_unit_sectors: int, disk_sectors: int) -> None:
        if ndisks != 2:
            raise ValueError(f"RAID 1 needs exactly 2 disks, got {ndisks}")
        super().__init__(ndisks, stripe_unit_sectors, disk_sectors)


class Raid15Layout(Raid10Layout):
    """Hybrid RAID 1+5: left-symmetric parity rotation over mirrored pairs.

    Each stripe holds ``npairs - 1`` data units and one parity unit; every
    unit's primary copy is on the even disk of its pair and mirrored on
    the odd disk.  Parity rotates across pairs exactly as RAID 5 rotates
    it across disks, so the stripe phase is ``stripe % npairs``.
    """

    has_parity = True

    _MIN_DISKS = 6

    def __init__(self, ndisks: int, stripe_unit_sectors: int, disk_sectors: int) -> None:
        super().__init__(ndisks, stripe_unit_sectors, disk_sectors)
        self.data_units_per_stripe = self.npairs - 1
        self.stripe_data_sectors = self.data_units_per_stripe * stripe_unit_sectors
        self.total_data_sectors = self.nstripes * self.stripe_data_sectors
        self._parity_pair_by_phase = tuple(
            self.npairs - 1 - phase for phase in range(self.npairs)
        )
        self._data_pairs_by_phase = tuple(
            tuple((parity + 1 + index) % self.npairs for index in range(self.data_units_per_stripe))
            for parity in self._parity_pair_by_phase
        )
        self._parity_cache: dict[int, StripeUnit] = {}

    _TRANSIENT = ("_extent_cache", "_locate_cache", "_units_cache", "_parity_cache")

    def __setstate__(self, state) -> None:
        super().__setstate__(state)
        self._parity_cache = {}

    # -- per-stripe structure ---------------------------------------------------

    def parity_pair(self, stripe: int) -> int:
        """Mirror pair holding the parity unit of ``stripe``."""
        self._check_stripe(stripe)
        return self._parity_pair_by_phase[stripe % self.npairs]

    def parity_disk(self, stripe: int) -> int:
        """Primary disk holding the parity unit of ``stripe``."""
        return 2 * self.parity_pair(stripe)

    def parity_unit(self, stripe: int) -> StripeUnit:
        """Placement of the (primary) parity unit of ``stripe``."""
        cache = self._parity_cache
        unit = cache.get(stripe)
        if unit is not None:
            return unit
        unit = StripeUnit(
            stripe=stripe,
            kind=UnitKind.PARITY,
            unit_index=0,
            disk=self.parity_disk(stripe),
            disk_lba=stripe * self.stripe_unit_sectors,
        )
        if len(cache) >= self._STRIPE_CACHE_MAX:
            del cache[next(iter(cache))]
        cache[stripe] = unit
        return unit

    def data_disk(self, stripe: int, unit_index: int) -> int:
        if not 0 <= unit_index < self.data_units_per_stripe:
            raise ValueError(f"unit_index {unit_index} out of range")
        self._check_stripe(stripe)
        return 2 * self._data_pairs_by_phase[stripe % self.npairs][unit_index]

    def data_units(self, stripe: int) -> tuple[StripeUnit, ...]:
        cache = self._units_cache
        units = cache.get(stripe)
        if units is not None:
            return units
        self._check_stripe(stripe)
        pairs = self._data_pairs_by_phase[stripe % self.npairs]
        disk_lba = stripe * self.stripe_unit_sectors
        units = tuple(
            StripeUnit(
                stripe=stripe,
                kind=UnitKind.DATA,
                unit_index=index,
                disk=2 * pairs[index],
                disk_lba=disk_lba,
            )
            for index in range(self.data_units_per_stripe)
        )
        if len(cache) >= self._STRIPE_CACHE_MAX:
            del cache[next(iter(cache))]
        cache[stripe] = units
        return units

    def mirror_unit(self, stripe: int, unit_index: int) -> StripeUnit:
        self._check_stripe(stripe)
        if not 0 <= unit_index < self.data_units_per_stripe:
            raise ValueError(f"unit_index {unit_index} out of range")
        pair = self._data_pairs_by_phase[stripe % self.npairs][unit_index]
        return StripeUnit(
            stripe=stripe,
            kind=UnitKind.MIRROR,
            unit_index=unit_index,
            disk=2 * pair + 1,
            disk_lba=stripe * self.stripe_unit_sectors,
        )

    # -- logical address mapping ------------------------------------------------

    def locate(self, logical_sector: int) -> StripeUnit:
        cache = self._locate_cache
        unit = cache.get(logical_sector)
        if unit is not None:
            return unit
        self._check_logical(logical_sector)
        stripe, within = divmod(logical_sector, self.stripe_data_sectors)
        unit_index = within // self.stripe_unit_sectors
        unit = StripeUnit(
            stripe=stripe,
            kind=UnitKind.DATA,
            unit_index=unit_index,
            disk=2 * self._data_pairs_by_phase[stripe % self.npairs][unit_index],
            disk_lba=stripe * self.stripe_unit_sectors,
        )
        if len(cache) >= self._LOCATE_CACHE_MAX:
            del cache[next(iter(cache))]
        cache[logical_sector] = unit
        return unit

    def map_extent(self, logical_sector: int, nsectors: int) -> tuple[ExtentRun, ...]:
        cache = self._extent_cache
        key = (logical_sector, nsectors)
        cached = cache.get(key)
        if cached is not None:
            return cached
        if nsectors < 1:
            raise ValueError(f"nsectors must be >= 1, got {nsectors}")
        self._check_logical(logical_sector)
        if logical_sector + nsectors > self.total_data_sectors:
            raise ValueError("extent extends past end of array")
        stripe_data_sectors = self.stripe_data_sectors
        unit_sectors = self.stripe_unit_sectors
        pairs_by_phase = self._data_pairs_by_phase
        npairs = self.npairs
        runs: list[ExtentRun] = []
        position = logical_sector
        remaining = nsectors
        while remaining > 0:
            stripe, within = divmod(position, stripe_data_sectors)
            unit_index, unit_offset = divmod(within, unit_sectors)
            run = unit_sectors - unit_offset
            if run > remaining:
                run = remaining
            runs.append(
                ExtentRun(
                    stripe=stripe,
                    unit_index=unit_index,
                    disk=2 * pairs_by_phase[stripe % npairs][unit_index],
                    disk_lba=stripe * unit_sectors + unit_offset,
                    nsectors=run,
                    logical_sector=position,
                )
            )
            position += run
            remaining -= run
        frozen = tuple(runs)
        if len(cache) >= self._EXTENT_CACHE_MAX:
            del cache[next(iter(cache))]
        cache[key] = frozen
        return frozen

    def logical_of(self, disk: int, disk_lba: int) -> StripeUnit:
        if not 0 <= disk < self.ndisks:
            raise ValueError(f"disk {disk} out of range")
        if not 0 <= disk_lba < self.nstripes * self.stripe_unit_sectors:
            raise ValueError(f"disk_lba {disk_lba} outside striped region")
        stripe = disk_lba // self.stripe_unit_sectors
        pair = disk // 2
        parity = self._parity_pair_by_phase[stripe % self.npairs]
        if pair == parity:
            if disk % 2 == 0:
                return self.parity_unit(stripe)
            return StripeUnit(
                stripe=stripe,
                kind=UnitKind.MIRROR,
                unit_index=0,
                disk=disk,
                disk_lba=stripe * self.stripe_unit_sectors,
            )
        unit_index = (pair - parity - 1) % self.npairs
        return StripeUnit(
            stripe=stripe,
            kind=UnitKind.DATA if disk % 2 == 0 else UnitKind.MIRROR,
            unit_index=unit_index,
            disk=disk,
            disk_lba=stripe * self.stripe_unit_sectors,
        )
