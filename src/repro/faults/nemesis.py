"""Continuous chaos: faults injected into live traffic, gated on SLOs.

PR 5's :class:`~repro.faults.campaign.FaultCampaign` schedules every
fault up front and reports when the run is over.  The nemesis is the
*continuous* counterpart (ydb's ``active_faults_tracker`` /
``tracked_nemesis`` / ``monitor`` split): a simulation process that ticks
alongside live traffic, draws faults from the same seeded
:func:`~repro.faults.campaign.draw_fault_schedule` distributions, and —
the part a static schedule cannot do — consults the live telemetry
*in-loop* before each strike:

* every tick it refreshes the :class:`~repro.obs.ExposureMonitor`
  gauges and evaluates the :class:`~repro.obs.SloEngine`;
* while any exposure SLO is breached (or the windowed achieved MTTDL is
  below ``mttdl_floor_h``), injections are **held**: due faults queue up
  instead of striking, and a single ``nemesis.hold`` timeline event marks
  the episode, cause-linked to the gating breach;
* on recovery a ``nemesis.resume`` event (cause: the hold) releases the
  deferred faults.

Every decision the loop makes — inject, impact, skip, clear, hold,
resume, drop — lands in the shared :class:`~repro.obs.Timeline`, so the
fault → exposure spike → breach → rebuild → recovery chain is one
correlated log.  The :class:`ActiveFaultsTracker` keeps the open-fault
inventory (what is hurting the array *right now*) with injection/clear
timestamps.

Everything is sim-time and seed-derived: the same (spec, seed) pair
yields a byte-identical timeline, which CI's soak job diffs.

This module deliberately does not import :mod:`repro.harness` (which
imports :mod:`repro.faults`); the workload-driving runner lives in
:mod:`repro.harness.nemesis`.
"""

from __future__ import annotations

import dataclasses
import random
import typing

from repro.disk import DiskFailedError, DiskIO, IoKind, LatentSectorError, hp_c3325, toy_disk
from repro.ext.rebuild import RebuildManager
from repro.faults.campaign import FaultEvent, draw_fault_schedule
from repro.faults.injector import FaultInjector
from repro.obs.timeline import Timeline, TimelineEvent

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.array.controller import DiskArray
    from repro.obs.exposure import ExposureMonitor
    from repro.obs.registry import MetricsRegistry
    from repro.obs.slo import SloEngine
    from repro.obs.timeline import LatencyWindows
    from repro.sim import Simulator

_DISK_FACTORIES = {
    "toy": toy_disk,
    "hp_c3325": hp_c3325,
}


@dataclasses.dataclass(frozen=True)
class NemesisSpec:
    """What the nemesis throws at the array, and how fast it watches.

    Fault knobs are expected counts over the run, exactly as in
    :class:`~repro.faults.campaign.CampaignSpec` (a fractional part is a
    probability of one more event).  ``period_s`` is the gate/telemetry
    tick; ``sample_period_s`` paces the ``exposure.sample`` /
    ``latency.window`` timeline events.  ``mttdl_floor_h`` adds a second
    gate condition on the windowed achieved MTTDL next to the SLO rules.
    """

    workload: str = "snake"
    duration_s: float = 30.0
    ndisks: int = 5
    organization: str = "raid5"
    stripe_unit_sectors: int = 8
    bits_per_stripe: int = 1
    policy: str = "afraid"
    disk_model: str = "toy"
    idle_threshold_s: float = 0.05
    disk_failures: float = 2.0
    nvram_losses: float = 1.0
    latent_errors: float = 2.0
    spare_pool: int = 16
    repair_delay_s: float = 0.5
    detect_delay_s: float = 0.1
    period_s: float = 0.05
    sample_period_s: float = 0.5
    settle_s: float = 2.0
    max_faults: int = 16
    mttdl_floor_h: float | None = None

    def __post_init__(self) -> None:
        if self.disk_model not in _DISK_FACTORIES:
            raise ValueError(
                f"disk_model must be one of {sorted(_DISK_FACTORIES)}, got {self.disk_model!r}"
            )
        from repro.layout import get_organization

        get_organization(self.organization).validate(self.ndisks)
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if self.sample_period_s <= 0:
            raise ValueError("sample_period_s must be positive")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class ActiveFault:
    """One injected fault's lifecycle, keyed by its inject event id."""

    kind: str  # disk_failure | nvram_loss | latent_error
    injected_at: float
    event: TimelineEvent  # the fault.inject timeline event
    disk: int | None = None
    cleared_at: float | None = None
    resolution: str | None = None

    @property
    def open(self) -> bool:
        return self.cleared_at is None

    def open_for(self, now: float) -> float:
        return (self.cleared_at if self.cleared_at is not None else now) - self.injected_at


class ActiveFaultsTracker:
    """The open-fault inventory: what is hurting the array right now."""

    def __init__(self) -> None:
        self.active: dict[str, ActiveFault] = {}  # inject event id -> fault
        self.history: list[ActiveFault] = []

    def injected(self, fault: ActiveFault) -> None:
        self.active[fault.event.id] = fault
        self.history.append(fault)

    def cleared(self, event_id: str, now: float, resolution: str) -> ActiveFault | None:
        fault = self.active.pop(event_id, None)
        if fault is not None:
            fault.cleared_at = now
            fault.resolution = resolution
        return fault

    def open_faults(self) -> list[ActiveFault]:
        return sorted(self.active.values(), key=lambda fault: fault.event.seq)

    def counts(self) -> dict[str, int]:
        """Injected-fault counts by kind, over the whole run."""
        counts: dict[str, int] = {}
        for fault in self.history:
            counts[fault.kind] = counts.get(fault.kind, 0) + 1
        return counts

    def inventory_rows(self, now: float) -> list[list[str]]:
        """(id, kind, disk, open-for) rows of the open faults, for tables."""
        return [
            [
                fault.event.id,
                fault.kind,
                "-" if fault.disk is None else str(fault.disk),
                f"{fault.open_for(now):.3f}",
            ]
            for fault in self.open_faults()
        ]

    def __repr__(self) -> str:
        return f"<ActiveFaultsTracker {len(self.active)} open / {len(self.history)} total>"


class NemesisLoop:
    """The continuous fault loop: draw, gate, inject, correlate.

    Construct it with the array's live telemetry stack and call
    :meth:`start`; the loop ticks every ``spec.period_s`` of simulated
    time until ``spec.duration_s``.  After the horizon, keep calling
    :meth:`poll` from the drain phase so clears and recoveries recorded
    while the array settles still reach the timeline.
    """

    def __init__(
        self,
        sim: "Simulator",
        array: "DiskArray",
        spec: NemesisSpec,
        seed: int,
        *,
        timeline: Timeline,
        monitor: "ExposureMonitor",
        engine: "SloEngine",
        registry: "MetricsRegistry",
        latency_windows: "LatencyWindows | None" = None,
    ) -> None:
        self.sim = sim
        self.array = array
        self.spec = spec
        self.seed = seed
        self.timeline = timeline
        self.monitor = monitor
        self.engine = engine
        self.registry = registry
        self.latency_windows = latency_windows
        self.tracker = ActiveFaultsTracker()
        self.injector = FaultInjector(sim, array)

        events, _crashes = draw_fault_schedule(
            random.Random(seed),
            duration_s=spec.duration_s,
            ndisks=spec.ndisks,
            disk_failures=spec.disk_failures,
            nvram_losses=spec.nvram_losses,
            latent_errors=spec.latent_errors,
            max_faults=spec.max_faults,
        )
        self.pending: list[FaultEvent] = events  # time-sorted
        self.deferred: list[FaultEvent] = []  # due but held by the gate
        self.dropped: list[FaultEvent] = []  # still held at the horizon
        self.spares_left = spec.spare_pool
        self.holds = 0
        self.resumes = 0
        self._hold_event: TimelineEvent | None = None
        self._spare_seq = 0
        # Disk-failure inject events awaiting their strike's report/skip
        # (the injector strikes via a zero-delay timeout, so outcomes
        # appear one dispatch after scheduling).
        self._awaiting_strike: list[TimelineEvent] = []
        self._seen_reports = 0
        self._seen_skips = 0
        # Open NVRAM faults: inject event -> marks baseline to drain to.
        self._open_nvram: dict[str, tuple[TimelineEvent, int]] = {}
        self._open_gauge = registry.gauge(
            "nemesis_open_faults", "faults injected by the nemesis and not yet cleared"
        )
        self._degraded_gauge = registry.gauge(
            "degraded_disks", "members currently failed without an installed spare"
        )
        self._engine_done = False

    # -- lifecycle -------------------------------------------------------------------

    def start(self) -> None:
        """Spawn the loop as a simulation process."""
        self.sim.process(self._run(), name="nemesis.loop")

    def _run(self):
        spec = self.spec
        next_sample = 0.0
        while True:
            now = self.sim.now
            self.poll(now)
            self._gate_and_inject(now)
            if now + 1e-12 >= next_sample:
                self._sample(now)
                next_sample += spec.sample_period_s
            if now + spec.period_s > spec.duration_s:
                break
            yield self.sim.timeout(spec.period_s, name="nemesis.tick")
        self._close_horizon(self.sim.now)

    def poll(self, now: float) -> None:
        """One telemetry pass: publish, evaluate, ingest, settle clears.

        Safe to call after the loop ended (the drain phase does), except
        that once the engine is finished evaluation is skipped.
        """
        self.monitor.publish(now)
        self._degraded_gauge.set(len(self.array.failed_disks))
        self._open_gauge.set(len(self.tracker.active))
        if not self._engine_done:
            crossings = self.engine.evaluate(now, self.registry)
            self.timeline.ingest_slo_events(crossings)
        self._collect_strike_outcomes()
        self._check_nvram_drained(now)

    def finish_engine(self, now: float) -> None:
        """Close the SLO engine and fold its horizon recoveries in."""
        if not self._engine_done:
            self.timeline.ingest_slo_events(self.engine.finish(now))
            self._engine_done = True

    # -- the gate --------------------------------------------------------------------

    def _gated(self, now: float) -> bool:
        if self.engine.any_breached:
            return True
        floor = self.spec.mttdl_floor_h
        if floor is not None:
            mttdl = self.registry.value("windowed_mttdl_h")
            if mttdl is not None and mttdl < floor:
                return True
        return False

    def _gate_and_inject(self, now: float) -> None:
        gated = self._gated(now)
        if self._hold_event is not None and not gated:
            # Recovery: release everything the hold dammed up.
            released = list(self.deferred)
            self.deferred.clear()
            self.timeline.record(
                "nemesis.resume", now, track="nemesis", cause=self._hold_event,
                released=len(released), held_s=now - self._hold_event.time_s,
            )
            self.resumes += 1
            self._hold_event = None
            for fault in released:
                self._inject(fault, now)
        due: list[FaultEvent] = []
        while self.pending and self.pending[0].time_s <= now:
            due.append(self.pending.pop(0))
        if gated:
            if due:
                self.deferred.extend(due)
            if self.deferred and self._hold_event is None:
                breaches = self.timeline.open_breach_events()
                self._hold_event = self.timeline.record(
                    "nemesis.hold", now, track="nemesis",
                    cause=breaches[-1] if breaches else None,
                    deferred=len(self.deferred),
                )
                self.holds += 1
            return
        for fault in due:
            self._inject(fault, now)

    # -- injection -------------------------------------------------------------------

    def _inject(self, fault: FaultEvent, now: float) -> None:
        if fault.kind == "disk_failure":
            self._inject_disk_failure(fault, now)
        elif fault.kind == "nvram_loss":
            self._inject_nvram_loss(fault, now)
        elif fault.kind == "latent_error":
            self._inject_latent_error(fault, now)

    def _inject_disk_failure(self, fault: FaultEvent, now: float) -> None:
        inject = self.timeline.fault_injected(
            now, "disk_failure", disk=fault.disk, scheduled_at=fault.time_s
        )
        self.tracker.injected(
            ActiveFault(kind="disk_failure", injected_at=now, event=inject, disk=fault.disk)
        )
        self._awaiting_strike.append(inject)
        self.injector.fail_disk_at(fault.disk, now)
        self._schedule_repair(inject, fault.disk)

    def _schedule_repair(self, inject: TimelineEvent, disk: int) -> None:
        def repair(_event) -> None:
            # The strike may have been skipped (some other member already
            # down) or the disk already repaired; only a live degradation
            # on *this* member is ours to fix.
            if disk not in self.array.failed_disks:
                return
            now = self.sim.now
            if self.spares_left <= 0:
                self.timeline.record(
                    "rebuild.no_spare", now, track="rebuild", cause=inject, disk=disk
                )
                return
            self.spares_left -= 1
            self._spare_seq += 1
            spare = _DISK_FACTORIES[self.spec.disk_model](
                self.sim, name=f"nemesis.spare{self._spare_seq}"
            )
            manager = RebuildManager(self.sim, self.array, yield_to_foreground=False)
            self.timeline.rebuild_started(now, disk, cause=inject)
            done = manager.rebuild_onto(disk, spare)
            done.defused = True

            def on_rebuilt(rebuild_event) -> None:
                if not rebuild_event.ok:
                    return
                finished = self.sim.now
                self.timeline.rebuild_finished(
                    finished, disk, stripes=manager.stats.stripes_rebuilt
                )
                self.timeline.fault_cleared(
                    finished, inject, resolution="rebuilt", spare=spare.name
                )
                self.tracker.cleared(inject.id, finished, "rebuilt")

            done.add_callback(on_rebuilt)

        self.sim.timeout(self.spec.repair_delay_s, name="nemesis.repair").add_callback(repair)

    def _collect_strike_outcomes(self) -> None:
        """Match newly-arrived injector reports/skips to awaiting injects."""
        # Outcomes are stamped at collection time (the tick after the
        # strike) to keep the log monotonic; the strike instant rides
        # along as ``struck_at``.
        now = self.sim.now
        reports = self.injector.reports
        while self._seen_reports < len(reports):
            report = reports[self._seen_reports]
            self._seen_reports += 1
            inject = self._take_awaiting(report.disk)
            self.timeline.record(
                "fault.impact", now, track="faults", cause=inject,
                disk=report.disk, struck_at=report.at_time,
                dirty_stripes=report.dirty_stripes_at_failure,
                parity_lag_bytes=report.parity_lag_bytes_at_failure,
                lost_bytes=report.lost_data_bytes,
                predicted_bytes=report.predicted_loss_bytes,
            )
        skips = self.injector.skipped
        while self._seen_skips < len(skips):
            skip = skips[self._seen_skips]
            self._seen_skips += 1
            inject = self._take_awaiting(skip.disk)
            self.timeline.record(
                "fault.skipped", now, track="faults", cause=inject,
                disk=skip.disk, struck_at=skip.at_time, reason=skip.reason,
            )
            if inject is not None:
                # Nothing actually struck: close the fault immediately so
                # the open inventory only lists real damage.
                self.timeline.fault_cleared(now, inject, resolution="skipped")
                self.tracker.cleared(inject.id, now, "skipped")

    def _take_awaiting(self, disk: int) -> TimelineEvent | None:
        for index, event in enumerate(self._awaiting_strike):
            if event.attrs.get("disk") == disk:
                return self._awaiting_strike.pop(index)
        return None

    def _inject_nvram_loss(self, fault: FaultEvent, now: float) -> None:
        baseline = self.array.marks.count
        inject = self.timeline.fault_injected(
            now, "nvram_loss", scheduled_at=fault.time_s, marks_baseline=baseline
        )
        self.tracker.injected(
            ActiveFault(kind="nvram_loss", injected_at=now, event=inject)
        )
        self._open_nvram[inject.id] = (inject, baseline)
        self.injector.fail_mark_memory_at(now, auto_recover=True)

    def _check_nvram_drained(self, now: float) -> None:
        """An NVRAM fault is over once the §3.1 remark backlog drains."""
        if not self._open_nvram or self.array.marks.failed:
            return
        count = self.array.marks.count
        for event_id in list(self._open_nvram):
            inject, baseline = self._open_nvram[event_id]
            # The strike itself is a zero-delay timeout; don't declare the
            # backlog drained before it has even spiked.
            if now <= inject.time_s:
                continue
            if count <= baseline:
                del self._open_nvram[event_id]
                self.timeline.fault_cleared(
                    now, inject, resolution="backlog_drained", marks=count
                )
                self.tracker.cleared(event_id, now, "backlog_drained")

    def _inject_latent_error(self, fault: FaultEvent, now: float) -> None:
        layout = self.array.layout
        striped_sectors = layout.nstripes * layout.stripe_unit_sectors
        lba = min(int(fault.lba_fraction * striped_sectors), striped_sectors - 1)
        inject = self.timeline.fault_injected(
            now, "latent_error", disk=fault.disk, lba=lba, scheduled_at=fault.time_s
        )
        self.tracker.injected(
            ActiveFault(kind="latent_error", injected_at=now, event=inject, disk=fault.disk)
        )
        self.injector.inject_latent_error_at(fault.disk, lba, now)
        self.sim.timeout(self.spec.detect_delay_s, name="nemesis.detect").add_callback(
            lambda _event: self.sim.process(
                self._detect_latent(inject, fault.disk, lba), name="nemesis.lse"
            )
        )

    def _detect_latent(self, inject: TimelineEvent, disk: int, lba: int):
        """Scrub-style probe-and-heal, as the campaign engine does (§3.1)."""
        array = self.array

        def close(resolution: str, **attrs) -> None:
            self.timeline.fault_cleared(self.sim.now, inject, resolution=resolution, **attrs)
            self.tracker.cleared(inject.id, self.sim.now, resolution)

        if array.disks[disk].failed:
            close("disk_failed")
            return
        detected = False
        try:
            yield array.drivers[disk].submit(DiskIO(IoKind.READ, lba, 1))
        except LatentSectorError:
            detected = True
        except DiskFailedError:
            close("disk_failed")
            return
        try:
            yield array.drivers[disk].submit(DiskIO(IoKind.WRITE, lba, 1))
        except DiskFailedError:
            close("disk_failed")
            return
        healed = not array.disks[disk].latent_errors_within(lba, 1)
        close("healed" if healed else "unhealed", detected=detected, healed=healed)

    # -- telemetry samples -----------------------------------------------------------

    def _sample(self, now: float) -> None:
        registry = self.registry
        self.timeline.exposure_sample(
            now,
            dirty_stripes=registry.value("dirty_stripes", 0),
            parity_lag_bytes=registry.value("parity_lag_bytes", 0.0),
            scrub_backlog_marks=registry.value("scrub_backlog_marks", 0),
            windowed_unprotected_fraction=registry.value(
                "windowed_unprotected_fraction", 0.0
            ),
            windowed_mttdl_h=registry.value("windowed_mttdl_h", 0.0),
            windowed_mdlr_bytes_per_h=registry.value("windowed_mdlr_bytes_per_h", 0.0),
            open_faults=len(self.tracker.active),
        )
        if self.latency_windows is not None:
            self.latency_windows.sample(now, self.timeline)

    # -- horizon ---------------------------------------------------------------------

    def _close_horizon(self, now: float) -> None:
        """End of the injection window: pair the open hold, drop the queue."""
        if self._hold_event is not None:
            self.timeline.record(
                "nemesis.resume", now, track="nemesis", cause=self._hold_event,
                released=0, held_s=now - self._hold_event.time_s, at_horizon=True,
            )
            self.resumes += 1
            self._hold_event = None
        for fault in self.deferred + self.pending:
            self.dropped.append(fault)
            self.timeline.record(
                "nemesis.dropped", now, track="nemesis",
                fault=fault.kind, disk=fault.disk, scheduled_at=fault.time_s,
            )
        self.deferred.clear()
        self.pending.clear()

    def __repr__(self) -> str:
        return (
            f"<NemesisLoop seed={self.seed} {len(self.tracker.active)} open, "
            f"{len(self.pending)} pending, {len(self.deferred)} deferred, "
            f"holds={self.holds} resumes={self.resumes}>"
        )
