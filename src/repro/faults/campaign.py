"""Deterministic seeded fault campaigns with crash-recovery checking.

A campaign replays a workload against a fresh array while a seeded
schedule of faults — member-disk deaths, NVRAM (marking-memory) losses,
latent sector errors, and whole-box crashes/power losses — strikes it,
with spare-disk repairs following each failure after a technician delay.
After every event the :class:`~repro.faults.invariants.InvariantChecker`
compares the array's own loss prediction (the NVRAM marks, eq. (4))
against the functional twin's ground truth.

Crashes are simulated structurally: the run is cut into *segments* at
each crash point.  A segment's simulator and array simply stop (whatever
was in flight is lost); the next segment builds a fresh simulator at the
crash time, restores the NVRAM marks (non-volatile), the failed-member
state, and the latent sector set, re-attaches the same functional twin
(the platters), runs the §3.1 recovery scan, and resumes the remainder
of the trace at its original timestamps.

Everything — fault schedule, workload, simulation — derives from the
(seed, spec) pair, so two runs of the same campaign produce byte-
identical JSON reports.  That is the determinism gate CI enforces.
"""

from __future__ import annotations

import dataclasses
import json
import random
import typing

from repro.array.controller import DiskArray
from repro.array.factory import build_array
from repro.array.request import ArrayRequest
from repro.blocks import FunctionalArray
from repro.disk import DiskFailedError, DiskIO, IoKind, LatentSectorError, hp_c3325, toy_disk
from repro.ext.rebuild import RebuildManager
from repro.faults.injector import DiskFailureReport, FaultInjector
from repro.faults.invariants import InvariantChecker, InvariantResult
from repro.layout.base import UnitKind
from repro.nvram import sub_unit_of
from repro.obs import HistogramSet
from repro.policy import AlwaysRaid5Policy, BaselineAfraidPolicy, NeverScrubPolicy
from repro.sim import Simulator
from repro.traces import make_trace

_POLICIES = {
    "afraid": BaselineAfraidPolicy,
    "raid5": AlwaysRaid5Policy,
    "raid0": NeverScrubPolicy,
}

_DISK_FACTORIES = {
    "toy": toy_disk,
    "hp_c3325": hp_c3325,
}


@dataclasses.dataclass(frozen=True)
class CampaignSpec:
    """What a campaign throws at the array.

    Fault knobs are *expected counts over the run* (a fractional part is
    a probability of one more event), drawn at seeded-uniform times in
    the middle 90 % of the run; ``crash_points`` adds explicit power-loss
    times on top of the random ``crashes`` draws.
    """

    workload: str = "snake"
    duration_s: float = 6.0
    ndisks: int = 5
    organization: str = "raid5"
    stripe_unit_sectors: int = 8
    bits_per_stripe: int = 1
    policy: str = "afraid"
    disk_model: str = "toy"
    idle_threshold_s: float = 0.05
    disk_failures: float = 1.0
    nvram_losses: float = 0.0
    latent_errors: float = 0.0
    crashes: float = 0.0
    crash_points: tuple[float, ...] = ()
    spare_pool: int = 1
    repair_delay_s: float = 0.5
    settle_s: float = 2.0
    max_faults: int = 16

    def __post_init__(self) -> None:
        if self.policy not in _POLICIES:
            raise ValueError(f"policy must be one of {sorted(_POLICIES)}, got {self.policy!r}")
        if self.disk_model not in _DISK_FACTORIES:
            raise ValueError(
                f"disk_model must be one of {sorted(_DISK_FACTORIES)}, got {self.disk_model!r}"
            )
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        from repro.layout import get_organization

        get_organization(self.organization).validate(self.ndisks)
        if any(not 0.0 < point < self.duration_s for point in self.crash_points):
            raise ValueError("crash_points must fall strictly inside (0, duration_s)")

    def to_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["crash_points"] = list(self.crash_points)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignSpec":
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown campaign spec keys: {unknown} (known: {sorted(known)})")
        cleaned = dict(payload)
        if "crash_points" in cleaned:
            cleaned["crash_points"] = tuple(cleaned["crash_points"])
        return cls(**cleaned)

    @classmethod
    def from_file(cls, path) -> "CampaignSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault."""

    time_s: float
    kind: str  # disk_failure | nvram_loss | latent_error
    disk: int = 0
    lba_fraction: float = 0.0


def draw_fault_schedule(
    rng: random.Random,
    *,
    duration_s: float,
    ndisks: int,
    disk_failures: float = 0.0,
    nvram_losses: float = 0.0,
    latent_errors: float = 0.0,
    crashes: float = 0.0,
    crash_points: typing.Sequence[float] = (),
    max_faults: int = 16,
) -> tuple[list[FaultEvent], list[float]]:
    """Draw a seeded fault schedule (shared by campaigns and the nemesis).

    Fault knobs are expected counts over the run (a fractional part is a
    probability of one more event), drawn at seeded-uniform times in the
    middle 90 % of the run.  The rng call order is part of the contract:
    campaign reports are byte-diffed across reruns in CI.
    """

    def draw_times(expected: float) -> list[float]:
        count = int(expected)
        fraction = expected - count
        if fraction > 0.0 and rng.random() < fraction:
            count += 1
        count = min(count, max_faults)
        return sorted(
            round(rng.uniform(0.05, 0.95) * duration_s, 6) for _ in range(count)
        )

    events: list[FaultEvent] = []
    for time_s in draw_times(disk_failures):
        events.append(
            FaultEvent(time_s=time_s, kind="disk_failure", disk=rng.randrange(ndisks))
        )
    for time_s in draw_times(nvram_losses):
        events.append(FaultEvent(time_s=time_s, kind="nvram_loss"))
    for time_s in draw_times(latent_errors):
        events.append(
            FaultEvent(
                time_s=time_s,
                kind="latent_error",
                disk=rng.randrange(ndisks),
                lba_fraction=rng.random(),
            )
        )
    crash_times = sorted(set(list(crash_points) + draw_times(crashes)))
    events.sort(key=lambda event: (event.time_s, event.kind, event.disk))
    return events, crash_times


@dataclasses.dataclass
class CampaignReport:
    """Everything one seeded campaign run produced."""

    seed: int
    payload: dict

    @property
    def ok(self) -> bool:
        return bool(self.payload["summary"]["ok"])

    @property
    def violations(self) -> list[dict]:
        return [entry for entry in self.payload["invariants"] if not entry["ok"]]

    def to_json(self) -> str:
        """Byte-stable serialisation (the CI determinism gate diffs this)."""
        return json.dumps(self.payload, indent=2, sort_keys=True) + "\n"


class FaultCampaign:
    """One (spec, seed) campaign; :meth:`run` is deterministic and reusable."""

    def __init__(self, spec: CampaignSpec, seed: int) -> None:
        self.spec = spec
        self.seed = seed

    # -- construction helpers ------------------------------------------------------

    def _make_disk(self, sim: Simulator, name: str):
        return _DISK_FACTORIES[self.spec.disk_model](sim, name=name)

    def _build_array(self, sim: Simulator) -> DiskArray:
        spec = self.spec
        return build_array(
            sim,
            _POLICIES[spec.policy](),
            ndisks=spec.ndisks,
            stripe_unit_sectors=spec.stripe_unit_sectors,
            disk_factory=_DISK_FACTORIES[spec.disk_model],
            organization=spec.organization,
            with_functional=False,  # the twin is campaign-owned (survives crashes)
            idle_threshold_s=spec.idle_threshold_s,
            bits_per_stripe=spec.bits_per_stripe,
            name="campaign",
        )

    def _draw_schedule(self, rng: random.Random) -> tuple[list[FaultEvent], list[float]]:
        spec = self.spec
        return draw_fault_schedule(
            rng,
            duration_s=spec.duration_s,
            ndisks=spec.ndisks,
            disk_failures=spec.disk_failures,
            nvram_losses=spec.nvram_losses,
            latent_errors=spec.latent_errors,
            crashes=spec.crashes,
            crash_points=spec.crash_points,
            max_faults=spec.max_faults,
        )

    # -- the run -------------------------------------------------------------------

    def run(self) -> CampaignReport:
        spec = self.spec
        rng = random.Random(self.seed)
        events, crash_times = self._draw_schedule(rng)
        boundaries = (
            [0.0]
            + [time_s for time_s in crash_times if 0.0 < time_s < spec.duration_s]
            + [spec.duration_s]
        )

        # Campaign-level state threaded across crash segments.
        twin: FunctionalArray | None = None
        trace = None
        hists = HistogramSet()
        state = {
            "marks": [],  # NVRAM snapshot (non-volatile across crashes)
            "failed_disks": [],  # mirrored organizations survive several
            "latent": {},  # disk index -> bad LBAs (media defects persist)
            "spares_left": spec.spare_pool,
            "conservative": False,
        }
        event_log: list[dict] = []
        invariant_results: list[InvariantResult] = []
        all_reports: list[DiskFailureReport] = []
        skipped_strikes = 0
        requests = {"submitted": 0, "completed": 0, "failed": 0, "in_flight_at_crash": 0}
        failure_kinds: dict[str, int] = {}
        latent_repaired = 0

        nsegments = len(boundaries) - 1
        for index in range(nsegments):
            seg_start, seg_end = boundaries[index], boundaries[index + 1]
            final = index == nsegments - 1
            sim = Simulator(start_time=seg_start)
            array = self._build_array(sim)
            organization = array.organization
            # The functional twin's offset arithmetic assumes rotated
            # stripe units; mirrored and declustered organizations run
            # without it (and hence without byte-exact invariant checks).
            supports_twin = not (organization.mirrored or organization.declustered)
            if twin is None and supports_twin:
                twin = FunctionalArray(
                    array.layout,
                    sector_bytes=array.sector_bytes,
                    sub_units=spec.bits_per_stripe,
                )
            array.functional = twin
            array.attach_observability(histograms=hists)
            if trace is None:
                trace = make_trace(
                    spec.workload,
                    duration_s=spec.duration_s,
                    address_space_sectors=array.layout.total_data_sectors,
                    seed=self.seed,
                    allow_generic=True,
                )
            checker = InvariantChecker(array) if supports_twin else None
            injector = FaultInjector(sim, array)
            unit_sectors = array.layout.stripe_unit_sectors
            striped_sectors = array.layout.nstripes * unit_sectors
            disk_span_sectors = (
                array.layout.disk_sectors_used
                if organization.declustered
                else striped_sectors
            )

            # ---- restore carried state (this is the crash-restart path) ----
            if state["marks"]:
                array.marks.restore(state["marks"])
            for failed_disk in state["failed_disks"]:
                array.disks[failed_disk].fail()
                array.enter_degraded(failed_disk)
            for disk_index, lbas in state["latent"].items():
                for lba in lbas:
                    array.disks[disk_index].inject_latent_error(lba)

            def refresh_conservative() -> None:
                if state["conservative"] and not array.marks.failed and array.marks.count == 0:
                    state["conservative"] = False

            def schedule_repair(at_time: float, disk: int) -> None:
                def repair(_event) -> None:
                    if disk not in array.failed_disks:
                        return
                    if state["spares_left"] <= 0:
                        event_log.append(
                            {"t": sim.now, "kind": "repair_no_spare", "disk": disk}
                        )
                        return
                    spare = self._make_disk(sim, f"campaign.spare{disk}")
                    manager = RebuildManager(sim, array, yield_to_foreground=False)
                    rebuilt = manager.rebuild_onto(disk, spare)
                    rebuilt.defused = True

                    def on_rebuilt(rebuild_event) -> None:
                        if not rebuild_event.ok:
                            return
                        state["spares_left"] -= 1
                        if disk in state["failed_disks"]:
                            state["failed_disks"].remove(disk)
                        if array.marks.count:
                            # The rebuild made every physical stripe
                            # consistent; until the scrubber drains them
                            # the surviving marks over-approximate.
                            state["conservative"] = True
                        event_log.append(
                            {
                                "t": sim.now,
                                "kind": "rebuild_complete",
                                "disk": disk,
                                "stripes": manager.stats.stripes_rebuilt,
                                "marks_left": array.marks.count,
                            }
                        )
                        if checker is not None:
                            checker.check_marks_cover_twin()

                    rebuilt.add_callback(on_rebuilt)

                sim.timeout(max(0.0, at_time - sim.now), name="campaign.repair").add_callback(
                    repair
                )

            cursor = {"reports": 0, "skipped": 0}

            def on_disk_failure_checked(_event) -> None:
                nonlocal skipped_strikes
                refresh_conservative()
                while cursor["reports"] < len(injector.reports):
                    report = injector.reports[cursor["reports"]]
                    cursor["reports"] += 1
                    all_reports.append(report)
                    if checker is not None:
                        checker.check_disk_failure(report, conservative=state["conservative"])
                    if report.disk not in state["failed_disks"]:
                        state["failed_disks"].append(report.disk)
                    event_log.append(
                        {
                            "t": report.at_time,
                            "kind": "disk_failure",
                            "disk": report.disk,
                            "dirty_stripes": report.dirty_stripes_at_failure,
                            "predicted_bytes": report.predicted_loss_bytes,
                            "actual_bytes": report.lost_data_bytes,
                            "conservative": state["conservative"],
                        }
                    )
                    schedule_repair(report.at_time + spec.repair_delay_s, report.disk)
                while cursor["skipped"] < len(injector.skipped):
                    skip = injector.skipped[cursor["skipped"]]
                    cursor["skipped"] += 1
                    skipped_strikes += 1
                    event_log.append(
                        {
                            "t": skip.at_time,
                            "kind": "disk_failure_skipped",
                            "disk": skip.disk,
                            "reason": skip.reason,
                        }
                    )

            def on_nvram_lost(_event) -> None:
                state["conservative"] = True
                if checker is not None:
                    checker.check_nvram_remark()
                event_log.append(
                    {"t": sim.now, "kind": "nvram_loss", "remarked": array.marks.count}
                )

            def detect_latent(disk: int, lba: int):
                if array.disks[disk].failed:
                    event_log.append(
                        {"t": sim.now, "kind": "latent_error_skipped", "disk": disk, "lba": lba}
                    )
                    return
                detected = False
                try:
                    yield array.drivers[disk].submit(DiskIO(IoKind.READ, lba, 1))
                except LatentSectorError:
                    detected = True
                except DiskFailedError:
                    event_log.append(
                        {
                            "t": sim.now,
                            "kind": "latent_error_lost_with_disk",
                            "disk": disk,
                            "lba": lba,
                        }
                    )
                    return
                if checker is not None:
                    checker.check_latent_detected(disk, lba, detected)
                unit = array.layout.logical_of(disk, lba)
                stripe = unit.stripe
                row = lba - unit.disk_lba
                sub_unit = sub_unit_of(row, unit_sectors, spec.bits_per_stripe)
                is_parity = unit.kind is UnitKind.PARITY
                if twin is not None:
                    clean = is_parity or sub_unit not in twin.dirty_sub_units(stripe)
                else:
                    # No twin: the NVRAM marks are the (conservative)
                    # dirtiness oracle.
                    clean = is_parity or not array.marks.is_marked(stripe, sub_unit)
                # Scrub-style repair: rewrite the sector (its content
                # reconstructs through parity exactly when the rows are
                # clean — a dirty row's content is the AFRAID exposure).
                try:
                    yield array.drivers[disk].submit(DiskIO(IoKind.WRITE, lba, 1))
                except DiskFailedError:
                    return
                healed = not array.disks[disk].latent_errors_within(lba, 1)
                if checker is not None:
                    checker.check_latent_repair(disk, lba, healed, stripe, clean)
                event_log.append(
                    {
                        "t": sim.now,
                        "kind": "latent_error",
                        "disk": disk,
                        "lba": lba,
                        "detected": detected,
                        "recoverable": clean,
                        "healed": healed,
                    }
                )

            # ---- schedule this segment's faults -----------------------------
            if index > 0:
                event_log.append(
                    {
                        "t": seg_start,
                        "kind": "restart",
                        "restored_marks": array.marks.count,
                        "degraded": state["failed_disks"][0] if state["failed_disks"] else None,
                    }
                )
                if checker is not None:
                    checker.check_marks_cover_twin()
                array.recovery_scan()
                for failed_disk in state["failed_disks"]:
                    # The technician's clock restarts with the box.
                    schedule_repair(seg_start + spec.repair_delay_s, failed_disk)

            for event in events:
                if not seg_start <= event.time_s < seg_end:
                    continue
                if event.kind == "disk_failure":
                    injector.fail_disk_at(event.disk, event.time_s)
                    sim.timeout(
                        event.time_s - sim.now, name="campaign.check"
                    ).add_callback(on_disk_failure_checked)
                elif event.kind == "nvram_loss":
                    injector.fail_mark_memory_at(event.time_s, auto_recover=True)
                    sim.timeout(
                        event.time_s - sim.now, name="campaign.check"
                    ).add_callback(on_nvram_lost)
                elif event.kind == "latent_error":
                    lba = min(
                        int(event.lba_fraction * disk_span_sectors), disk_span_sectors - 1
                    )
                    injector.inject_latent_error_at(event.disk, lba, event.time_s)
                    sim.timeout(
                        event.time_s - sim.now, name="campaign.check"
                    ).add_callback(
                        lambda _event, disk=event.disk, lba=lba: sim.process(
                            detect_latent(disk, lba), name="campaign.lse"
                        )
                    )

            # ---- replay this segment's slice of the trace --------------------
            records = [
                record for record in trace if seg_start <= record.time_s < seg_end
            ]
            completions = []

            def feeder(records=records, completions=completions):
                for record in records:
                    if record.time_s > sim.now:
                        yield sim.timeout(record.time_s - sim.now)
                    request = ArrayRequest(
                        kind=record.kind,
                        offset_sectors=record.offset_sectors,
                        nsectors=record.nsectors,
                        sync=record.sync,
                    )
                    completion = array.submit(request)
                    completion.defused = True
                    completions.append(completion)

            feeder_proc = sim.process(feeder(), name="campaign.feeder")
            if final:
                sim.run_until_triggered(feeder_proc)
                from repro.harness.replay import gather

                sim.run_until_triggered(gather(sim, completions))
                horizon = max(spec.duration_s, sim.now) + spec.settle_s
                sim.run(until=horizon)
                # Let an in-flight spare rebuild finish: degraded_disk
                # flips to None when the spare installs; stop once a pass
                # dispatches nothing (no repair was ever scheduled).
                previous_dispatched = -1
                while (
                    array.degraded_disk is not None
                    and sim.events_dispatched != previous_dispatched
                ):
                    previous_dispatched = sim.events_dispatched
                    sim.run(until=sim.now + 1.0)
                # Drain remaining parity debt so the recovery invariant is
                # checked against a settled array (stop once the scrubber
                # makes no further progress, e.g. policy-excluded debt).
                previous = -1
                while (
                    array.degraded_disk is None
                    and array.marks.count
                    and array.marks.count != previous
                ):
                    previous = array.marks.count
                    array.request_scrub(force=True)
                    sim.run(until=sim.now + 1.0)
            else:
                sim.run(until=seg_end)
                event_log.append({"t": seg_end, "kind": "crash"})

            requests["submitted"] += len(completions)
            for completion in completions:
                if not completion.triggered:
                    requests["in_flight_at_crash"] += 1
                elif completion.ok:
                    requests["completed"] += 1
                else:
                    requests["failed"] += 1
                    name = type(completion.exception).__name__
                    failure_kinds[name] = failure_kinds.get(name, 0) + 1

            if final:
                refresh_conservative()
                if checker is not None:
                    checker.check_marks_cover_twin()
                    if array.degraded_disk is None:
                        checker.check_recovery_complete()
                        checker.check_parity_audit()
                array.finalize()
            else:
                # ---- snapshot state the crash must not destroy ------------
                state["marks"] = array.marks.snapshot() if not array.marks.failed else []
                state["failed_disks"] = list(array.failed_disks)
                state["latent"] = {
                    disk_index: disk.latent_error_lbas
                    for disk_index, disk in enumerate(array.disks)
                    if disk.latent_error_lbas and not disk.failed
                }

            latent_repaired += array.latent_sectors_repaired
            if checker is not None:
                invariant_results.extend(checker.results)

        # ---- reduce to the report ------------------------------------------
        violations = [result for result in invariant_results if not result.ok]
        summary = {
            "ok": not violations,
            "segments": nsegments,
            "disk_failures": len(all_reports),
            "skipped_strikes": skipped_strikes,
            "predicted_loss_bytes": sum(r.predicted_loss_bytes for r in all_reports),
            "actual_loss_bytes": sum(r.lost_data_bytes for r in all_reports),
            "spares_used": spec.spare_pool - state["spares_left"],
            "latent_sectors_repaired": latent_repaired,
            "final_degraded_disk": array.degraded_disk,
            "data_loss_events": len(array.data_loss_events),
            "final_marks": array.marks.count,
            "final_dirty_stripes": 0 if twin is None else len(twin.dirty_stripes),
            "request_classes": {
                name: hist.count for name, hist in sorted(hists.hists.items()) if hist.count
            },
            "data_lost_requests": failure_kinds.get("DataLostError", 0),
        }
        payload = {
            "campaign": {"seed": self.seed, "spec": spec.to_dict()},
            "schedule": [dataclasses.asdict(event) for event in events],
            "crash_points": [t for t in boundaries[1:-1]],
            "events": event_log,
            "requests": dict(requests, failure_kinds=dict(sorted(failure_kinds.items()))),
            "invariants": [result.as_payload() for result in invariant_results],
            "summary": summary,
        }
        return CampaignReport(seed=self.seed, payload=payload)


def run_campaign(spec: CampaignSpec, seed: int) -> CampaignReport:
    """Run one seeded campaign and return its report."""
    return FaultCampaign(spec, seed).run()
