"""Fault injection, seeded fault campaigns, and loss-invariant checking.

``repro.faults`` grew from a single injector module into a subsystem:

* :mod:`repro.faults.injector` — point faults (disk deaths, NVRAM loss,
  latent sector errors) against a live array, plus the eq.-(4) loss
  predictor;
* :mod:`repro.faults.invariants` — the paper's §3 loss claims as
  machine-checked assertions against the functional twin;
* :mod:`repro.faults.campaign` — deterministic seeded campaigns that
  compose the two with crash/power-loss segmentation, spare-pool
  repairs, and byte-stable JSON reports.
"""

from repro.faults.campaign import (
    CampaignReport,
    CampaignSpec,
    FaultCampaign,
    FaultEvent,
    draw_fault_schedule,
    run_campaign,
)
from repro.faults.nemesis import (
    ActiveFault,
    ActiveFaultsTracker,
    NemesisLoop,
    NemesisSpec,
)
from repro.faults.injector import (
    DiskFailureReport,
    FaultInjector,
    SkippedStrike,
    predicted_loss_bytes,
)
from repro.faults.invariants import (
    InvariantChecker,
    InvariantResult,
    InvariantViolation,
)

__all__ = [
    "ActiveFault",
    "ActiveFaultsTracker",
    "CampaignReport",
    "CampaignSpec",
    "DiskFailureReport",
    "FaultCampaign",
    "FaultEvent",
    "FaultInjector",
    "InvariantChecker",
    "InvariantResult",
    "InvariantViolation",
    "NemesisLoop",
    "NemesisSpec",
    "SkippedStrike",
    "draw_fault_schedule",
    "predicted_loss_bytes",
    "run_campaign",
]
