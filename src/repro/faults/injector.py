"""Fault injection: disk deaths, marking-memory loss, latent sectors.

These exercise the failure modes §3 analyses:

* a **single disk failure** while stripes are dirty loses exactly the
  dirty slices of one stripe unit per dirty stripe (unless the lost unit
  was parity);
* a **marking-memory failure** forces a conservative whole-array parity
  rebuild (§3.1);
* a **latent sector error** makes one sector unreadable until the
  scrubber (or any write) heals it by rewriting.

Injectors operate on arrays built with a functional twin
(``with_functional=True``), so losses are measured in actual bytes, not
just predicted by the formulas — letting tests check formula against fact.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.array.controller import DiskArray
from repro.nvram import sub_unit_extent
from repro.sim import Simulator

if typing.TYPE_CHECKING:  # pragma: no cover - optional observability
    from repro.obs import MetricsRegistry, Tracer


@dataclasses.dataclass(frozen=True)
class DiskFailureReport:
    """What a single injected disk failure cost."""

    disk: int
    at_time: float
    dirty_stripes_at_failure: int
    parity_lag_bytes_at_failure: float
    lost_data_bytes: int
    #: The eq.-(4) prediction captured from the NVRAM marks in the same
    #: instant, before the twin was destroyed — what the invariant
    #: checker compares ``lost_data_bytes`` against.
    predicted_loss_bytes: int = 0

    @property
    def any_loss(self) -> bool:
        return self.lost_data_bytes > 0


@dataclasses.dataclass(frozen=True)
class SkippedStrike:
    """A disk-failure injection that found no healthy target."""

    disk: int
    at_time: float
    reason: str


class FaultInjector:
    """Schedules failures against one array."""

    def __init__(self, sim: Simulator, array: DiskArray) -> None:
        self.sim = sim
        self.array = array
        self.reports: list[DiskFailureReport] = []
        self.skipped: list[SkippedStrike] = []
        #: Optional fault-event tracer and metrics registry; both inherit
        #: whatever the array has at construction time, overridable after.
        self.tracer: "Tracer | None" = array.tracer
        self.registry: "MetricsRegistry | None" = array.registry

    def fail_disk_at(self, disk: int, at_time: float) -> None:
        """Kill member ``disk`` at simulated time ``at_time``.

        The mechanical disk starts erroring, the array drops into
        degraded mode (reads reconstruct through parity, exactly as after
        :meth:`repro.ext.rebuild.RebuildManager.fail_and_rebuild`), and,
        if a functional twin is attached, its contents are destroyed; a
        loss report with the matching eq.-(4) prediction is recorded.

        A strike against an already-failed member — or one the degraded
        organization could not absorb (a second RAID 5 failure, a mirror
        pair's partner on RAID 1/0), where destroying more data would
        fabricate a bogus loss report — is a no-op recorded in
        :attr:`skipped` with a traced warning.  Organizations that survive
        several failures (RAID 1/0, RAID 1+5) take the additional strikes.
        """
        if not 0 <= disk < self.array.ndisks:
            raise ValueError(f"disk {disk} out of range")
        if at_time < self.sim.now:
            raise ValueError("cannot schedule a failure in the past")

        def strike(_event) -> None:
            array = self.array
            already_failed = array.failed_disks
            survivable = array.organization.can_absorb((*already_failed, disk))
            if array.disks[disk].failed or (already_failed and not survivable):
                reason = (
                    f"disk {disk} already failed"
                    if array.disks[disk].failed
                    else f"array already degraded on disk {array.degraded_disk}"
                )
                self.skipped.append(SkippedStrike(disk=disk, at_time=self.sim.now, reason=reason))
                if self.tracer is not None:
                    self.tracer.instant(
                        "disk_failure_skipped", track="faults", category="fault",
                        disk=disk, reason=reason,
                    )
                if self.registry is not None:
                    self.registry.counter(
                        "disk_failures_skipped_total",
                        "disk-failure injections dropped on an unhealthy target",
                    ).inc()
                return
            predicted = predicted_loss_bytes(array, disk)
            array.disks[disk].fail()
            dirty = array.dirty_stripe_count
            lag = array.parity_lag_bytes
            lost = 0
            if array.functional is not None:
                lost = array.functional.lost_data_bytes(disk)
                array.functional.fail_disk(disk)
            array.enter_degraded(disk)
            self.reports.append(
                DiskFailureReport(
                    disk=disk,
                    at_time=self.sim.now,
                    dirty_stripes_at_failure=dirty,
                    parity_lag_bytes_at_failure=lag,
                    lost_data_bytes=lost,
                    predicted_loss_bytes=predicted,
                )
            )
            if self.tracer is not None:
                self.tracer.instant(
                    "disk_failure", track="faults", category="fault",
                    disk=disk, dirty=dirty, lag_bytes=lag, lost_bytes=lost,
                )
            if self.registry is not None:
                self.registry.counter(
                    "disk_failures_total", "injected member-disk failures"
                ).inc()

        self.sim.timeout(at_time - self.sim.now, name=f"fail.d{disk}").add_callback(strike)

    def fail_mark_memory_at(self, at_time: float, auto_recover: bool = True) -> None:
        """Lose the NVRAM marks at ``at_time``.

        With ``auto_recover`` the array immediately starts the §3.1
        recovery: mark everything, rebuild parity array-wide.
        """
        if at_time < self.sim.now:
            raise ValueError("cannot schedule a failure in the past")

        def strike(_event) -> None:
            self.array.marks.fail()
            if self.tracer is not None:
                self.tracer.instant(
                    "nvram_failure", track="faults", category="fault",
                    auto_recover=auto_recover,
                )
            if self.registry is not None:
                self.registry.counter(
                    "nvram_failures_total", "injected marking-memory failures"
                ).inc()
            if auto_recover:
                self.array.recover_mark_memory()

        self.sim.timeout(at_time - self.sim.now, name="fail.nvram").add_callback(strike)

    def inject_latent_error_at(self, disk: int, lba: int, at_time: float) -> None:
        """Flip sector ``lba`` of member ``disk`` unreadable at ``at_time``.

        A no-op (with a traced warning) if the member has already failed
        outright by then — a dead disk has no individually bad sectors.
        """
        if not 0 <= disk < self.array.ndisks:
            raise ValueError(f"disk {disk} out of range")
        if at_time < self.sim.now:
            raise ValueError("cannot schedule a failure in the past")

        def strike(_event) -> None:
            target = self.array.disks[disk]
            if target.failed:
                if self.tracer is not None:
                    self.tracer.instant(
                        "latent_error_skipped", track="faults", category="fault",
                        disk=disk, lba=lba,
                    )
                return
            target.inject_latent_error(lba)
            if self.tracer is not None:
                self.tracer.instant(
                    "latent_error", track="faults", category="fault",
                    disk=disk, lba=lba,
                )
            if self.registry is not None:
                self.registry.counter(
                    "latent_errors_total", "injected latent sector errors"
                ).inc()

        self.sim.timeout(at_time - self.sim.now, name=f"lse.d{disk}").add_callback(strike)


def predicted_loss_bytes(array: DiskArray, failed_disk: int) -> int:
    """Eq.-(4)-style prediction of loss for a failure of ``failed_disk`` now.

    Per NVRAM mark whose deferred work the failure makes unrecoverable:
    the marked slice of one stripe unit.  With one bit per stripe that is
    a whole stripe unit per dirty stripe (the paper's headline rate); with
    ``bits_per_stripe = M > 1`` each mark contributes only its 1/M
    horizontal slice.  Compare with
    :class:`DiskFailureReport.lost_data_bytes` (the functional twin's
    ground truth).

    What makes a mark exposed depends on the organization:

    * RAID 5 (rotated or declustered): any mark whose stripe's parity is
      *not* on the failed disk (for declustered layouts the failed disk
      must be a member of the stripe at all);
    * RAID 1 / RAID 1/0 with deferred mirror copy: marks whose stripe
      keeps a data (primary) unit on the failed disk — the mirror copy
      is stale, so the slice's fresh content dies with the primary;
    * RAID 1+5: data is always mirrored inline (only parity defers), so
      a mark is only exposed when the strike kills a whole pair holding
      one of the stripe's data units.
    """
    layout = array.layout
    organization = array.organization
    bits = array.marks.bits_per_stripe

    def mark_exposed(stripe: int) -> bool:
        if organization.mirrored:
            if organization.has_parity:
                partner = layout.mirror_disk(failed_disk)
                if not array.disks[partner].failed:
                    return False
                return layout.parity_disk(stripe) not in (failed_disk, partner)
            return any(
                unit.disk == failed_disk for unit in layout.data_units(stripe)
            )
        if organization.declustered and failed_disk not in layout.stripe_members(stripe):
            return False
        return layout.parity_disk(stripe) != failed_disk

    if bits == 1:
        return array.unit_bytes * sum(
            1 for stripe in array.marks.marked_stripes if mark_exposed(stripe)
        )
    unit_sectors = layout.stripe_unit_sectors
    sector_bytes = array.sector_bytes
    lost = 0
    for stripe, sub_unit in array.marks.marks_in_order():
        if mark_exposed(stripe):
            _start, count = sub_unit_extent(sub_unit, unit_sectors, bits)
            lost += count * sector_bytes
    return lost
