"""Machine-checked loss invariants: the paper's §3 claims as assertions.

After every injected fault event the campaign engine asks this checker
to compare what the array *says* (NVRAM marks, the eq.-(4) prediction)
with what the functional twin *proves* (actual unrecoverable bytes):

* ``disk_failure_loss``: actual lost bytes equal the sub-unit-aware
  prediction captured in the same instant — or are bounded above by it
  while the marks are deliberately conservative (after an NVRAM loss or
  a rebuild, when marked stripes may in fact be consistent);
* ``zero_loss_when_clean``: no dirty stripes at failure time ⇒ zero loss;
* ``nvram_remark``: a marking-memory loss re-marks the *whole* array
  (§3.1's conservative recovery);
* ``marks_cover_twin``: every stale-parity slice the twin knows about is
  marked in NVRAM (marks may over-approximate, never under-approximate);
* ``recovery_complete`` / ``parity_audit``: after recovery drains, no
  marks remain and every clean stripe's parity xor-checks.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.array.controller import DiskArray

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import DiskFailureReport


class InvariantViolation(AssertionError):
    """A checked invariant did not hold."""


@dataclasses.dataclass(frozen=True)
class InvariantResult:
    """One evaluated invariant."""

    name: str
    ok: bool
    time_s: float
    detail: dict

    def as_payload(self) -> dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "time_s": self.time_s,
            "detail": self.detail,
        }


class InvariantChecker:
    """Evaluates the loss invariants against one array + twin."""

    def __init__(self, array: DiskArray, fail_fast: bool = False) -> None:
        if array.functional is None:
            raise ValueError("invariant checking needs an array with a functional twin")
        self.array = array
        self.fail_fast = fail_fast
        self.results: list[InvariantResult] = []

    @property
    def violations(self) -> list[InvariantResult]:
        return [result for result in self.results if not result.ok]

    @property
    def ok(self) -> bool:
        return not self.violations

    def _record(self, name: str, ok: bool, **detail) -> InvariantResult:
        result = InvariantResult(name=name, ok=bool(ok), time_s=self.array.sim.now, detail=detail)
        self.results.append(result)
        if not ok and self.fail_fast:
            raise InvariantViolation(f"{name} at t={result.time_s:.6f}: {detail}")
        return result

    # -- per-event checks ---------------------------------------------------------

    def check_disk_failure(
        self, report: "DiskFailureReport", conservative: bool = False
    ) -> None:
        """Actual loss equals (or, conservatively, is bounded by) prediction."""
        predicted = report.predicted_loss_bytes
        actual = report.lost_data_bytes
        if conservative:
            # The marks over-approximate (post-NVRAM-loss remark, or
            # post-rebuild debt the scrubber has not drained): the
            # prediction is an upper bound, not an equality.
            ok = actual <= predicted
        else:
            ok = actual == predicted
        self._record(
            "disk_failure_loss", ok,
            disk=report.disk, predicted_bytes=predicted, actual_bytes=actual,
            conservative=conservative,
        )
        if report.dirty_stripes_at_failure == 0:
            self._record(
                "zero_loss_when_clean", actual == 0,
                disk=report.disk, actual_bytes=actual,
            )

    def check_nvram_remark(self) -> None:
        """§3.1: after losing the marks, *everything* must be marked."""
        marks = self.array.marks
        expected = marks.nstripes * marks.bits_per_stripe
        self._record(
            "nvram_remark", marks.count == expected,
            marks=marks.count, expected=expected,
        )

    def check_marks_cover_twin(self) -> None:
        """NVRAM marks must be a superset of the twin's stale slices."""
        functional = self.array.functional
        marks = self.array.marks
        uncovered = 0
        for stripe in functional.dirty_stripes:
            for sub_unit in functional.dirty_sub_units(stripe):
                if not marks.is_marked(stripe, sub_unit):
                    uncovered += 1
        self._record("marks_cover_twin", uncovered == 0, uncovered=uncovered)

    def check_latent_detected(self, disk: int, lba: int, detected: bool) -> None:
        """A read touching a latent sector must surface the media error."""
        self._record("latent_error_detected", detected, disk=disk, lba=lba)

    def check_latent_repair(
        self, disk: int, lba: int, healed: bool, stripe: int, recoverable: bool
    ) -> None:
        """A rewrite must heal the sector (content is exact iff the rows
        were clean — a dirty row's content is the AFRAID exposure)."""
        self._record(
            "latent_error_healed", healed,
            disk=disk, lba=lba, stripe=stripe, recoverable=recoverable,
        )

    # -- whole-array checks -------------------------------------------------------

    def check_recovery_complete(self) -> None:
        """After a recovery scan drains: no parity debt left anywhere."""
        marks = self.array.marks
        self._record("recovery_complete", marks.count == 0, marks=marks.count)

    def check_parity_audit(self) -> bool:
        """Every twin-clean stripe's parity must xor-check exactly.

        Only meaningful while no member of the twin's store is failed
        (reads of a failed member raise); returns False without recording
        anything when the audit cannot run.
        """
        functional = self.array.functional
        if functional.store.failed_disks:
            return False
        bad = 0
        for stripe in range(functional.layout.nstripes):
            if functional.dirty_sub_units(stripe):
                continue
            if not functional.parity_consistent(stripe):
                bad += 1
        self._record("parity_audit", bad == 0, inconsistent_clean_stripes=bad)
        return True
