"""Declarative availability SLOs evaluated against the metrics registry.

A rule is one comparison on one registry metric — the same shape as the
predicate the MTTDL_x policy enforces internally:

    parity_lag_bytes < 5e6
    achieved_mttdl_h > 200000
    dirty_stripes <= 20

The :class:`SloEngine` evaluates its rules on a clock (the exposure
poller's), tracks which are currently breached, accounts breach time, and
— when given a :class:`~repro.obs.Tracer` — emits ``slo.breach`` /
``slo.recovery`` instants on an ``slo`` track, so breach episodes line up
against the write bursts that caused them in the trace viewer.

A rule whose metric nothing has published yet is simply skipped: rules
may name gauges (e.g. ``windowed_mttdl_h``) that only exist once the
poller first fires.
"""

from __future__ import annotations

import dataclasses
import re
import typing

from repro.obs.registry import MetricsRegistry

if typing.TYPE_CHECKING:  # pragma: no cover - optional observability
    from repro.obs.tracer import Tracer

#: Comparison operators a rule may use, longest first so the parser
#: never splits ``<=`` into ``<`` + garbage.
_OPS: dict[str, typing.Callable[[float, float], bool]] = {
    "<=": lambda value, threshold: value <= threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<": lambda value, threshold: value < threshold,
    ">": lambda value, threshold: value > threshold,
}

_RULE_RE = re.compile(
    r"^\s*(?P<metric>[A-Za-z_][A-Za-z0-9_]*)\s*"
    r"(?P<op><=|>=|<|>)\s*"
    r"(?P<threshold>[^\s<>]+)\s*$"
)


@dataclasses.dataclass(frozen=True)
class SloRule:
    """One objective: ``metric op threshold`` must hold."""

    metric: str
    op: str
    threshold: float

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown operator {self.op!r} (use <, <=, >, >=)")

    @classmethod
    def parse(cls, text: str) -> "SloRule":
        """Parse ``"metric < threshold"`` (as given to ``--slo``)."""
        match = _RULE_RE.match(text)
        if match is None:
            raise ValueError(
                f"cannot parse SLO rule {text!r}: expected 'metric_name < threshold', "
                "with one of < <= > >= and a numeric threshold"
            )
        try:
            threshold = float(match.group("threshold"))
        except ValueError:
            raise ValueError(
                f"cannot parse SLO rule {text!r}: threshold "
                f"{match.group('threshold')!r} is not a number"
            ) from None
        return cls(metric=match.group("metric"), op=match.group("op"), threshold=threshold)

    def ok(self, value: float) -> bool:
        """Does ``value`` satisfy the objective?"""
        return _OPS[self.op](value, self.threshold)

    def describe(self) -> str:
        return f"{self.metric} {self.op} {self.threshold:g}"


@dataclasses.dataclass(frozen=True)
class SloEvent:
    """A rule crossing its threshold, in either direction."""

    time_s: float
    rule: SloRule
    kind: str  # "breach" | "recovery"
    value: float


class SloEngine:
    """Evaluates a set of rules over time and keeps breach accounting."""

    def __init__(self, rules: typing.Sequence[SloRule], tracer: "Tracer | None" = None) -> None:
        self.rules = list(rules)
        self.tracer = tracer
        self.events: list[SloEvent] = []
        self._breached_since: dict[SloRule, float] = {}
        self._breach_time: dict[SloRule, float] = {rule: 0.0 for rule in self.rules}
        self._breach_count: dict[SloRule, int] = {rule: 0 for rule in self.rules}
        self._last_value: dict[SloRule, float] = {}
        self._open_at_finish: set[SloRule] = set()
        self._evaluations = 0
        self._finished = False

    def evaluate(self, now: float, registry: MetricsRegistry) -> list[SloEvent]:
        """Check every rule against the registry; return new crossings."""
        if self._finished:
            raise RuntimeError("engine already finished")
        self._evaluations += 1
        crossings: list[SloEvent] = []
        for rule in self.rules:
            value = registry.value(rule.metric)
            if value is None:
                continue  # metric not published yet
            self._last_value[rule] = value
            breached = not rule.ok(value)
            was_breached = rule in self._breached_since
            if breached and not was_breached:
                self._breached_since[rule] = now
                self._breach_count[rule] += 1
                crossings.append(SloEvent(now, rule, "breach", value))
            elif not breached and was_breached:
                since = self._breached_since.pop(rule)
                self._breach_time[rule] += now - since
                crossings.append(SloEvent(now, rule, "recovery", value))
        if crossings:
            self.events.extend(crossings)
            if self.tracer is not None:
                for event in crossings:
                    self.tracer.instant(
                        f"slo.{event.kind}",
                        track="slo",
                        category="slo",
                        rule=event.rule.describe(),
                        value=event.value,
                    )
        return crossings

    def finish(self, now: float) -> list[SloEvent]:
        """Close open breach episodes at the horizon.

        Every still-open breach gets a ``recovery`` event stamped at
        ``now`` (so breach dwell computed *from the event stream* is
        exact at shutdown, not just the internal accounting), and the
        emitted events are returned for timeline ingestion.  The rules
        themselves still report ``BREACHED`` in :meth:`summary_rows` —
        the episode was censored by the horizon, not genuinely recovered.
        """
        if self._finished:
            raise RuntimeError("engine already finished")
        self._finished = True
        closings: list[SloEvent] = []
        for rule, since in sorted(
            self._breached_since.items(), key=lambda item: self.rules.index(item[0])
        ):
            self._breach_time[rule] += now - since
            self._open_at_finish.add(rule)
            closings.append(
                SloEvent(now, rule, "recovery", self._last_value.get(rule, float("nan")))
            )
        self._breached_since.clear()
        if closings:
            self.events.extend(closings)
            if self.tracer is not None:
                for event in closings:
                    self.tracer.instant(
                        "slo.recovery",
                        track="slo",
                        category="slo",
                        rule=event.rule.describe(),
                        value=event.value,
                        at_finish=True,
                    )
        return closings

    # -- accounting -------------------------------------------------------------------

    def is_breached(self, rule: SloRule) -> bool:
        return rule in self._breached_since or rule in self._open_at_finish

    @property
    def any_breached(self) -> bool:
        """Is any rule breached right now?  (The nemesis gate's question.)"""
        return bool(self._breached_since)

    def breach_time_s(self, rule: SloRule, now: float | None = None) -> float:
        """Total seconds ``rule`` has spent breached (open episode included
        when ``now`` is given)."""
        total = self._breach_time[rule]
        since = self._breached_since.get(rule)
        if since is not None and now is not None:
            total += now - since
        return total

    def breach_count(self, rule: SloRule) -> int:
        return self._breach_count[rule]

    @property
    def any_breached_ever(self) -> bool:
        return any(count > 0 for count in self._breach_count.values())

    def summary_rows(self) -> list[list[str]]:
        """Per-rule rows (rule, status, breaches, breach seconds) for tables."""
        rows = []
        for rule in self.rules:
            status = "BREACHED" if self.is_breached(rule) else (
                "met" if self._breach_count[rule] == 0 else "recovered"
            )
            rows.append(
                [
                    rule.describe(),
                    status,
                    str(self._breach_count[rule]),
                    f"{self._breach_time[rule]:.3f}",
                ]
            )
        return rows

    @classmethod
    def table_header(cls) -> list[str]:
        return ["rule", "status", "breaches", "breached (s)"]

    def __repr__(self) -> str:
        return (
            f"<SloEngine {len(self.rules)} rules, {len(self.events)} events, "
            f"{len(self._breached_since)} currently breached>"
        )
