"""Bounded-memory structured tracing for simulated runs.

A :class:`Tracer` collects three record kinds, all stamped with simulated
time:

* **spans** — named intervals on a *track* (client requests, scrub
  passes, individual disk commands);
* **instants** — point events (fault injections, policy decisions);
* **counters** — sampled numeric series (dirty stripes, parity lag).

Records live in one bounded list; once ``max_records`` is reached new
records are dropped and counted (``dropped``), so tracing a pathological
run can never exhaust memory.  Export targets:

* :meth:`chrome_trace` / :meth:`write_chrome` — the Chrome trace-event
  JSON format, loadable in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``.  Tracks become named threads; counters become
  counter tracks.
* :meth:`write_jsonl` — one self-describing JSON object per line, for
  ad-hoc analysis with standard tools.

The tracer is *pull*-attached: components hold an optional ``tracer``
attribute, ``None`` by default, and every instrumentation site is gated
on a single ``is not None`` check — the same near-free pattern as the
kernel's own :meth:`~repro.sim.Simulator.set_trace` hook.
:meth:`attach_kernel` installs the tracer on that kernel hook too, turning
every event dispatch into an instant record (high volume; the record
bound is the safety net).
"""

from __future__ import annotations

import contextlib
import json
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim import Simulator

# Record layouts (plain tuples, kept small — a trace can hold millions):
#   ("X", start_s, duration_s, name, track, category, args_or_None)
#   ("i", time_s, name, track, category, args_or_None)
#   ("C", time_s, name, value)
_SPAN = "X"
_INSTANT = "i"
_COUNTER = "C"


class SpanToken(typing.NamedTuple):
    """An open span, returned by :meth:`Tracer.begin`."""

    start_s: float
    name: str
    track: str
    category: str
    args: dict | None


class Tracer:
    """Collects trace records against a simulator clock."""

    def __init__(self, sim: "Simulator | None" = None, max_records: int = 1_000_000) -> None:
        if max_records < 1:
            raise ValueError(f"max_records must be >= 1, got {max_records}")
        self.sim = sim
        self.max_records = max_records
        self.records: list[tuple] = []
        self.dropped = 0
        self._kernel_hooked: "Simulator | None" = None

    def bind(self, sim: "Simulator") -> None:
        """Set (or replace) the simulator whose clock stamps records."""
        self.sim = sim

    @property
    def now(self) -> float:
        if self.sim is None:
            raise RuntimeError("tracer is not bound to a simulator")
        return self.sim.now

    # -- recording ------------------------------------------------------------------

    def _append(self, record: tuple) -> None:
        if len(self.records) < self.max_records:
            self.records.append(record)
        else:
            self.dropped += 1

    def begin(
        self, name: str, track: str = "main", category: str = "", **args
    ) -> SpanToken:
        """Open a span; close it with :meth:`end`.  Nothing is recorded
        until the span ends (open spans cost no record slot)."""
        return SpanToken(self.now, name, track, category, args or None)

    def end(self, token: SpanToken) -> None:
        """Close a span opened by :meth:`begin`."""
        self._append(
            (_SPAN, token.start_s, self.now - token.start_s, token.name, token.track,
             token.category, token.args)
        )

    @contextlib.contextmanager
    def span(self, name: str, track: str = "main", category: str = "", **args):
        """``with tracer.span(...):`` — records the block as one span.

        Safe inside simulation process generators: the block stays open
        across ``yield`` suspensions and closes at simulated exit time.
        """
        token = self.begin(name, track, category, **args)
        try:
            yield token
        finally:
            self.end(token)

    def complete(
        self,
        name: str,
        start_s: float,
        duration_s: float,
        track: str = "main",
        category: str = "",
        **args,
    ) -> None:
        """Record a span retroactively from known timestamps (the cheapest
        form for hot paths that already track their own times)."""
        self._append((_SPAN, start_s, duration_s, name, track, category, args or None))

    def instant(self, name: str, track: str = "main", category: str = "", **args) -> None:
        """Record a point event."""
        self._append((_INSTANT, self.now, name, track, category, args or None))

    def counter(self, name: str, value: float) -> None:
        """Record one sample of the numeric series ``name``."""
        self._append((_COUNTER, self.now, name, value))

    # -- kernel attachment -------------------------------------------------------------

    def attach_kernel(self, sim: "Simulator | None" = None) -> None:
        """Record every kernel event dispatch as an instant (category
        ``kernel``).  High-volume; bounded by ``max_records``."""
        target = sim if sim is not None else self.sim
        if target is None:
            raise RuntimeError("no simulator to attach to")
        self.bind(target)

        def hook(when: float, event) -> None:
            self._append((_INSTANT, when, event.name or type(event).__name__,
                          "kernel", "kernel", None))

        target.set_trace(hook)
        self._kernel_hooked = target

    def detach_kernel(self) -> None:
        """Remove the kernel dispatch hook installed by :meth:`attach_kernel`."""
        if self._kernel_hooked is not None:
            self._kernel_hooked.set_trace(None)
            self._kernel_hooked = None

    # -- introspection ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def counter_series(self, name: str) -> list[tuple[float, float]]:
        """All (time_s, value) samples of counter ``name``, in order."""
        return [(r[1], r[3]) for r in self.records if r[0] == _COUNTER and r[2] == name]

    def spans_on(self, track: str) -> list[tuple]:
        """All span records on ``track``, in completion order."""
        return [r for r in self.records if r[0] == _SPAN and r[4] == track]

    def instants_named(self, name: str) -> list[tuple]:
        """All instant records called ``name``, in order."""
        return [r for r in self.records if r[0] == _INSTANT and r[2] == name]

    # -- export ----------------------------------------------------------------------------

    #: Chrome trace timestamps are microseconds.
    _US = 1e6

    def chrome_trace(self) -> dict:
        """The trace as a Chrome trace-event JSON object.

        Spans become complete ("X") events, instants "i" events, counters
        "C" events; each track becomes a named thread of process 1 so
        Perfetto shows them as labelled rows.
        """
        events: list[dict] = []
        tids: dict[str, int] = {}

        def tid_of(track: str) -> int:
            tid = tids.get(track)
            if tid is None:
                tid = len(tids) + 1
                tids[track] = tid
                events.append(
                    {
                        "ph": "M",
                        "name": "thread_name",
                        "pid": 1,
                        "tid": tid,
                        "args": {"name": track},
                    }
                )
            return tid

        for record in self.records:
            kind = record[0]
            if kind == _SPAN:
                _, start_s, duration_s, name, track, category, args = record
                event = {
                    "ph": "X",
                    "name": name,
                    "cat": category or "span",
                    "pid": 1,
                    "tid": tid_of(track),
                    "ts": start_s * self._US,
                    "dur": duration_s * self._US,
                }
                if args:
                    event["args"] = args
                events.append(event)
            elif kind == _INSTANT:
                _, time_s, name, track, category, args = record
                event = {
                    "ph": "i",
                    "s": "t",  # thread-scoped instant
                    "name": name,
                    "cat": category or "instant",
                    "pid": 1,
                    "tid": tid_of(track),
                    "ts": time_s * self._US,
                }
                if args:
                    event["args"] = args
                events.append(event)
            else:  # _COUNTER
                _, time_s, name, value = record
                events.append(
                    {
                        "ph": "C",
                        "name": name,
                        "cat": "counter",
                        "pid": 1,
                        "ts": time_s * self._US,
                        "args": {"value": value},
                    }
                )
        payload = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"source": "repro.obs", "dropped_records": self.dropped},
        }
        return payload

    def write_chrome(self, path) -> None:
        """Write :meth:`chrome_trace` JSON to ``path``."""
        with open(path, "w") as handle:
            json.dump(self.chrome_trace(), handle)

    def write_jsonl(self, path) -> None:
        """Write one JSON object per record to ``path``.

        Objects carry a ``kind`` of ``span`` / ``instant`` / ``counter``
        and explicit field names — grep/jq-friendly.
        """
        with open(path, "w") as handle:
            for record in self.records:
                kind = record[0]
                if kind == _SPAN:
                    _, start_s, duration_s, name, track, category, args = record
                    obj = {
                        "kind": "span",
                        "name": name,
                        "track": track,
                        "cat": category,
                        "start_s": start_s,
                        "duration_s": duration_s,
                    }
                    if args:
                        obj["args"] = args
                elif kind == _INSTANT:
                    _, time_s, name, track, category, args = record
                    obj = {
                        "kind": "instant",
                        "name": name,
                        "track": track,
                        "cat": category,
                        "time_s": time_s,
                    }
                    if args:
                        obj["args"] = args
                else:
                    _, time_s, name, value = record
                    obj = {"kind": "counter", "name": name, "time_s": time_s, "value": value}
                handle.write(json.dumps(obj))
                handle.write("\n")

    def __repr__(self) -> str:
        return f"<Tracer {len(self.records)} records, {self.dropped} dropped>"
