"""Observability: structured tracing, latency histograms, time-series sampling.

The third pillar next to :mod:`repro.sim` and :mod:`repro.harness`.  The
paper's claims are distributions over time — small-write latency CDFs,
parity-lag exposure while stripes sit unredundant, scrubber behaviour in
idle periods — and this package makes every simulated request observable
at that granularity:

* :class:`Tracer` — bounded-memory span/instant/counter records,
  exported as Chrome trace-event JSON (Perfetto-loadable) or JSONL;
* :class:`LatencyHistogram` / :class:`HistogramSet` — O(1) recording,
  percentile queries, and *exact* merging across sweep workers, keyed by
  request class (client read/write, degraded read, scrub, rebuild);
* :class:`PeriodicSampler` — simulated-time sampling of queue depth,
  dirty stripes, parity lag, and per-disk utilisation;
* :class:`MetricsRegistry` — named gauges/counters/histograms the sim
  actors publish their live state into;
* :class:`ExposureMonitor` / :class:`WindowedExposureEstimator` — the
  availability side of the story: windowed *achieved* MTTDL/MDLR and
  per-stripe dirty-dwell distributions, computed online from the
  controller's dirty-stripe events;
* :class:`SloEngine` / :class:`SloRule` — declarative thresholds on
  registry metrics, with breach/recovery instants on the tracer;
* :func:`prometheus_text` / :class:`RegistrySnapshotter` — Prometheus
  text-exposition and JSONL exports of the registry.

Everything is opt-in: components carry ``tracer`` and ``registry``
attributes that are ``None`` by default, and every instrumentation site
costs one ``is not None`` check when disabled.
"""

from repro.obs.exposure import (
    ExposureMonitor,
    WindowedExposureEstimator,
    lag_integral,
    start_exposure_poller,
    unprotected_time,
)
from repro.obs.export import (
    RegistrySnapshotter,
    parse_prometheus_text,
    prometheus_text,
    read_jsonl_snapshots,
    write_prometheus,
)
from repro.obs.hist import REQUEST_CLASSES, HistogramSet, LatencyHistogram
from repro.obs.registry import Counter, Gauge, HistogramMetric, MetricsRegistry
from repro.obs.samplers import PeriodicSampler, SampleSeries, attach_array_probes
from repro.obs.service import ServiceMetrics
from repro.obs.slo import SloEngine, SloEvent, SloRule
from repro.obs.timeline import LatencyWindows, Timeline, TimelineEvent
from repro.obs.tracer import SpanToken, Tracer

__all__ = [
    "REQUEST_CLASSES",
    "Counter",
    "ExposureMonitor",
    "Gauge",
    "HistogramMetric",
    "HistogramSet",
    "LatencyHistogram",
    "LatencyWindows",
    "MetricsRegistry",
    "PeriodicSampler",
    "RegistrySnapshotter",
    "SampleSeries",
    "ServiceMetrics",
    "SloEngine",
    "SloEvent",
    "SloRule",
    "SpanToken",
    "Timeline",
    "TimelineEvent",
    "Tracer",
    "WindowedExposureEstimator",
    "attach_array_probes",
    "lag_integral",
    "parse_prometheus_text",
    "prometheus_text",
    "read_jsonl_snapshots",
    "start_exposure_poller",
    "unprotected_time",
    "write_prometheus",
]
