"""Observability: structured tracing, latency histograms, time-series sampling.

The third pillar next to :mod:`repro.sim` and :mod:`repro.harness`.  The
paper's claims are distributions over time — small-write latency CDFs,
parity-lag exposure while stripes sit unredundant, scrubber behaviour in
idle periods — and this package makes every simulated request observable
at that granularity:

* :class:`Tracer` — bounded-memory span/instant/counter records,
  exported as Chrome trace-event JSON (Perfetto-loadable) or JSONL;
* :class:`LatencyHistogram` / :class:`HistogramSet` — O(1) recording,
  percentile queries, and *exact* merging across sweep workers, keyed by
  request class (client read/write, degraded read, scrub, rebuild);
* :class:`PeriodicSampler` — simulated-time sampling of queue depth,
  dirty stripes, parity lag, and per-disk utilisation.

Everything is opt-in: components carry a ``tracer`` attribute that is
``None`` by default, and every instrumentation site costs one ``is not
None`` check when disabled.
"""

from repro.obs.hist import REQUEST_CLASSES, HistogramSet, LatencyHistogram
from repro.obs.samplers import PeriodicSampler, SampleSeries, attach_array_probes
from repro.obs.tracer import SpanToken, Tracer

__all__ = [
    "REQUEST_CLASSES",
    "HistogramSet",
    "LatencyHistogram",
    "PeriodicSampler",
    "SampleSeries",
    "SpanToken",
    "Tracer",
    "attach_array_probes",
]
