"""A central registry of named metrics the simulated actors publish into.

The controller, scrubber, rebuild manager, fault injector, and policies
each expose what they are doing as named **gauges** (instantaneous
values: dirty stripes, parity-lag bytes, scrub backlog), **counters**
(monotonic totals: forced scrubs, mode switches, rebuilt stripes), and
**histograms** (distributions: per-stripe dirty-dwell seconds, wrapping
the exactly-mergeable :class:`~repro.obs.hist.LatencyHistogram`).

The registry is the read side of the availability story: where the
:class:`~repro.obs.Tracer` answers "what happened, in order", the
registry answers "what is the exposure *right now*" — which is what the
SLO engine polls and the Prometheus/JSONL exporters serialise.

Attachment follows the tracer's pattern: components hold an optional
``registry`` attribute, ``None`` by default, and every publication site
is gated on one ``is not None`` check, so the disabled path stays
near-free (``benchmarks/bench_obs_overhead.py`` asserts it).

Metric accessors are *get-or-create*: ``registry.counter("x")`` returns
the existing counter or makes one, so publishers don't need a separate
declaration step — but asking for an existing name as a different metric
type is an error (one name, one meaning).
"""

from __future__ import annotations

import typing

from repro.obs.hist import LatencyHistogram


class Counter:
    """A monotonically increasing total."""

    kind = "counter"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value:g}>"


class Gauge:
    """An instantaneous value that can move either way."""

    kind = "gauge"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value:g}>"


class HistogramMetric:
    """A named distribution, backed by a :class:`LatencyHistogram`.

    The backing histogram can be shared (pass ``hist=``) so a
    distribution that already lives elsewhere — e.g. the exposure
    monitor's dirty-dwell histogram — is exported without double
    recording.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "hist")

    def __init__(
        self,
        name: str,
        help: str = "",
        hist: LatencyHistogram | None = None,
        min_value: float = 1e-6,
        buckets_per_decade: int = 24,
    ) -> None:
        self.name = name
        self.help = help
        self.hist = hist if hist is not None else LatencyHistogram(min_value, buckets_per_decade)

    def observe(self, value: float) -> None:
        self.hist.record(value)

    @property
    def value(self) -> float:
        """Scalar view: the observation count (what ``snapshot`` reports)."""
        return float(self.hist.count)

    def __repr__(self) -> str:
        return f"<HistogramMetric {self.name} n={self.hist.count}>"


Metric = typing.Union[Counter, Gauge, HistogramMetric]


class MetricsRegistry:
    """Named metrics, in registration order."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    # -- get-or-create accessors ------------------------------------------------------

    def _lookup(self, name: str, kind: type) -> Metric | None:
        metric = self._metrics.get(name)
        if metric is None:
            return None
        if not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {metric.kind}, not a {kind.__name__.lower()}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._lookup(name, Counter)
        if metric is None:
            metric = Counter(name, help)
            self._metrics[name] = metric
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._lookup(name, Gauge)
        if metric is None:
            metric = Gauge(name, help)
            self._metrics[name] = metric
        return metric

    def histogram(
        self,
        name: str,
        help: str = "",
        hist: LatencyHistogram | None = None,
        min_value: float = 1e-6,
        buckets_per_decade: int = 24,
    ) -> HistogramMetric:
        metric = self._lookup(name, HistogramMetric)
        if metric is None:
            metric = HistogramMetric(
                name, help, hist=hist, min_value=min_value, buckets_per_decade=buckets_per_decade
            )
            self._metrics[name] = metric
        return metric

    # -- queries ---------------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> Metric:
        """The metric object called ``name`` (KeyError if unknown)."""
        return self._metrics[name]

    def value(self, name: str, default: float | None = None) -> float | None:
        """The scalar value of ``name``, or ``default`` when unregistered.

        This is what the SLO engine evaluates rules against: a rule naming
        a metric that nothing has published yet is simply not evaluable.
        """
        metric = self._metrics.get(name)
        return metric.value if metric is not None else default

    def metrics(self) -> list[Metric]:
        """All metrics, in registration order."""
        return list(self._metrics.values())

    def names(self) -> list[str]:
        return list(self._metrics)

    def snapshot(self) -> dict[str, float]:
        """A flat ``{name: value}`` view of every metric.

        Histograms contribute ``<name>_count`` and ``<name>_sum`` so the
        snapshot stays scalar (the full bucket layout is the exporters'
        job, not the snapshot's).
        """
        out: dict[str, float] = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, HistogramMetric):
                out[f"{name}_count"] = float(metric.hist.count)
                out[f"{name}_sum"] = metric.hist.sum_s
            else:
                out[name] = metric.value
        return out

    def __repr__(self) -> str:
        return f"<MetricsRegistry {len(self._metrics)} metrics>"
