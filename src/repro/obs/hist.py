"""Log-bucketed, mergeable latency histograms (HDR-histogram style).

The paper argues from *distributions*, not means — Figure 1 is a CDF of
small-write response times, and §4.2's headline is how the tail moves.
:class:`LatencyHistogram` records a latency in O(1) (one ``log`` and one
dict increment), answers percentile queries from the bucket counts, and
— crucially for the parallel sweep engine — merges *exactly*: merging
two histograms yields the same bucket counts (hence the same percentile
answers) as recording the combined stream into one histogram.  That is
what lets per-worker histograms from a ``ProcessPoolExecutor`` sweep be
folded together in the parent with no loss.

Buckets are geometric: ``buckets_per_decade`` buckets per factor of 10,
so a bucket spans a ratio of 10^(1/24) ≈ 1.10 at the default resolution
and a percentile answer (the bucket's geometric midpoint) is within ~5 %
of the true value.  Counts are kept sparse (a dict), so a wide dynamic
range costs nothing.
"""

from __future__ import annotations

import math
import typing

#: The request classes the array instrumentation records into.
REQUEST_CLASSES: tuple[str, ...] = (
    "client_read",
    "client_write",
    "degraded_read",
    "degraded_write",
    "scrub",
    "rebuild",
)


class LatencyHistogram:
    """Latencies in seconds, geometrically bucketed, exactly mergeable."""

    __slots__ = (
        "min_latency_s",
        "buckets_per_decade",
        "_scale",
        "counts",
        "count",
        "sum_s",
        "min_s",
        "max_s",
    )

    def __init__(self, min_latency_s: float = 1e-6, buckets_per_decade: int = 24) -> None:
        if min_latency_s <= 0:
            raise ValueError(f"min_latency_s must be > 0, got {min_latency_s}")
        if buckets_per_decade < 1:
            raise ValueError(f"buckets_per_decade must be >= 1, got {buckets_per_decade}")
        self.min_latency_s = min_latency_s
        self.buckets_per_decade = buckets_per_decade
        self._scale = buckets_per_decade / math.log(10.0)
        self.counts: dict[int, int] = {}
        self.count = 0
        self.sum_s = 0.0
        self.min_s = math.inf
        self.max_s = -math.inf

    # -- recording -----------------------------------------------------------------

    def _bucket(self, latency_s: float) -> int:
        if latency_s <= self.min_latency_s:
            return 0
        return int(math.log(latency_s / self.min_latency_s) * self._scale) + 1

    def record(self, latency_s: float) -> None:
        """Record one latency.  O(1); values below ``min_latency_s`` clamp
        into bucket 0 (they still contribute exactly to count/sum/min/max)."""
        bucket = self._bucket(latency_s)
        self.counts[bucket] = self.counts.get(bucket, 0) + 1
        self.count += 1
        self.sum_s += latency_s
        if latency_s < self.min_s:
            self.min_s = latency_s
        if latency_s > self.max_s:
            self.max_s = latency_s

    # -- bucket geometry -----------------------------------------------------------

    def bucket_bounds(self, bucket: int) -> tuple[float, float]:
        """The (low, high] latency range bucket ``bucket`` covers."""
        if bucket == 0:
            return (0.0, self.min_latency_s)
        low = self.min_latency_s * math.exp((bucket - 1) / self._scale)
        high = self.min_latency_s * math.exp(bucket / self._scale)
        return (low, high)

    def _representative(self, bucket: int) -> float:
        low, high = self.bucket_bounds(bucket)
        if bucket == 0:
            return high
        return math.sqrt(low * high)  # geometric midpoint

    # -- queries ---------------------------------------------------------------------

    @property
    def mean_s(self) -> float:
        return self.sum_s / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The latency at percentile ``q`` (0..100), from bucket counts.

        Deterministic in the bucket counts alone, so merged histograms
        answer identically to one built from the combined stream.  Empty
        histograms answer 0.0.  Answers are clamped to the exact observed
        [min, max] (HDR style), so q=0/q=100 are exact.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return self.min_s
        if q == 100.0:
            return self.max_s
        target = max(1, math.ceil(self.count * q / 100.0))
        seen = 0
        for bucket in sorted(self.counts):
            seen += self.counts[bucket]
            if seen >= target:
                answer = self._representative(bucket)
                return min(max(answer, self.min_s), self.max_s)
        return self.max_s  # unreachable: counts sum to self.count

    # -- merging ---------------------------------------------------------------------

    def compatible_with(self, other: "LatencyHistogram") -> bool:
        return (
            self.min_latency_s == other.min_latency_s
            and self.buckets_per_decade == other.buckets_per_decade
        )

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other`` into this histogram.

        Bucket counts add elementwise, so every percentile query gives
        exactly the answer the combined stream would (``sum_s`` may differ
        from sequential recording by float rounding only).
        """
        if not self.compatible_with(other):
            raise ValueError(
                "cannot merge: bucket layouts differ "
                f"({self.min_latency_s}/{self.buckets_per_decade} vs "
                f"{other.min_latency_s}/{other.buckets_per_decade})"
            )
        for bucket, n in other.counts.items():
            self.counts[bucket] = self.counts.get(bucket, 0) + n
        self.count += other.count
        self.sum_s += other.sum_s
        if other.count:
            self.min_s = min(self.min_s, other.min_s)
            self.max_s = max(self.max_s, other.max_s)

    def __eq__(self, other: object) -> bool:
        """Equality of everything a percentile query can observe."""
        if not isinstance(other, LatencyHistogram):
            return NotImplemented
        return (
            self.compatible_with(other)
            and self.count == other.count
            and self.counts == other.counts
            and (self.count == 0 or (self.min_s == other.min_s and self.max_s == other.max_s))
        )

    def __hash__(self) -> int:  # pragma: no cover - dict-key use unsupported
        raise TypeError("LatencyHistogram is mutable and unhashable")

    # -- (de)serialisation --------------------------------------------------------------

    def to_dict(self) -> dict:
        """A strict-JSON payload (no infinities; empty min/max are None)."""
        return {
            "min_latency_s": self.min_latency_s,
            "buckets_per_decade": self.buckets_per_decade,
            "count": self.count,
            "sum_s": self.sum_s,
            "min_s": self.min_s if self.count else None,
            "max_s": self.max_s if self.count else None,
            "counts": {str(bucket): n for bucket, n in sorted(self.counts.items())},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LatencyHistogram":
        hist = cls(
            min_latency_s=payload["min_latency_s"],
            buckets_per_decade=payload["buckets_per_decade"],
        )
        hist.counts = {int(bucket): n for bucket, n in payload["counts"].items()}
        hist.count = payload["count"]
        hist.sum_s = payload["sum_s"]
        if hist.count:
            hist.min_s = payload["min_s"]
            hist.max_s = payload["max_s"]
        return hist

    def __repr__(self) -> str:
        if not self.count:
            return "<LatencyHistogram empty>"
        return (
            f"<LatencyHistogram n={self.count} mean={self.mean_s * 1e3:.3f}ms "
            f"p95={self.percentile(95) * 1e3:.3f}ms max={self.max_s * 1e3:.3f}ms>"
        )


class HistogramSet:
    """Latency histograms keyed by request class.

    The standard classes are :data:`REQUEST_CLASSES`; recording into an
    unknown class creates its histogram on demand (extensions add their
    own).  All histograms share one bucket layout so the set merges.
    """

    def __init__(self, min_latency_s: float = 1e-6, buckets_per_decade: int = 24) -> None:
        self.min_latency_s = min_latency_s
        self.buckets_per_decade = buckets_per_decade
        self.hists: dict[str, LatencyHistogram] = {
            name: LatencyHistogram(min_latency_s, buckets_per_decade)
            for name in REQUEST_CLASSES
        }

    def record(self, request_class: str, latency_s: float) -> None:
        hist = self.hists.get(request_class)
        if hist is None:
            hist = LatencyHistogram(self.min_latency_s, self.buckets_per_decade)
            self.hists[request_class] = hist
        hist.record(latency_s)

    def get(self, request_class: str) -> LatencyHistogram:
        return self.hists[request_class]

    @property
    def total_count(self) -> int:
        return sum(hist.count for hist in self.hists.values())

    def merge(self, other: "HistogramSet") -> None:
        for name, hist in other.hists.items():
            mine = self.hists.get(name)
            if mine is None:
                mine = LatencyHistogram(self.min_latency_s, self.buckets_per_decade)
                self.hists[name] = mine
            mine.merge(hist)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HistogramSet):
            return NotImplemented
        mine = {name: hist for name, hist in self.hists.items() if hist.count}
        theirs = {name: hist for name, hist in other.hists.items() if hist.count}
        return mine == theirs

    __hash__ = None  # type: ignore[assignment]

    # -- (de)serialisation --------------------------------------------------------------

    def to_payload(self) -> dict:
        """JSON-shaped; classes that recorded nothing are omitted."""
        return {
            "min_latency_s": self.min_latency_s,
            "buckets_per_decade": self.buckets_per_decade,
            "classes": {
                name: hist.to_dict() for name, hist in self.hists.items() if hist.count
            },
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "HistogramSet":
        hists = cls(
            min_latency_s=payload["min_latency_s"],
            buckets_per_decade=payload["buckets_per_decade"],
        )
        for name, data in payload["classes"].items():
            hists.hists[name] = LatencyHistogram.from_dict(data)
        return hists

    # -- rendering -----------------------------------------------------------------------

    PERCENTILES: typing.ClassVar[tuple[float, ...]] = (50.0, 90.0, 95.0, 99.0)

    def rows(self) -> list[list[str]]:
        """Per-class percentile rows (ms) for ``format_table``."""
        rows = []
        for name, hist in self.hists.items():
            if not hist.count:
                continue
            rows.append(
                [
                    name,
                    str(hist.count),
                    f"{hist.mean_s * 1e3:.2f}",
                    *[f"{hist.percentile(q) * 1e3:.2f}" for q in self.PERCENTILES],
                    f"{hist.max_s * 1e3:.2f}",
                ]
            )
        return rows

    @classmethod
    def table_header(cls) -> list[str]:
        return [
            "class",
            "count",
            "mean (ms)",
            *[f"p{q:g} (ms)" for q in cls.PERCENTILES],
            "max (ms)",
        ]

    def __repr__(self) -> str:
        active = {name: hist.count for name, hist in self.hists.items() if hist.count}
        return f"<HistogramSet {active!r}>"
