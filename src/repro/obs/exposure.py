"""Live redundancy-exposure telemetry: windowed achieved MTTDL/MDLR.

`repro.availability` computes the paper's §3 quantities *analytically*,
and the :class:`~repro.availability.lag.ParityLagTracker` integrates them
over the **whole** run.  This module makes the same quantities visible
*while the run is in flight*, over a sliding window — availability as a
trajectory under load, not a closed-form endpoint:

* :class:`WindowedExposureEstimator` — the (time, lag) transition history
  over the last ``window_s`` seconds, answering ``unprotected_fraction``
  and ``mean_lag_bytes`` with the exact same time-weighted-integral math
  the whole-run tracker uses, just clipped to the window;
* :class:`ExposureMonitor` — the hub the array controller feeds: lag
  transitions update the estimator and the registry gauges, per-stripe
  dirty/clean events build dwell-time distributions in mergeable
  :class:`~repro.obs.hist.HistogramSet` histograms, and the §3 equations
  (via :func:`~repro.availability.afraid_mttdl` /
  :func:`~repro.availability.afraid_mdlr`) turn the windowed fractions
  into *windowed achieved* MTTDL hours and MDLR bytes/hour;
* :func:`start_exposure_poller` — a simulation process that periodically
  refreshes the derived gauges, evaluates SLO rules, and snapshots the
  registry for JSONL export.

The window math is exposed as free functions (:func:`lag_integral`,
:func:`unprotected_time`) over explicit transition lists so the property
"windowed integrals over a partition sum to the whole-run integral" is
directly testable.
"""

from __future__ import annotations

import collections
import typing

from repro.availability import ReliabilityParams, organization_mdlr, organization_mttdl
from repro.obs.hist import HistogramSet, LatencyHistogram
from repro.obs.registry import MetricsRegistry

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.array.controller import DiskArray
    from repro.obs.export import RegistrySnapshotter
    from repro.obs.slo import SloEngine
    from repro.sim import Simulator

#: Histogram classes the monitor records dwell times into: every cleaned
#: stripe lands in ``dirty_dwell``, and also in a per-cause class.
DWELL_CLASS = "dirty_dwell"
DWELL_CAUSES = ("scrub", "write", "rebuild")


# -- window integrals over explicit transition histories -------------------------------


def _clipped_segments(
    transitions: typing.Sequence[tuple[float, float]], a: float, b: float
) -> typing.Iterator[tuple[float, float]]:
    """Yield ``(lag, duration)`` pieces of the step function clipped to [a, b].

    ``transitions`` is a time-sorted list of (time, lag): each lag holds
    from its transition until the next one, and the last holds until ``b``.
    """
    n = len(transitions)
    for i in range(n):
        t0, lag = transitions[i]
        t1 = transitions[i + 1][0] if i + 1 < n else b
        lo = t0 if t0 > a else a
        hi = t1 if t1 < b else b
        if hi > lo:
            yield lag, hi - lo


def lag_integral(
    transitions: typing.Sequence[tuple[float, float]], a: float, b: float
) -> float:
    """∫ lag dt over [a, b] (byte·seconds) of a transition history."""
    return sum(lag * dt for lag, dt in _clipped_segments(transitions, a, b))


def unprotected_time(
    transitions: typing.Sequence[tuple[float, float]], a: float, b: float
) -> float:
    """Seconds within [a, b] during which the lag was strictly positive."""
    return sum(dt for lag, dt in _clipped_segments(transitions, a, b) if lag > 0)


class WindowedExposureEstimator:
    """Sliding-window unprotected-fraction and mean-lag estimator.

    Keeps the recent (time, lag) transitions in a deque, lazily trimming
    everything more than one transition older than the window start — the
    one retained older transition supplies the lag value in force when
    the window opens.  Until ``window_s`` has elapsed the window is the
    whole run so far, so early answers match the whole-run tracker.
    """

    def __init__(self, window_s: float, start_time: float = 0.0) -> None:
        if window_s <= 0:
            raise ValueError(f"window must be > 0, got {window_s}")
        self.window_s = window_s
        self._start = start_time
        self._events: collections.deque[tuple[float, float]] = collections.deque(
            [(start_time, 0.0)]
        )

    def record(self, time: float, lag_bytes: float) -> None:
        last_time, last_lag = self._events[-1]
        if time < last_time:
            raise ValueError(f"time went backwards: {time} < {last_time}")
        if lag_bytes != last_lag:
            self._events.append((time, lag_bytes))

    @property
    def current_lag_bytes(self) -> float:
        return self._events[-1][1]

    def window_bounds(self, now: float) -> tuple[float, float]:
        """The [a, b] interval the estimates cover at ``now``."""
        a = now - self.window_s
        if a < self._start:
            a = self._start
        return a, now

    def _trim(self, window_start: float) -> None:
        events = self._events
        while len(events) >= 2 and events[1][0] <= window_start:
            events.popleft()

    def unprotected_fraction(self, now: float) -> float:
        a, b = self.window_bounds(now)
        if b <= a:
            return 0.0
        self._trim(a)
        return unprotected_time(self._events, a, b) / (b - a)

    def mean_lag_bytes(self, now: float) -> float:
        a, b = self.window_bounds(now)
        if b <= a:
            return 0.0
        self._trim(a)
        return lag_integral(self._events, a, b) / (b - a)

    def __repr__(self) -> str:
        return (
            f"<WindowedExposureEstimator window={self.window_s:g}s "
            f"events={len(self._events)} lag={self.current_lag_bytes:g}B>"
        )


class ExposureMonitor:
    """Turns the controller's dirty-stripe events into live availability.

    The controller (and scrubber/rebuild paths inside it) call the hook
    methods; the monitor maintains:

    * registry gauges ``dirty_stripes``, ``parity_lag_bytes``,
      ``scrub_backlog_marks`` (refreshed on every lag transition) and
      ``windowed_unprotected_fraction``, ``windowed_mttdl_h``,
      ``windowed_mdlr_bytes_per_h``, ``achieved_mttdl_h`` (refreshed by
      :meth:`publish`, typically from :func:`start_exposure_poller`);
    * registry counters ``forced_scrubs_total`` and
      ``stripes_scrubbed_total``;
    * per-stripe dirty-dwell distributions in :attr:`hists` — class
      ``dirty_dwell`` plus ``dirty_dwell_<cause>`` for each clean cause
      (scrub / overwrite in RAID 5 mode / rebuild) — exported into the
      registry as the ``stripe_dirty_dwell_seconds`` histogram.

    Everything works with ``registry=None`` too: the windowed estimator
    and dwell histograms are useful on their own, and the harness always
    collects them (like latency histograms, they are too cheap to gate).
    """

    def __init__(
        self,
        window_s: float = 5.0,
        params: ReliabilityParams | None = None,
        min_dwell_s: float = 1e-6,
        buckets_per_decade: int = 24,
    ) -> None:
        self.params = params if params is not None else ReliabilityParams()
        self.window = WindowedExposureEstimator(window_s)
        self.hists = HistogramSet(min_dwell_s, buckets_per_decade)
        # Pre-create the dwell classes so the overall one can be shared
        # into a registry at attach time (recording still goes through
        # HistogramSet.record, keeping payload/merge semantics).
        for name in (DWELL_CLASS, *(f"{DWELL_CLASS}_{cause}" for cause in DWELL_CAUSES)):
            self.hists.hists.setdefault(
                name, LatencyHistogram(min_dwell_s, buckets_per_decade)
            )
        self.array: "DiskArray | None" = None
        self.registry: MetricsRegistry | None = None
        self._dirty_since: dict[int, float] = {}
        self._gauges = None  # bound at attach when a registry is present
        self._forced_scrubs = None
        self._stripes_scrubbed = None

    # -- wiring ----------------------------------------------------------------------

    def attach(self, array: "DiskArray", registry: MetricsRegistry | None = None) -> None:
        """Bind to ``array`` and (optionally) pre-register its metrics."""
        self.array = array
        if registry is not None:
            self.registry = registry
        if self.registry is not None:
            reg = self.registry
            self._gauges = {
                "dirty_stripes": reg.gauge(
                    "dirty_stripes", "stripes currently marked unredundant"
                ),
                "parity_lag_bytes": reg.gauge(
                    "parity_lag_bytes", "bytes of data not covered by parity"
                ),
                "scrub_backlog_marks": reg.gauge(
                    "scrub_backlog_marks", "marked sub-units awaiting scrub"
                ),
                "windowed_unprotected_fraction": reg.gauge(
                    "windowed_unprotected_fraction",
                    "fraction of the sliding window with parity lag > 0",
                ),
                "windowed_mttdl_h": reg.gauge(
                    "windowed_mttdl_h",
                    "eq. (2c) MTTDL over the sliding exposure window, hours",
                ),
                "windowed_mdlr_bytes_per_h": reg.gauge(
                    "windowed_mdlr_bytes_per_h",
                    "eq. (5) data-loss rate over the sliding window, bytes/hour",
                ),
                "achieved_mttdl_h": reg.gauge(
                    "achieved_mttdl_h",
                    "eq. (2c) MTTDL over the whole run so far, hours",
                ),
            }
            self._forced_scrubs = reg.counter(
                "forced_scrubs_total", "scrubs forced despite client load"
            )
            self._stripes_scrubbed = reg.counter(
                "stripes_scrubbed_total", "stripes returned to full redundancy by the scrubber"
            )
            reg.histogram(
                "stripe_dirty_dwell_seconds",
                "how long each stripe stayed unredundant",
                hist=self.hists.get(DWELL_CLASS),
            )

    # -- hooks the controller calls --------------------------------------------------

    def on_lag_change(
        self, now: float, lag_bytes: float, dirty_stripes: int, backlog_marks: int
    ) -> None:
        """The parity lag changed (mark, scrub, overwrite, or NVRAM loss)."""
        self.window.record(now, lag_bytes)
        gauges = self._gauges
        if gauges is not None:
            gauges["dirty_stripes"].set(dirty_stripes)
            gauges["parity_lag_bytes"].set(lag_bytes)
            gauges["scrub_backlog_marks"].set(backlog_marks)

    def stripe_dirtied(self, stripe: int, now: float) -> None:
        """``stripe`` just went from clean to dirty."""
        if stripe not in self._dirty_since:
            self._dirty_since[stripe] = now

    def stripe_cleaned(self, stripe: int, now: float, cause: str = "scrub") -> None:
        """``stripe`` just regained full redundancy; record its dwell."""
        since = self._dirty_since.pop(stripe, None)
        if since is None:
            return
        dwell = now - since
        self.hists.record(DWELL_CLASS, dwell)
        self.hists.record(f"{DWELL_CLASS}_{cause}", dwell)
        if self._stripes_scrubbed is not None and cause == "scrub":
            self._stripes_scrubbed.inc()

    def forced_scrub(self) -> None:
        """A scrub was requested with force=True (despite client load)."""
        if self._forced_scrubs is not None:
            self._forced_scrubs.inc()

    # -- derived quantities ----------------------------------------------------------

    def windowed_unprotected_fraction(self, now: float) -> float:
        return self.window.unprotected_fraction(now)

    def windowed_mean_lag_bytes(self, now: float) -> float:
        return self.window.mean_lag_bytes(now)

    def _ndisks(self) -> int:
        if self.array is None:
            raise RuntimeError("monitor not attached to an array")
        return self.array.ndisks

    def _organization(self) -> str:
        """The attached array's organization name (for model dispatch).

        Falls back to RAID 5 for array stand-ins that predate the
        organization attribute (test stubs, pickled snapshots).
        """
        if self.array is None:
            raise RuntimeError("monitor not attached to an array")
        organization = getattr(self.array, "organization", None)
        return "raid5" if organization is None else organization.name

    def windowed_mttdl_h(
        self, now: float, params: ReliabilityParams | None = None
    ) -> float:
        """Eq. (2c) (or the organization's analogue) over the sliding window."""
        params = params if params is not None else self.params
        return organization_mttdl(
            self._organization(),
            ndisks=self._ndisks(),
            mttf_disk_h=params.mttf_disk_h,
            mttr_h=params.mttr_h,
            unprotected_fraction=self.window.unprotected_fraction(now),
        )

    def windowed_mdlr_bytes_per_h(
        self, now: float, params: ReliabilityParams | None = None
    ) -> float:
        """Eq. (5) (or the organization's analogue) over the window's mean lag."""
        params = params if params is not None else self.params
        return organization_mdlr(
            self._organization(),
            ndisks=self._ndisks(),
            disk_bytes=params.disk_bytes,
            mttf_disk_h=params.mttf_disk_h,
            mttr_h=params.mttr_h,
            mean_lag_bytes=self.window.mean_lag_bytes(now),
        )

    def achieved_mttdl_h(
        self, now: float | None = None, params: ReliabilityParams | None = None
    ) -> float:
        """Eq. (2c) over the *whole run so far* — the MTTDL_x policy's metric.

        Computed from the array's whole-run
        :meth:`~repro.availability.lag.ParityLagTracker.snapshot_unprotected_fraction`,
        i.e. exactly the quantity the policy previously recomputed ad hoc.
        """
        if self.array is None:
            raise RuntimeError("monitor not attached to an array")
        params = params if params is not None else self.params
        if now is None:
            now = self.array.now
        fraction = self.array.lag_tracker.snapshot_unprotected_fraction(now)
        value = organization_mttdl(
            self._organization(),
            ndisks=self.array.ndisks,
            mttf_disk_h=params.mttf_disk_h,
            mttr_h=params.mttr_h,
            unprotected_fraction=fraction,
        )
        # Every evaluation refreshes the gauge, so a policy polling its
        # target reads (and keeps current) the exported metric itself.
        if self._gauges is not None:
            self._gauges["achieved_mttdl_h"].set(value)
        return value

    # -- publication -----------------------------------------------------------------

    def publish(self, now: float) -> None:
        """Refresh the derived (windowed / whole-run) registry gauges."""
        gauges = self._gauges
        if gauges is None:
            return
        gauges["windowed_unprotected_fraction"].set(self.window.unprotected_fraction(now))
        gauges["windowed_mttdl_h"].set(self.windowed_mttdl_h(now))
        gauges["windowed_mdlr_bytes_per_h"].set(self.windowed_mdlr_bytes_per_h(now))
        if self.array is not None:
            gauges["achieved_mttdl_h"].set(self.achieved_mttdl_h(now))

    def finish(self, now: float) -> None:
        """Close out at the horizon: one last gauge refresh.

        Stripes still dirty at the horizon deliberately do **not**
        contribute dwell samples — their dwell is censored, and recording
        a truncated value would bias the distribution low.
        """
        self.publish(now)

    @property
    def open_dwells(self) -> int:
        """Stripes currently dirty (their dwell is still accumulating)."""
        return len(self._dirty_since)

    def __repr__(self) -> str:
        n = self.hists.get(DWELL_CLASS).count
        return (
            f"<ExposureMonitor window={self.window.window_s:g}s "
            f"dwells={n} open={self.open_dwells}>"
        )


def start_exposure_poller(
    sim: "Simulator",
    monitor: ExposureMonitor,
    *,
    period_s: float = 0.050,
    engine: "SloEngine | None" = None,
    snapshotter: "RegistrySnapshotter | None" = None,
    until: float | None = None,
) -> None:
    """Drive a monitor (and optionally an SLO engine and snapshotter) on a clock.

    Every ``period_s`` of simulated time: refresh the derived gauges,
    evaluate the SLO rules against the registry, and append a JSONL-able
    registry snapshot.  Like :class:`~repro.obs.samplers.PeriodicSampler`,
    the loop stops once the next tick would pass ``until`` — give it a
    horizon before draining a simulator with an open-ended ``run()``.
    """
    if period_s <= 0:
        raise ValueError(f"period must be > 0, got {period_s}")

    def _loop():
        while True:
            now = sim.now
            monitor.publish(now)
            if engine is not None and monitor.registry is not None:
                engine.evaluate(now, monitor.registry)
            if snapshotter is not None and monitor.registry is not None:
                snapshotter.snap(now)
            if until is not None and now + period_s > until:
                break
            yield sim.timeout(period_s)

    sim.process(_loop(), name="obs.exposure_poller")
