"""The unified correlation timeline: every observability stream, one log.

The repo already produces half a dozen event streams — fault injections
and clears (:mod:`repro.faults`), SLO breach/recovery instants
(:class:`~repro.obs.slo.SloEngine`), rebuild start/finish spans
(:class:`~repro.ext.rebuild.RebuildManager`), windowed achieved-MTTDL /
MDLR samples (:class:`~repro.obs.exposure.WindowedExposureEstimator`),
and rolling latency percentiles (:mod:`repro.obs.hist`).  Each is useful
alone; none answers the question continuous chaos actually poses: *what
caused what?*

:class:`Timeline` is the hub that merges them into one ordered event log
with stable ids (``evt-000042``) and **cause links**: a breach event
points at the innermost open fault, a recovery at its breach, a rebuild
finish at its start, a nemesis hold at the breach that gated it — so the
fault → exposure spike → breach → rebuild → recovery chain is a walk up
the ``cause`` pointers.  Exports:

* :meth:`write_jsonl` — one sorted-keys JSON object per event,
  byte-stable for a given run (CI diffs same-seed reruns);
* :meth:`chrome_trace` / :meth:`write_chrome` — the Chrome trace-event
  format, by replaying the events through an ordinary
  :class:`~repro.obs.tracer.Tracer` bound to a replay clock;
* :meth:`prometheus_text` — labelled ``timeline_events_total{kind=...}``
  counters (escaped via :mod:`repro.obs.export`);
* :meth:`render_report` — a human-readable markdown incident report;
* :meth:`check_invariants` — the structural claims a sound run must
  satisfy (every breach cause-linked to a fault, every rebuild span
  closed, holds and resumes paired), which the CI soak fails on.

Recording is a list append under one lock — cheap enough for the service
daemon's wall-clock events and the nemesis loop's sim-time events alike.
The timeline never reads a clock itself: callers stamp every event, so
sim-side timelines are deterministic for a (seed, spec) pair.
"""

from __future__ import annotations

import dataclasses
import json
import math
import threading
import typing

from repro.obs.export import escape_label_value
from repro.obs.hist import HistogramSet, LatencyHistogram

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.slo import SloEvent
    from repro.obs.tracer import Tracer

#: Tracks events are grouped under (one Perfetto row each).
TRACKS = ("faults", "slo", "rebuild", "nemesis", "exposure", "latency", "service")


@dataclasses.dataclass(frozen=True)
class TimelineEvent:
    """One correlated event; immutable once recorded."""

    seq: int
    time_s: float
    kind: str  # dotted: fault.inject, slo.breach, rebuild.finish, ...
    track: str
    cause: str | None = None  # id of the event that caused this one
    duration_s: float | None = None  # spans (rebuild.finish) carry their length
    attrs: dict = dataclasses.field(default_factory=dict)

    @property
    def id(self) -> str:
        return f"evt-{self.seq:06d}"

    def to_payload(self) -> dict:
        """The JSONL object; strict JSON (infinities become ``"inf"``)."""
        payload = {
            "id": self.id,
            "seq": self.seq,
            "time_s": self.time_s,
            "kind": self.kind,
            "track": self.track,
            "cause": self.cause,
            "attrs": {key: _json_safe(value) for key, value in self.attrs.items()},
        }
        if self.duration_s is not None:
            payload["duration_s"] = self.duration_s
        return payload


def _json_safe(value):
    if isinstance(value, float):
        if value == math.inf:
            return "inf"
        if value == -math.inf:
            return "-inf"
        if value != value:  # NaN
            return None
    return value


class _ReplayClock:
    """A duck-typed ``sim`` for :class:`Tracer`: just a settable ``now``."""

    def __init__(self) -> None:
        self.now = 0.0


class Timeline:
    """Ordered, correlated event log with stable ids and cause links."""

    def __init__(self, max_events: int = 1_000_000) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_events = max_events
        self.events: list[TimelineEvent] = []
        self.dropped = 0
        self._lock = threading.Lock()
        # Correlation state (all keyed by event objects / ids):
        self._open_faults: list[TimelineEvent] = []  # innermost last
        self._last_fault: TimelineEvent | None = None
        self._open_breaches: dict[str, TimelineEvent] = {}  # rule text -> breach
        self._open_rebuilds: dict[int, TimelineEvent] = {}  # disk -> start

    # -- recording ------------------------------------------------------------------

    def record(
        self,
        kind: str,
        time_s: float,
        track: str = "main",
        cause: "TimelineEvent | str | None" = None,
        duration_s: float | None = None,
        **attrs,
    ) -> TimelineEvent:
        """Append one event; returns it (its id is the correlation handle)."""
        cause_id = cause.id if isinstance(cause, TimelineEvent) else cause
        with self._lock:
            if len(self.events) >= self.max_events:
                self.dropped += 1
                return TimelineEvent(
                    seq=-1, time_s=time_s, kind=kind, track=track,
                    cause=cause_id, duration_s=duration_s, attrs=attrs,
                )
            event = TimelineEvent(
                seq=len(self.events), time_s=time_s, kind=kind, track=track,
                cause=cause_id, duration_s=duration_s, attrs=attrs,
            )
            self.events.append(event)
        return event

    # -- correlation-aware ingest helpers ---------------------------------------------

    def fault_injected(self, time_s: float, fault: str, **attrs) -> TimelineEvent:
        """A fault went live; returns the inject event (the clear's cause)."""
        event = self.record("fault.inject", time_s, track="faults", fault=fault, **attrs)
        if event.seq >= 0:
            self._open_faults.append(event)
            self._last_fault = event
        return event

    def fault_cleared(
        self, time_s: float, inject: TimelineEvent, **attrs
    ) -> TimelineEvent:
        """The fault injected by ``inject`` is resolved."""
        self._open_faults = [e for e in self._open_faults if e.seq != inject.seq]
        return self.record(
            "fault.clear", time_s, track="faults", cause=inject,
            fault=inject.attrs.get("fault"), **attrs,
        )

    def open_fault_events(self) -> list[TimelineEvent]:
        """Currently-open fault.inject events, outermost first."""
        return list(self._open_faults)

    def innermost_open_fault(self) -> TimelineEvent | None:
        return self._open_faults[-1] if self._open_faults else self._last_fault

    def ingest_slo_events(self, crossings: "typing.Sequence[SloEvent]") -> list[TimelineEvent]:
        """Fold :class:`~repro.obs.slo.SloEvent` crossings in, cause-linked.

        A breach's cause is the innermost open fault (falling back to the
        most recent fault ever injected — the exposure it created can
        outlive its clear); a recovery's cause is its own breach event.
        """
        recorded = []
        for crossing in crossings:
            rule_text = crossing.rule.describe()
            if crossing.kind == "breach":
                event = self.record(
                    "slo.breach", crossing.time_s, track="slo",
                    cause=self.innermost_open_fault(),
                    rule=rule_text, value=crossing.value,
                )
                self._open_breaches[rule_text] = event
            else:
                event = self.record(
                    "slo.recovery", crossing.time_s, track="slo",
                    cause=self._open_breaches.pop(rule_text, None),
                    rule=rule_text, value=crossing.value,
                )
            recorded.append(event)
        return recorded

    def open_breach_events(self) -> list[TimelineEvent]:
        """Currently-open slo.breach events, in breach order."""
        return sorted(self._open_breaches.values(), key=lambda event: event.seq)

    def rebuild_started(
        self, time_s: float, disk: int, cause: "TimelineEvent | None" = None, **attrs
    ) -> TimelineEvent:
        event = self.record(
            "rebuild.start", time_s, track="rebuild", cause=cause, disk=disk, **attrs
        )
        if event.seq >= 0:
            self._open_rebuilds[disk] = event
        return event

    def rebuild_finished(self, time_s: float, disk: int, **attrs) -> TimelineEvent:
        start = self._open_rebuilds.pop(disk, None)
        duration = None if start is None else time_s - start.time_s
        return self.record(
            "rebuild.finish", time_s, track="rebuild", cause=start,
            duration_s=duration, disk=disk, **attrs,
        )

    def exposure_sample(self, time_s: float, **metrics) -> TimelineEvent:
        """One windowed achieved-MTTDL/MDLR sample."""
        return self.record("exposure.sample", time_s, track="exposure", **metrics)

    def latency_window(self, time_s: float, request_class: str, **stats) -> TimelineEvent:
        """One rolling latency-percentile window for ``request_class``."""
        return self.record(
            "latency.window", time_s, track="latency", request_class=request_class, **stats
        )

    # -- queries --------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def kinds(self) -> dict[str, int]:
        """Event counts by kind (insertion-ordered by first occurrence)."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def events_of(self, *kinds: str) -> list[TimelineEvent]:
        wanted = set(kinds)
        return [event for event in self.events if event.kind in wanted]

    def by_id(self, event_id: str) -> TimelineEvent | None:
        try:
            seq = int(event_id.split("-")[-1])
        except ValueError:
            return None
        if 0 <= seq < len(self.events):
            return self.events[seq]
        return None

    def cause_chain(self, event: TimelineEvent) -> list[TimelineEvent]:
        """``event`` and its transitive causes, effect first."""
        chain = [event]
        seen = {event.seq}
        while chain[-1].cause is not None:
            parent = self.by_id(chain[-1].cause)
            if parent is None or parent.seq in seen:
                break
            chain.append(parent)
            seen.add(parent.seq)
        return chain

    # -- exports --------------------------------------------------------------------

    def to_payloads(self) -> list[dict]:
        with self._lock:
            events = list(self.events)
        return [event.to_payload() for event in events]

    def to_jsonl(self) -> str:
        """Byte-stable JSONL: sorted keys, one event per line."""
        lines = [
            json.dumps(payload, sort_keys=True) for payload in self.to_payloads()
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())

    def to_tracer(self, max_records: int | None = None) -> "Tracer":
        """Replay the timeline into a :class:`~repro.obs.tracer.Tracer`.

        Events with a duration become spans, the rest instants; the
        tracer's Chrome export then renders tracks as Perfetto rows for
        free.  The ``cause`` link rides along in the args.
        """
        from repro.obs.tracer import Tracer

        clock = _ReplayClock()
        tracer = Tracer(
            sim=clock,  # type: ignore[arg-type] - only .now is read
            max_records=max_records if max_records is not None else max(len(self.events), 1),
        )
        for event in self.events:
            args = {"id": event.id, **event.attrs}
            if event.cause is not None:
                args["cause"] = event.cause
            if event.duration_s is not None:
                tracer.complete(
                    event.kind, start_s=event.time_s - event.duration_s,
                    duration_s=event.duration_s, track=event.track,
                    category="timeline", **args,
                )
            else:
                clock.now = event.time_s
                tracer.instant(event.kind, track=event.track, category="timeline", **args)
        return tracer

    def chrome_trace(self) -> dict:
        return self.to_tracer().chrome_trace()

    def write_chrome(self, path) -> None:
        with open(path, "w") as handle:
            json.dump(self.chrome_trace(), handle)

    def prometheus_text(self, prefix: str = "timeline") -> str:
        """Labelled counters over the event log, exposition-format escaped."""
        lines = [
            f"# HELP {prefix}_events_total correlated timeline events by kind",
            f"# TYPE {prefix}_events_total counter",
        ]
        for kind, count in sorted(self.kinds().items()):
            lines.append(
                f'{prefix}_events_total{{kind="{escape_label_value(kind)}"}} {count}'
            )
        lines.append(f"# HELP {prefix}_open_faults faults injected but not yet cleared")
        lines.append(f"# TYPE {prefix}_open_faults gauge")
        lines.append(f"{prefix}_open_faults {len(self._open_faults)}")
        lines.append(f"# HELP {prefix}_events_dropped events over the memory bound")
        lines.append(f"# TYPE {prefix}_events_dropped counter")
        lines.append(f"{prefix}_events_dropped {self.dropped}")
        lines.append("")
        return "\n".join(lines)

    # -- the incident report ----------------------------------------------------------

    def render_report(self, title: str = "Incident report") -> str:
        """A markdown incident report: totals, fault episodes, breach
        chains, holds — the run's story in causal order."""
        lines = [f"# {title}", ""]
        if not self.events:
            lines.append("No events recorded.")
            return "\n".join(lines) + "\n"
        lines.append(
            f"{len(self.events)} events over "
            f"[{self.events[0].time_s:.3f}s, {self.events[-1].time_s:.3f}s]"
            + (f" ({self.dropped} dropped)" if self.dropped else "")
        )
        lines.append("")
        lines.append("## Event counts")
        lines.append("")
        for kind, count in sorted(self.kinds().items()):
            lines.append(f"- `{kind}`: {count}")

        injects = self.events_of("fault.inject")
        if injects:
            lines.append("")
            lines.append("## Fault episodes")
            lines.append("")
            clears = {event.cause: event for event in self.events_of("fault.clear")}
            for inject in injects:
                clear = clears.get(inject.id)
                detail = ", ".join(
                    f"{key}={value}" for key, value in inject.attrs.items() if key != "fault"
                )
                line = (
                    f"- [{inject.id}] t={inject.time_s:.3f}s "
                    f"**{inject.attrs.get('fault')}**"
                )
                if detail:
                    line += f" ({detail})"
                if clear is not None:
                    line += (
                        f" -> cleared t={clear.time_s:.3f}s "
                        f"(open {clear.time_s - inject.time_s:.3f}s)"
                    )
                else:
                    line += " -> **still open**"
                lines.append(line)

        breaches = self.events_of("slo.breach")
        if breaches:
            lines.append("")
            lines.append("## SLO breaches")
            lines.append("")
            recoveries = {event.cause: event for event in self.events_of("slo.recovery")}
            for breach in breaches:
                recovery = recoveries.get(breach.id)
                chain = " <- ".join(
                    f"{event.kind}[{event.id}]" for event in self.cause_chain(breach)
                )
                line = (
                    f"- [{breach.id}] t={breach.time_s:.3f}s `{breach.attrs.get('rule')}` "
                    f"(value {breach.attrs.get('value')})"
                )
                if recovery is not None:
                    line += f" -> recovered t={recovery.time_s:.3f}s"
                else:
                    line += " -> **unrecovered**"
                lines.append(line)
                lines.append(f"  - cause chain: {chain}")

        holds = self.events_of("nemesis.hold")
        if holds:
            lines.append("")
            lines.append("## Injection holds")
            lines.append("")
            resumes = {event.cause: event for event in self.events_of("nemesis.resume")}
            for hold in holds:
                resume = resumes.get(hold.id)
                line = f"- [{hold.id}] held at t={hold.time_s:.3f}s"
                if hold.cause is not None:
                    line += f" (gating breach {hold.cause})"
                if resume is not None:
                    line += (
                        f" -> resumed t={resume.time_s:.3f}s, released "
                        f"{resume.attrs.get('released', '?')} deferred fault(s)"
                    )
                lines.append(line)

        rebuilds = self.events_of("rebuild.finish")
        if rebuilds:
            lines.append("")
            lines.append("## Rebuilds")
            lines.append("")
            for finish in rebuilds:
                lines.append(
                    f"- [{finish.id}] disk {finish.attrs.get('disk')} rebuilt in "
                    f"{(finish.duration_s or 0.0):.3f}s "
                    f"({finish.attrs.get('stripes', '?')} stripes)"
                )
        lines.append("")
        return "\n".join(lines)

    # -- invariants (the CI soak's fail conditions) ------------------------------------

    def check_invariants(self) -> list[str]:
        """Structural claims a sound run must satisfy; violations as text."""
        problems: list[str] = []
        ids = {event.id for event in self.events}
        last_time = -math.inf
        for event in self.events:
            if event.time_s < last_time - 1e-9:
                problems.append(
                    f"{event.id}: time went backwards ({event.time_s} after {last_time})"
                )
            last_time = max(last_time, event.time_s)
            if event.cause is not None and event.cause not in ids:
                problems.append(f"{event.id}: dangling cause {event.cause}")

        fault_ids = {event.id for event in self.events_of("fault.inject")}
        for breach in self.events_of("slo.breach"):
            cause = self.by_id(breach.cause) if breach.cause else None
            if breach.cause is None or breach.cause not in fault_ids:
                problems.append(
                    f"{breach.id}: breach of {breach.attrs.get('rule')!r} at "
                    f"t={breach.time_s:.3f}s is not cause-linked to a fault "
                    f"(cause={breach.cause}, kind={cause.kind if cause else None})"
                )
        breach_ids = {event.id for event in self.events_of("slo.breach")}
        for recovery in self.events_of("slo.recovery"):
            if recovery.cause is None or recovery.cause not in breach_ids:
                problems.append(f"{recovery.id}: recovery without a matching breach")

        starts = {event.id for event in self.events_of("rebuild.start")}
        finished = {
            event.cause for event in self.events_of("rebuild.finish") if event.cause
        }
        for start_id in sorted(starts - finished):
            problems.append(f"{start_id}: rebuild span never closed")
        for disk, start in sorted(self._open_rebuilds.items()):
            problems.append(f"{start.id}: rebuild of disk {disk} still open")

        holds = self.events_of("nemesis.hold")
        resumes = self.events_of("nemesis.resume")
        resumed = {event.cause for event in resumes if event.cause}
        unresumed = [hold for hold in holds if hold.id not in resumed]
        if unresumed:
            problems.append(
                f"{unresumed[0].id}: {len(unresumed)} hold(s) never resumed"
            )
        for resume in resumes:
            if resume.cause is None or self.by_id(resume.cause) is None:
                problems.append(f"{resume.id}: resume without a matching hold")
        return problems

    def __repr__(self) -> str:
        return (
            f"<Timeline {len(self.events)} events, {len(self._open_faults)} open faults, "
            f"{self.dropped} dropped>"
        )


class LatencyWindows:
    """Rolling per-class latency percentiles from a cumulative HistogramSet.

    :class:`~repro.obs.hist.LatencyHistogram` is cumulative and exactly
    mergeable — which also makes it exactly *diffable*: the bucket counts
    newly arrived since the previous sample are a complete histogram of
    that window's latencies.  Each :meth:`sample` records one
    ``latency.window`` timeline event per request class that saw traffic,
    with the window's count and percentile estimates.
    """

    def __init__(
        self,
        hists: HistogramSet,
        percentiles: tuple[float, ...] = (50.0, 95.0, 99.0),
        classes: tuple[str, ...] | None = None,
    ) -> None:
        self.hists = hists
        self.percentiles = percentiles
        self.classes = classes
        self._previous: dict[str, dict[int, int]] = {}
        # Any histogram supplies the shared bucket geometry.
        self._ref = LatencyHistogram(hists.min_latency_s, hists.buckets_per_decade)

    def _window_percentile(self, counts: dict[int, int], total: int, q: float) -> float:
        target = max(1, math.ceil(total * q / 100.0))
        seen = 0
        for bucket in sorted(counts):
            seen += counts[bucket]
            if seen >= target:
                return self._ref._representative(bucket)
        return 0.0  # pragma: no cover - counts sum to total

    def sample(self, time_s: float, timeline: Timeline) -> list[TimelineEvent]:
        """Diff against the previous sample; emit one event per active class."""
        recorded = []
        for name, hist in sorted(self.hists.hists.items()):
            if self.classes is not None and name not in self.classes:
                continue
            previous = self._previous.get(name, {})
            delta = {
                bucket: count - previous.get(bucket, 0)
                for bucket, count in hist.counts.items()
                if count != previous.get(bucket, 0)
            }
            total = sum(delta.values())
            if total <= 0:
                continue
            self._previous[name] = dict(hist.counts)
            stats = {
                f"p{q:g}_ms": self._window_percentile(delta, total, q) * 1e3
                for q in self.percentiles
            }
            recorded.append(
                timeline.latency_window(time_s, name, count=total, **stats)
            )
        return recorded
