"""Periodic time-series sampling of array state.

A :class:`PeriodicSampler` is a simulation process that wakes every
``period_s`` of *simulated* time, evaluates a set of named probes (plain
callables returning a float), and appends the samples to in-memory series
— optionally mirroring each sample into a :class:`~repro.obs.Tracer`
counter track so the series shows up in Perfetto alongside the spans.

:func:`attach_array_probes` wires up the standard probes for a
:class:`~repro.array.controller.DiskArray`: outstanding client requests,
back-end queue depth, dirty-stripe count, parity-lag bytes, and per-disk
utilisation (busy time per interval, from the disk's own accounting).

A sampler keeps rescheduling itself until :meth:`~PeriodicSampler.stop`
is called or its ``until`` horizon passes — give it a horizon (or stop
it) before draining a simulator with an open-ended ``run()``, or the
queue never empties.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.obs.tracer import Tracer

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.array.controller import DiskArray
    from repro.sim import Simulator


@dataclasses.dataclass
class SampleSeries:
    """One probe's time series."""

    name: str
    times_s: list[float] = dataclasses.field(default_factory=list)
    values: list[float] = dataclasses.field(default_factory=list)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    @property
    def peak(self) -> float:
        return max(self.values) if self.values else 0.0

    def to_dict(self) -> dict:
        return {"name": self.name, "times_s": list(self.times_s), "values": list(self.values)}


class PeriodicSampler:
    """Samples named probes every ``period_s`` of simulated time."""

    def __init__(
        self,
        sim: "Simulator",
        period_s: float = 0.010,
        tracer: Tracer | None = None,
        max_samples_per_series: int = 1_000_000,
    ) -> None:
        if period_s <= 0:
            raise ValueError(f"period must be > 0, got {period_s}")
        self.sim = sim
        self.period_s = period_s
        self.tracer = tracer
        self.max_samples_per_series = max_samples_per_series
        self.probes: dict[str, typing.Callable[[], float]] = {}
        self.series: dict[str, SampleSeries] = {}
        self.dropped = 0
        self._running = False
        self._stopped = False

    def add_probe(self, name: str, probe: typing.Callable[[], float]) -> None:
        """Register ``probe`` under ``name`` (must be unique)."""
        if name in self.probes:
            raise ValueError(f"probe {name!r} already registered")
        self.probes[name] = probe
        self.series[name] = SampleSeries(name)

    # -- lifecycle ------------------------------------------------------------------

    def start(self, until: float | None = None) -> None:
        """Start the sampling process.

        ``until`` bounds the sampler in simulated time; without it the
        sampler runs until :meth:`stop` (and keeps the event queue
        non-empty, so don't ``run()`` a simulator to empty around one).
        """
        if self._running:
            raise RuntimeError("sampler already started")
        self._running = True
        self._stopped = False
        self.sim.process(self._loop(until), name="obs.sampler")

    def stop(self) -> None:
        """Stop sampling after the current tick."""
        self._stopped = True

    def _loop(self, until: float | None):
        try:
            while not self._stopped:
                self.sample_once()
                if until is not None and self.sim.now + self.period_s > until:
                    break
                yield self.sim.timeout(self.period_s)
        finally:
            self._running = False

    def sample_once(self) -> None:
        """Evaluate every probe once at the current simulated time."""
        now = self.sim.now
        tracer = self.tracer
        for name, probe in self.probes.items():
            try:
                value = float(probe())
            except Exception:
                # A probe observing failed hardware (e.g. dirty-stripe
                # count after a marking-memory fault) must not kill the
                # sampling process; skip the sample and keep going.
                self.dropped += 1
                continue
            series = self.series[name]
            if len(series.values) < self.max_samples_per_series:
                series.times_s.append(now)
                series.values.append(value)
            else:
                self.dropped += 1
            if tracer is not None:
                tracer.counter(name, value)

    # -- export ----------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "period_s": self.period_s,
            "dropped": self.dropped,
            "series": {name: series.to_dict() for name, series in self.series.items()},
        }

    def __repr__(self) -> str:
        sizes = {name: len(series) for name, series in self.series.items()}
        return f"<PeriodicSampler every {self.period_s:g}s {sizes!r}>"


def _utilisation_probe(sim: "Simulator", disk) -> typing.Callable[[], float]:
    """Busy fraction of ``disk`` over the interval since the last sample."""
    state = {"time": sim.now, "busy": disk.stats.busy_time}

    def probe() -> float:
        now = sim.now
        busy = disk.stats.busy_time
        interval = now - state["time"]
        delta = busy - state["busy"]
        state["time"] = now
        state["busy"] = busy
        if interval <= 0:
            return 0.0
        # Accounting charges a command's full service time up front, so a
        # single interval can show > 1; clamp, the excess belongs to the
        # next interval visually anyway.
        return min(delta / interval, 1.0)

    return probe


def attach_array_probes(sampler: PeriodicSampler, array: "DiskArray") -> None:
    """Register the standard array probes on ``sampler``.

    * ``outstanding_requests`` — client requests queued or in flight;
    * ``backend_queue_depth`` — commands waiting in back-end driver queues;
    * ``dirty_stripes`` — stripes currently marked unredundant;
    * ``parity_lag_bytes`` — the paper's exposure quantity;
    * ``disk<N>_utilisation`` — per-member busy fraction per interval.
    """
    sampler.add_probe("outstanding_requests", lambda: float(array.detector.outstanding))
    sampler.add_probe(
        "backend_queue_depth",
        lambda: float(sum(driver.queued for driver in array.drivers)),
    )
    sampler.add_probe("dirty_stripes", lambda: float(array.marks.count))
    sampler.add_probe("parity_lag_bytes", lambda: float(array.parity_lag_bytes))
    for index, disk in enumerate(array.disks):
        sampler.add_probe(f"disk{index}_utilisation", _utilisation_probe(sampler.sim, disk))
