"""Service-level metrics for the ``afraid-sim serve`` daemon.

The serve daemon is an actor like any simulated component, and it
publishes its live state the same way: named metrics in a
:class:`~repro.obs.registry.MetricsRegistry`, exported over ``GET
/metrics`` in Prometheus text exposition via
:func:`~repro.obs.export.prometheus_text`.

:class:`ServiceMetrics` owns the canonical metric names so the job
manager, the HTTP server, and the throughput benchmark all agree on
them:

* gauges — ``service_queue_depth`` (cells waiting for a worker),
  ``service_jobs_in_flight``, ``service_cells_in_flight``,
  ``service_cache_hit_ratio`` (lifetime hits / lookups);
* counters — ``service_jobs_submitted`` / ``_completed`` / ``_failed``
  / ``_cancelled`` / ``_rejected`` (429 backpressure),
  ``service_cells_completed``, ``service_cache_hits`` / ``_misses``,
  ``service_worker_restarts`` (pool rebuilds after a worker death),
  ``service_cell_retries`` (cells requeued by a crash);
* histogram — ``service_cell_latency_seconds`` (submit-to-completion
  wall time per cell, cache hits included).
"""

from __future__ import annotations

import threading

from repro.obs.registry import MetricsRegistry


class ServiceMetrics:
    """The serve daemon's registry metrics, under one namespace."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self.queue_depth = reg.gauge(
            "service_queue_depth", "cells waiting for a worker process"
        )
        self.jobs_in_flight = reg.gauge(
            "service_jobs_in_flight", "jobs submitted but not yet terminal"
        )
        self.cells_in_flight = reg.gauge(
            "service_cells_in_flight", "cells currently running on a worker"
        )
        self.cache_hit_ratio = reg.gauge(
            "service_cache_hit_ratio", "lifetime cache hits / cache lookups"
        )
        self.jobs_submitted = reg.counter(
            "service_jobs_submitted", "jobs accepted over the API"
        )
        self.jobs_completed = reg.counter(
            "service_jobs_completed", "jobs that reached DONE"
        )
        self.jobs_failed = reg.counter("service_jobs_failed", "jobs that reached FAILED")
        self.jobs_cancelled = reg.counter(
            "service_jobs_cancelled", "jobs cancelled by the client or a drain"
        )
        self.jobs_rejected = reg.counter(
            "service_jobs_rejected", "submissions refused by queue backpressure (429)"
        )
        self.cells_completed = reg.counter(
            "service_cells_completed", "cells finished (simulated or cached)"
        )
        self.cache_hits = reg.counter(
            "service_cache_hits", "cells answered from the content-addressed cache"
        )
        self.cache_misses = reg.counter(
            "service_cache_misses", "cells that had to be simulated"
        )
        self.worker_restarts = reg.counter(
            "service_worker_restarts", "worker-pool rebuilds after a worker death"
        )
        self.cell_retries = reg.counter(
            "service_cell_retries", "cells requeued because a worker crashed mid-cell"
        )
        self.cell_latency = reg.histogram(
            "service_cell_latency_seconds", "submit-to-completion wall time per cell"
        )
        # Warm hits complete synchronously in the submitting thread while
        # cold cells record from the dispatcher thread; the counter incs
        # and the ratio update must be one atomic step or concurrent
        # submits lose lookups (float += is not atomic).
        self._lookup_lock = threading.Lock()

    def record_lookup(self, hit: bool) -> None:
        """One cache probe; keeps the hit-ratio gauge current."""
        with self._lookup_lock:
            (self.cache_hits if hit else self.cache_misses).inc()
            lookups = self.cache_hits.value + self.cache_misses.value
            self.cache_hit_ratio.set(self.cache_hits.value / lookups)

    def __repr__(self) -> str:
        return f"<ServiceMetrics registry={self.registry!r}>"
