"""Exporters: Prometheus text exposition and JSONL registry snapshots.

Two serialisations of a :class:`~repro.obs.registry.MetricsRegistry`:

* :func:`prometheus_text` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` comments, cumulative ``_bucket{le="..."}``
  histogram series with a ``+Inf`` bucket, ``_sum`` and ``_count``), so a
  finished run's exposure state drops straight into any Prometheus /
  Grafana tooling as a node-exporter-style textfile.
  :func:`parse_prometheus_text` is the matching reader; round-tripping
  through it is pinned by test.
* :class:`RegistrySnapshotter` — appends timestamped flat snapshots
  during the run (driven by the exposure poller) and writes them as
  JSONL, one object per sample, giving the full *trajectory* rather than
  the final state.  Infinities are encoded as the string ``"inf"`` (the
  same convention as the result cache) so the output is strict JSON.
"""

from __future__ import annotations

import json
import math
import re
import typing

from repro.obs.registry import Counter, Gauge, HistogramMetric, MetricsRegistry


def _format_value(value: float) -> str:
    """A Prometheus sample value; ``repr`` round-trips floats exactly."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format: ``\\``, ``"``, newline."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def unescape_label_value(value: str) -> str:
    """Invert :func:`escape_label_value` (the parser's side of the contract)."""
    out: list[str] = []
    i = 0
    n = len(value)
    while i < n:
        ch = value[i]
        if ch == "\\" and i + 1 < n:
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
            if nxt in ('"', "\\"):
                out.append(nxt)
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def format_labels(labels: dict[str, str]) -> str:
    """``{k="v",...}`` with escaped values; an empty dict formats as ``""``."""
    if not labels:
        return ""
    body = ",".join(
        f'{name}="{escape_label_value(str(value))}"' for name, value in labels.items()
    )
    return "{" + body + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Serialise ``registry`` in the Prometheus text exposition format."""
    lines: list[str] = []
    for metric in registry.metrics():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            lines.append(f"{metric.name} {_format_value(metric.value)}")
        elif isinstance(metric, HistogramMetric):
            hist = metric.hist
            cumulative = 0
            for bucket in sorted(hist.counts):
                cumulative += hist.counts[bucket]
                _, high = hist.bucket_bounds(bucket)
                lines.append(
                    f'{metric.name}_bucket{{le="{_format_value(high)}"}} {cumulative}'
                )
            lines.append(f'{metric.name}_bucket{{le="+Inf"}} {hist.count}')
            lines.append(f"{metric.name}_sum {_format_value(hist.sum_s)}")
            lines.append(f"{metric.name}_count {hist.count}")
    lines.append("")
    return "\n".join(lines)


def write_prometheus(registry: MetricsRegistry, path) -> None:
    """Write :func:`prometheus_text` to ``path`` (a textfile-collector file)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_text(registry))


# -- parsing (the round-trip check) ----------------------------------------------------

_NAME_RE = re.compile(r"^[A-Za-z_:][A-Za-z0-9_:]*")
_LABEL_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def _scan_labels(text: str, lineno: int) -> tuple[dict[str, str], str]:
    """Parse ``{k="v",...}`` at the start of ``text``; return (labels, rest).

    A character scanner rather than a regex: label *values* may contain
    ``}``, ``,`` and escaped quotes, which no ``[^}]*`` blob survives.
    """
    assert text[0] == "{"
    labels: dict[str, str] = {}
    i = 1
    while True:
        while i < len(text) and text[i] in " \t":
            i += 1
        if i < len(text) and text[i] == "}":
            return labels, text[i + 1:]
        match = _LABEL_NAME_RE.match(text, i)
        if match is None:
            raise ValueError(f"line {lineno}: bad label name at {text[i:]!r}")
        name = match.group(0)
        i = match.end()
        if text[i:i + 2] != '="':
            raise ValueError(f"line {lineno}: expected '=\"' after label {name!r}")
        i += 2
        raw: list[str] = []
        while i < len(text):
            ch = text[i]
            if ch == "\\" and i + 1 < len(text):
                raw.append(text[i:i + 2])
                i += 2
                continue
            if ch == '"':
                break
            raw.append(ch)
            i += 1
        if i >= len(text):
            raise ValueError(f"line {lineno}: unterminated label value for {name!r}")
        labels[name] = unescape_label_value("".join(raw))
        i += 1  # past the closing quote
        if i < len(text) and text[i] == ",":
            i += 1


def parse_prometheus_text(text: str) -> dict:
    """Parse Prometheus text exposition into plain dicts.

    Returns ``{"types": {name: kind}, "help": {name: text}, "samples":
    {name: value}, "histograms": {name: {"buckets": {le: count}, "sum":
    float, "count": int}}, "labelled": {name: [(labels, value), ...]}}``
    — scalar metrics land in ``samples``, histogram series are folded
    into ``histograms``, and any other labelled series (e.g. the
    timeline's ``timeline_events_total{kind="..."}``) in ``labelled``
    with their label values unescaped.
    """
    types: dict[str, str] = {}
    helps: dict[str, str] = {}
    samples: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    labelled: dict[str, list[tuple[dict[str, str], float]]] = {}

    def hist_entry(name: str) -> dict:
        return histograms.setdefault(name, {"buckets": {}, "sum": 0.0, "count": 0})

    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            name, _, help_text = line[len("# HELP "):].partition(" ")
            helps[name] = help_text
            continue
        if line.startswith("# TYPE "):
            name, _, kind = line[len("# TYPE "):].partition(" ")
            types[name] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        match = _NAME_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: cannot parse sample {line!r}")
        name = match.group(0)
        rest = line[match.end():]
        labels: dict[str, str] | None = None
        if rest.startswith("{"):
            labels, rest = _scan_labels(rest, lineno)
        parts = rest.split()
        if len(parts) != 1:
            raise ValueError(f"line {lineno}: cannot parse sample {line!r}")
        value = _parse_value(parts[0])
        if name.endswith("_bucket") and labels is not None:
            if "le" not in labels:
                raise ValueError(f"line {lineno}: histogram bucket without le label")
            base = name[: -len("_bucket")]
            hist_entry(base)["buckets"][labels["le"]] = int(value)
        elif name.endswith("_sum") and name[: -len("_sum")] in types and (
            types.get(name[: -len("_sum")]) == "histogram"
        ):
            hist_entry(name[: -len("_sum")])["sum"] = value
        elif name.endswith("_count") and types.get(name[: -len("_count")]) == "histogram":
            hist_entry(name[: -len("_count")])["count"] = int(value)
        elif labels:
            labelled.setdefault(name, []).append((labels, value))
        else:
            samples[name] = value
    return {
        "types": types,
        "help": helps,
        "samples": samples,
        "histograms": histograms,
        "labelled": labelled,
    }


# -- JSONL snapshot trajectory ---------------------------------------------------------


def _json_safe(value: float) -> float | str:
    """Strict-JSON encoding: infinities become the string ``"inf"``."""
    if value == math.inf:
        return "inf"
    if value == -math.inf:
        return "-inf"
    return value


class RegistrySnapshotter:
    """Timestamped flat registry snapshots, exported as JSONL."""

    def __init__(self, registry: MetricsRegistry, max_snaps: int = 1_000_000) -> None:
        self.registry = registry
        self.max_snaps = max_snaps
        self.snaps: list[dict] = []
        self.dropped = 0

    def snap(self, time_s: float) -> None:
        """Record the registry's current scalar view at ``time_s``."""
        if len(self.snaps) >= self.max_snaps:
            self.dropped += 1
            return
        self.snaps.append({"time_s": time_s, **self.registry.snapshot()})

    def series(self, name: str) -> tuple[list[float], list[float]]:
        """The (times, values) trajectory of one metric across the snaps."""
        times: list[float] = []
        values: list[float] = []
        for snap in self.snaps:
            if name in snap:
                times.append(snap["time_s"])
                values.append(snap[name])
        return times, values

    def write_jsonl(self, path) -> None:
        """One JSON object per snapshot, strict JSON (inf → ``"inf"``)."""
        with open(path, "w", encoding="utf-8") as handle:
            for snap in self.snaps:
                safe = {key: _json_safe(value) for key, value in snap.items()}
                handle.write(json.dumps(safe) + "\n")

    def __repr__(self) -> str:
        return f"<RegistrySnapshotter {len(self.snaps)} snaps, {self.dropped} dropped>"


def read_jsonl_snapshots(path) -> list[dict]:
    """Read a :meth:`RegistrySnapshotter.write_jsonl` file back (inf revived)."""
    snaps = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            snap = json.loads(line)
            for key, value in snap.items():
                if value == "inf":
                    snap[key] = math.inf
                elif value == "-inf":
                    snap[key] = -math.inf
            snaps.append(snap)
    return snaps
