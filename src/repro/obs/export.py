"""Exporters: Prometheus text exposition and JSONL registry snapshots.

Two serialisations of a :class:`~repro.obs.registry.MetricsRegistry`:

* :func:`prometheus_text` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` comments, cumulative ``_bucket{le="..."}``
  histogram series with a ``+Inf`` bucket, ``_sum`` and ``_count``), so a
  finished run's exposure state drops straight into any Prometheus /
  Grafana tooling as a node-exporter-style textfile.
  :func:`parse_prometheus_text` is the matching reader; round-tripping
  through it is pinned by test.
* :class:`RegistrySnapshotter` — appends timestamped flat snapshots
  during the run (driven by the exposure poller) and writes them as
  JSONL, one object per sample, giving the full *trajectory* rather than
  the final state.  Infinities are encoded as the string ``"inf"`` (the
  same convention as the result cache) so the output is strict JSON.
"""

from __future__ import annotations

import json
import math
import re
import typing

from repro.obs.registry import Counter, Gauge, HistogramMetric, MetricsRegistry


def _format_value(value: float) -> str:
    """A Prometheus sample value; ``repr`` round-trips floats exactly."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def prometheus_text(registry: MetricsRegistry) -> str:
    """Serialise ``registry`` in the Prometheus text exposition format."""
    lines: list[str] = []
    for metric in registry.metrics():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            lines.append(f"{metric.name} {_format_value(metric.value)}")
        elif isinstance(metric, HistogramMetric):
            hist = metric.hist
            cumulative = 0
            for bucket in sorted(hist.counts):
                cumulative += hist.counts[bucket]
                _, high = hist.bucket_bounds(bucket)
                lines.append(
                    f'{metric.name}_bucket{{le="{_format_value(high)}"}} {cumulative}'
                )
            lines.append(f'{metric.name}_bucket{{le="+Inf"}} {hist.count}')
            lines.append(f"{metric.name}_sum {_format_value(hist.sum_s)}")
            lines.append(f"{metric.name}_count {hist.count}")
    lines.append("")
    return "\n".join(lines)


def write_prometheus(registry: MetricsRegistry, path) -> None:
    """Write :func:`prometheus_text` to ``path`` (a textfile-collector file)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_text(registry))


# -- parsing (the round-trip check) ----------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[A-Za-z_:][A-Za-z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def parse_prometheus_text(text: str) -> dict:
    """Parse Prometheus text exposition into plain dicts.

    Returns ``{"types": {name: kind}, "help": {name: text}, "samples":
    {name: value}, "histograms": {name: {"buckets": {le: count}, "sum":
    float, "count": int}}}`` — scalar metrics land in ``samples``,
    histogram series are folded into ``histograms``.
    """
    types: dict[str, str] = {}
    helps: dict[str, str] = {}
    samples: dict[str, float] = {}
    histograms: dict[str, dict] = {}

    def hist_entry(name: str) -> dict:
        return histograms.setdefault(name, {"buckets": {}, "sum": 0.0, "count": 0})

    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            name, _, help_text = line[len("# HELP "):].partition(" ")
            helps[name] = help_text
            continue
        if line.startswith("# TYPE "):
            name, _, kind = line[len("# TYPE "):].partition(" ")
            types[name] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: cannot parse sample {line!r}")
        name = match.group("name")
        value = _parse_value(match.group("value"))
        labels = match.group("labels")
        if name.endswith("_bucket") and labels is not None:
            le_match = re.search(r'le="([^"]*)"', labels)
            if le_match is None:
                raise ValueError(f"line {lineno}: histogram bucket without le label")
            base = name[: -len("_bucket")]
            hist_entry(base)["buckets"][le_match.group(1)] = int(value)
        elif name.endswith("_sum") and name[: -len("_sum")] in types and (
            types.get(name[: -len("_sum")]) == "histogram"
        ):
            hist_entry(name[: -len("_sum")])["sum"] = value
        elif name.endswith("_count") and types.get(name[: -len("_count")]) == "histogram":
            hist_entry(name[: -len("_count")])["count"] = int(value)
        else:
            samples[name] = value
    return {"types": types, "help": helps, "samples": samples, "histograms": histograms}


# -- JSONL snapshot trajectory ---------------------------------------------------------


def _json_safe(value: float) -> float | str:
    """Strict-JSON encoding: infinities become the string ``"inf"``."""
    if value == math.inf:
        return "inf"
    if value == -math.inf:
        return "-inf"
    return value


class RegistrySnapshotter:
    """Timestamped flat registry snapshots, exported as JSONL."""

    def __init__(self, registry: MetricsRegistry, max_snaps: int = 1_000_000) -> None:
        self.registry = registry
        self.max_snaps = max_snaps
        self.snaps: list[dict] = []
        self.dropped = 0

    def snap(self, time_s: float) -> None:
        """Record the registry's current scalar view at ``time_s``."""
        if len(self.snaps) >= self.max_snaps:
            self.dropped += 1
            return
        self.snaps.append({"time_s": time_s, **self.registry.snapshot()})

    def series(self, name: str) -> tuple[list[float], list[float]]:
        """The (times, values) trajectory of one metric across the snaps."""
        times: list[float] = []
        values: list[float] = []
        for snap in self.snaps:
            if name in snap:
                times.append(snap["time_s"])
                values.append(snap[name])
        return times, values

    def write_jsonl(self, path) -> None:
        """One JSON object per snapshot, strict JSON (inf → ``"inf"``)."""
        with open(path, "w", encoding="utf-8") as handle:
            for snap in self.snaps:
                safe = {key: _json_safe(value) for key, value in snap.items()}
                handle.write(json.dumps(safe) + "\n")

    def __repr__(self) -> str:
        return f"<RegistrySnapshotter {len(self.snaps)} snaps, {self.dropped} dropped>"


def read_jsonl_snapshots(path) -> list[dict]:
    """Read a :meth:`RegistrySnapshotter.write_jsonl` file back (inf revived)."""
    snaps = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            snap = json.loads(line)
            for key, value in snap.items():
                if value == "inf":
                    snap[key] = math.inf
                elif value == "-inf":
                    snap[key] = -math.inf
            snaps.append(snap)
    return snaps
