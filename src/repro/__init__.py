"""repro — a reproduction of AFRAID (Savage & Wilkes, USENIX 1996).

AFRAID — *A Frequently Redundant Array of Independent Disks* — is a RAID 5
variant that applies data updates immediately but defers parity updates to
idle periods, trading a small, bounded loss of availability for close to
RAID 0 performance on small writes.

The package layers, bottom-up:

* :mod:`repro.sim` — discrete-event simulation kernel;
* :mod:`repro.disk` — calibrated mechanical disk models (HP C3325-like);
* :mod:`repro.sched` — C-LOOK / FCFS / SSTF / LOOK schedulers and drivers;
* :mod:`repro.layout` — left-symmetric RAID 5 (plus RAID 0/6) layouts;
* :mod:`repro.blocks` — byte-accurate functional array (real xor parity);
* :mod:`repro.nvram`, :mod:`repro.idle`, :mod:`repro.policy` — marking
  memory, idle detection, and the parity-update policies (baseline AFRAID,
  MTTDL_x, thresholds, RAID 5, RAID 0);
* :mod:`repro.array` — the array controller tying it all together;
* :mod:`repro.traces` — synthetic stand-ins for the paper's traces;
* :mod:`repro.availability` — Section 3's MTTDL/MDLR analytics;
* :mod:`repro.faults`, :mod:`repro.metrics`, :mod:`repro.harness` —
  fault injection, statistics, and the experiment harness;
* :mod:`repro.ext` — extensions from the paper's §2/§5 (parity logging,
  AFRAID-on-RAID 6, sub-stripe marks).

Quick start::

    from repro.sim import Simulator
    from repro.array import paper_array, ArrayRequest
    from repro.disk import IoKind

    sim = Simulator()
    array = paper_array(sim)                       # 5 x HP C3325, AFRAID
    done = array.submit(ArrayRequest(IoKind.WRITE, 0, 16))
    sim.run_until_triggered(done)                  # 1 disk I/O, not 4
"""

from repro.array import ArrayRequest, DiskArray, paper_array, toy_array
from repro.availability import TABLE_1, ReliabilityParams
from repro.disk import IoKind
from repro.harness import run_experiment
from repro.policy import (
    AlwaysRaid5Policy,
    BaselineAfraidPolicy,
    DirtyStripeThresholdPolicy,
    EagerScrubPolicy,
    MttdlTargetPolicy,
    NeverScrubPolicy,
)
from repro.sim import Simulator
from repro.traces import make_trace, workload_names

__version__ = "1.0.0"

__all__ = [
    "AlwaysRaid5Policy",
    "ArrayRequest",
    "BaselineAfraidPolicy",
    "DirtyStripeThresholdPolicy",
    "DiskArray",
    "EagerScrubPolicy",
    "IoKind",
    "MttdlTargetPolicy",
    "NeverScrubPolicy",
    "ReliabilityParams",
    "Simulator",
    "TABLE_1",
    "make_trace",
    "paper_array",
    "run_experiment",
    "toy_array",
    "workload_names",
    "__version__",
]
