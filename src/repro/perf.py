"""Profiling helpers: cProfile a replay and summarise its hot path.

The fast-path work in this repo is profile-driven; this module packages
the workflow so it is one command instead of a snippet::

    afraid-sim profile cello-usr --policy afraid --duration 10 --top 15

or, from code::

    result, profile = profile_call(run_experiment, "cello-usr", policy)
    print(format_hot_path(profile, top=15))

The table is sorted by *cumulative* time by default — for a simulator
whose wall-clock hides inside generator `send` chains, cumulative time is
what points at the subsystem to optimise; ``sort="tottime"`` shows the
flat per-function cost instead.
"""

from __future__ import annotations

import cProfile
import pstats
import typing


def profile_call(
    func: typing.Callable, /, *args: typing.Any, **kwargs: typing.Any
) -> tuple[typing.Any, cProfile.Profile]:
    """Run ``func(*args, **kwargs)`` under cProfile.

    Returns ``(result, profile)``; the profile is disabled and ready for
    :func:`hot_path_rows` / :func:`format_hot_path` / :func:`dump_pstats`.
    """
    profile = cProfile.Profile()
    profile.enable()
    try:
        result = func(*args, **kwargs)
    finally:
        profile.disable()
    return result, profile


def _location(func: tuple[str, int, str]) -> str:
    filename, line, name = func
    if filename == "~":  # builtins have no file
        return name
    # Keep paths readable: everything from the package root down.
    for marker in ("/repro/", "\\repro\\"):
        index = filename.find(marker)
        if index >= 0:
            filename = filename[index + 1 :]
            break
    return f"{filename}:{line}({name})"


def hot_path_rows(
    profile: cProfile.Profile, top: int = 20, sort: str = "cumulative"
) -> list[dict[str, typing.Any]]:
    """The ``top`` hottest entries as dicts, heaviest first.

    Each row has ``function`` (``file:line(name)``), ``ncalls`` (as
    printed by pstats, e.g. ``"120/80"`` for recursive calls),
    ``tottime_s`` and ``cumtime_s``.
    """
    if sort not in ("cumulative", "tottime"):
        raise ValueError(f"sort must be 'cumulative' or 'tottime', got {sort!r}")
    stats = pstats.Stats(profile)
    key = 3 if sort == "cumulative" else 2  # index into (cc, nc, tt, ct)
    entries = sorted(
        stats.stats.items(), key=lambda item: item[1][key], reverse=True  # type: ignore[attr-defined]
    )
    rows = []
    for func, (ccalls, ncalls, tottime, cumtime, _callers) in entries[:top]:
        rows.append(
            {
                "function": _location(func),
                "ncalls": str(ncalls) if ccalls == ncalls else f"{ncalls}/{ccalls}",
                "tottime_s": tottime,
                "cumtime_s": cumtime,
            }
        )
    return rows


def format_hot_path(
    profile: cProfile.Profile, top: int = 20, sort: str = "cumulative"
) -> str:
    """A plain-text hot-path table (ncalls / tottime / cumtime / function)."""
    rows = hot_path_rows(profile, top=top, sort=sort)
    header = f"{'ncalls':>12}  {'tottime':>9}  {'cumtime':>9}  function (sorted by {sort})"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['ncalls']:>12}  {row['tottime_s']:>9.4f}  "
            f"{row['cumtime_s']:>9.4f}  {row['function']}"
        )
    return "\n".join(lines)


def dump_pstats(profile: cProfile.Profile, path: str) -> None:
    """Write the raw profile for snakeviz/pstats post-processing."""
    profile.create_stats()
    pstats.Stats(profile).dump_stats(path)
