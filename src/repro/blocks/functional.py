"""A byte-accurate RAID 5 / AFRAID array over a :class:`BlockStore`.

This model executes the *logic* of the array — xor parity maintenance,
deferred-parity writes, stripe scrubbing, degraded-mode reconstruction —
with real data, independent of timing.  The properties the paper's
availability analysis assumes are all checkable here:

* after a scrub, parity equals the xor of the stripe's data units;
* with one failed disk, every *clean* stripe reconstructs perfectly;
* with one failed disk, each *dirty* stripe loses exactly the one stripe
  unit that lived on the failed disk (no loss if that unit was parity) —
  the quantity eq. (4)'s MDLR_unprotected integrates.

With ``sub_units = M > 1`` (the §5 refinement) parity staleness is
tracked per horizontal *slice* of the stripe, so a small write dirties
only 1/M of the stripe and a failure loses only the dirty slices of the
failed unit — the sub-unit-aware ground truth the eq.-(4) prediction is
checked against.
"""

from __future__ import annotations

import numpy as np

from repro.blocks.store import BlockStore, StoreDiskFailedError
from repro.layout.base import ExtentRun
from repro.layout.raid5 import Raid5Layout
from repro.nvram import sub_unit_extent, sub_units_overlapping


class DataLostError(Exception):
    """The requested data is unrecoverable (failed disk + stale parity)."""


def xor_reduce(buffers: list[np.ndarray]) -> np.ndarray:
    """Xor equal-length uint8 buffers into a fresh array in one C pass.

    ``np.bitwise_xor.reduce`` over a stacked matrix replaces the
    Python-level accumulate loop the parity paths used to run — one
    vectorised reduction instead of one temporary copy per stripe unit.
    """
    if len(buffers) == 1:
        return buffers[0].copy()
    return np.bitwise_xor.reduce(np.stack(buffers), axis=0)


class FunctionalArray:
    """Real-bytes left-symmetric RAID 5 with optionally deferred parity."""

    def __init__(
        self, layout: Raid5Layout, sector_bytes: int = 512, sub_units: int = 1
    ) -> None:
        if sub_units < 1:
            raise ValueError(f"need >= 1 sub-unit, got {sub_units}")
        self.layout = layout
        self.sector_bytes = sector_bytes
        self.sub_units = sub_units
        striped_sectors = layout.nstripes * layout.stripe_unit_sectors
        self.store = BlockStore(layout.ndisks, striped_sectors, sector_bytes)
        #: stripe -> set of dirty (stale-parity) sub-units.
        self._dirty: dict[int, set[int]] = {}

    # -- dirty-stripe (parity lag) bookkeeping ------------------------------------

    @property
    def dirty_stripes(self) -> frozenset[int]:
        """Stripes with any stale-parity slice (the NVRAM mark set)."""
        return frozenset(self._dirty)

    @property
    def dirty_mark_count(self) -> int:
        """Total dirty (stripe, sub-unit) marks across the array."""
        return sum(len(subs) for subs in self._dirty.values())

    def dirty_sub_units(self, stripe: int) -> frozenset[int]:
        """The stale-parity sub-units of ``stripe`` (empty when clean)."""
        return frozenset(self._dirty.get(stripe, ()))

    @property
    def parity_lag_bytes(self) -> int:
        """Unredundant non-parity data right now: the paper's *parity lag*."""
        unit_bytes = self.layout.stripe_unit_sectors * self.sector_bytes
        per_stripe = self.layout.data_units_per_stripe * unit_bytes
        if self.sub_units == 1:
            return len(self._dirty) * per_stripe
        lag = 0
        data_units = self.layout.data_units_per_stripe
        for subs in self._dirty.values():
            for sub_unit in subs:
                _start, count = self._extent(sub_unit)
                lag += data_units * count * self.sector_bytes
        return lag

    def _extent(self, sub_unit: int) -> tuple[int, int]:
        return sub_unit_extent(sub_unit, self.layout.stripe_unit_sectors, self.sub_units)

    def _run_sub_units(self, run: ExtentRun) -> range:
        start_in_unit = run.disk_lba - run.stripe * self.layout.stripe_unit_sectors
        return sub_units_overlapping(
            start_in_unit, run.nsectors, self.layout.stripe_unit_sectors, self.sub_units
        )

    def _run_touches_dirty(self, run: ExtentRun) -> bool:
        subs = self._dirty.get(run.stripe)
        if subs is None:
            return False
        if self.sub_units == 1:
            return True
        return any(sub_unit in subs for sub_unit in self._run_sub_units(run))

    def _mark_run(self, run: ExtentRun) -> None:
        subs = self._dirty.get(run.stripe)
        if subs is None:
            subs = self._dirty[run.stripe] = set()
        if self.sub_units == 1:
            subs.add(0)
        else:
            subs.update(self._run_sub_units(run))

    # -- writes ----------------------------------------------------------------------

    def write(self, logical_sector: int, data: bytes, update_parity: bool = True) -> None:
        """Write ``data`` at ``logical_sector``.

        ``update_parity=True`` is RAID 5 semantics: parity is updated via
        the read-modify-write identity (new parity = old parity ⊕ old data
        ⊕ new data) and the stripe stays clean.  ``update_parity=False`` is
        the AFRAID write: data lands, parity goes stale, the touched
        sub-units are marked dirty.
        """
        buffer = np.frombuffer(bytes(data), dtype=np.uint8)
        if buffer.size % self.sector_bytes != 0:
            raise ValueError("write must be a whole number of sectors")
        nsectors = buffer.size // self.sector_bytes
        offset = 0
        for run in self.layout.map_extent(logical_sector, nsectors):
            run_bytes = run.nsectors * self.sector_bytes
            new_data = buffer[offset : offset + run_bytes]
            if update_parity and not self._run_touches_dirty(run):
                old_data = self.store.read_view(run.disk, run.disk_lba, run.nsectors)
                parity_unit = self.layout.parity_unit(run.stripe)
                in_unit = run.disk_lba - parity_unit.disk_lba  # offset within the stripe unit
                parity_lba = parity_unit.disk_lba + in_unit
                old_parity = self.store.read_view(parity_unit.disk, parity_lba, run.nsectors)
                new_parity = np.bitwise_xor(old_parity, old_data)  # fresh buffer, views intact
                new_parity ^= new_data
                self.store.write(parity_unit.disk, parity_lba, new_parity)
                self.store.write(run.disk, run.disk_lba, new_data)
            else:
                # AFRAID write, or a RAID 5 write over already-stale rows
                # (parity is stale anyway; only a scrub can fix it).
                self.store.write(run.disk, run.disk_lba, new_data)
                self._mark_run(run)
            offset += run_bytes

    def write_degraded(self, logical_sector: int, data: bytes, failed_disk: int) -> None:
        """Write with member ``failed_disk`` missing, keeping parity live.

        Mirrors the controller's degraded write: parity must absorb the
        write immediately (there is no disk to defer to).  For each stripe
        whose parity unit survives, the failed member's implied contents
        are reconstructed through parity (dirty slices are gone and come
        back zero-filled), the new data is overlaid — runs destined for
        the failed disk exist only through parity — and fresh parity is
        written, leaving the stripe clean.  When the parity unit itself
        lived on the failed disk, the surviving data units absorb the
        write directly and staleness is unchanged (nothing to update).
        """
        buffer = np.frombuffer(bytes(data), dtype=np.uint8)
        if buffer.size % self.sector_bytes != 0:
            raise ValueError("write must be a whole number of sectors")
        nsectors = buffer.size // self.sector_bytes
        unit_sectors = self.layout.stripe_unit_sectors
        sector_bytes = self.sector_bytes
        grouped: dict[int, list[tuple[ExtentRun, np.ndarray]]] = {}
        offset = 0
        for run in self.layout.map_extent(logical_sector, nsectors):
            run_bytes = run.nsectors * sector_bytes
            grouped.setdefault(run.stripe, []).append((run, buffer[offset : offset + run_bytes]))
            offset += run_bytes
        for stripe, runs in grouped.items():
            parity_unit = self.layout.parity_unit(stripe)
            if parity_unit.disk == failed_disk:
                # No live parity to maintain; all data units survive.
                for run, new_data in runs:
                    self.store.write(run.disk, run.disk_lba, new_data)
                continue
            implied = self.reconstruct_data_unit(stripe, failed_disk)
            for run, new_data in runs:
                if run.disk == failed_disk:
                    start = (run.disk_lba - stripe * unit_sectors) * sector_bytes
                    implied[start : start + new_data.size] = new_data
                else:
                    self.store.write(run.disk, run.disk_lba, new_data)
            parts = [
                implied
                if unit.disk == failed_disk
                else self.store.read_view(unit.disk, unit.disk_lba, unit_sectors)
                for unit in self.layout.data_units(stripe)
            ]
            self.store.write(parity_unit.disk, parity_unit.disk_lba, xor_reduce(parts))
            self._dirty.pop(stripe, None)

    # -- reads -------------------------------------------------------------------------

    def read(self, logical_sector: int, nsectors: int) -> bytes:
        """Read ``nsectors``; reconstructs through a single failed disk.

        Raises :class:`DataLostError` where reconstruction is impossible
        (the rows overlapped a dirty slice, or more than one disk is gone).
        """
        pieces: list[np.ndarray] = []
        for run in self.layout.map_extent(logical_sector, nsectors):
            try:
                # Views, not copies: each piece is serialised by tobytes()
                # below with no intervening store writes.
                pieces.append(self.store.read_view(run.disk, run.disk_lba, run.nsectors))
            except StoreDiskFailedError:
                pieces.append(self._reconstruct_run(run))
        return b"".join(piece.tobytes() for piece in pieces)

    def _reconstruct_run(self, run: ExtentRun) -> np.ndarray:
        if self._run_touches_dirty(run):
            raise DataLostError(
                f"stripe {run.stripe} was unredundant when disk {run.disk} failed"
            )
        parity_unit = self.layout.parity_unit(run.stripe)
        in_unit = run.disk_lba - parity_unit.disk_lba
        try:
            surviving = [
                self.store.read_view(parity_unit.disk, parity_unit.disk_lba + in_unit, run.nsectors)
            ]
            surviving.extend(
                self.store.read_view(unit.disk, unit.disk_lba + in_unit, run.nsectors)
                for unit in self.layout.data_units(run.stripe)
                if unit.disk != run.disk
            )
        except StoreDiskFailedError as exc:
            raise DataLostError(f"multiple failures cover stripe {run.stripe}") from exc
        return xor_reduce(surviving)

    def reconstruct_data_unit(self, stripe: int, failed_disk: int) -> np.ndarray:
        """Best-effort bytes of the failed member's data unit in ``stripe``.

        Rows under clean sub-units reconstruct exactly through parity;
        rows under dirty sub-units were unredundant when the disk died
        (the loss :meth:`lost_data_bytes` counts) and come back zero-filled.
        """
        parity_unit = self.layout.parity_unit(stripe)
        if parity_unit.disk == failed_disk:
            raise ValueError(f"disk {failed_disk} holds parity in stripe {stripe}, not data")
        unit_sectors = self.layout.stripe_unit_sectors
        sector_bytes = self.sector_bytes
        implied = np.zeros(unit_sectors * sector_bytes, dtype=np.uint8)
        dirty = self._dirty.get(stripe, ())
        survivors = [
            unit for unit in self.layout.data_units(stripe) if unit.disk != failed_disk
        ]
        for sub_unit in range(self.sub_units):
            if sub_unit in dirty:
                continue
            start, count = self._extent(sub_unit)
            rows = [
                self.store.read_view(parity_unit.disk, parity_unit.disk_lba + start, count)
            ]
            rows.extend(
                self.store.read_view(unit.disk, unit.disk_lba + start, count)
                for unit in survivors
            )
            implied[start * sector_bytes : (start + count) * sector_bytes] = xor_reduce(rows)
        return implied

    # -- parity maintenance ---------------------------------------------------------------

    def scrub_stripe(self, stripe: int) -> None:
        """Rebuild parity for ``stripe`` from its data units; clear its marks.

        This is the AFRAID background parity update: read every data unit,
        xor them, overwrite the parity unit.
        """
        parity_unit = self.layout.parity_unit(stripe)
        nsectors = self.layout.stripe_unit_sectors
        parity = xor_reduce(
            [
                self.store.read_view(unit.disk, unit.disk_lba, nsectors)
                for unit in self.layout.data_units(stripe)
            ]
        )
        self.store.write(parity_unit.disk, parity_unit.disk_lba, parity)
        self._dirty.pop(stripe, None)

    def scrub_sub_unit(self, stripe: int, sub_unit: int) -> None:
        """Rebuild one horizontal parity slice of ``stripe`` (§5)."""
        parity_unit = self.layout.parity_unit(stripe)
        start, count = self._extent(sub_unit)
        parity = xor_reduce(
            [
                self.store.read_view(unit.disk, unit.disk_lba + start, count)
                for unit in self.layout.data_units(stripe)
            ]
        )
        self.store.write(parity_unit.disk, parity_unit.disk_lba + start, parity)
        subs = self._dirty.get(stripe)
        if subs is not None:
            subs.discard(sub_unit)
            if not subs:
                del self._dirty[stripe]

    def scrub_all(self) -> int:
        """Scrub every dirty stripe (the mark-memory-failure recovery path:
        call with ``force_all``-style iteration by the caller if the marks
        themselves were lost).  Returns the number of stripes scrubbed."""
        dirty = sorted(self._dirty)
        for stripe in dirty:
            self.scrub_stripe(stripe)
        return len(dirty)

    def parity_consistent(self, stripe: int) -> bool:
        """True if on-disk parity equals the xor of the stripe's data."""
        parity_unit = self.layout.parity_unit(stripe)
        nsectors = self.layout.stripe_unit_sectors
        expected = xor_reduce(
            [
                self.store.read_view(unit.disk, unit.disk_lba, nsectors)
                for unit in self.layout.data_units(stripe)
            ]
        )
        actual = self.store.read_view(parity_unit.disk, parity_unit.disk_lba, nsectors)
        return bool(np.array_equal(expected, actual))

    # -- failure accounting ----------------------------------------------------------------

    def fail_disk(self, disk: int) -> None:
        """Destroy a member disk."""
        self.store.fail(disk)

    def lost_data_bytes(self, failed_disk: int) -> int:
        """Bytes of *data* (not parity) unrecoverable after ``failed_disk`` died.

        Exactly the paper's single-disk-failure loss: the dirty slices of
        the one stripe unit per dirty stripe that lived on the failed
        disk — unless that unit was parity, in which case nothing is lost
        (§3.2).  With ``sub_units == 1`` a dirty stripe loses the whole
        unit; with M > 1 only the marked horizontal slices.
        """
        unit_bytes = self.layout.stripe_unit_sectors * self.sector_bytes
        lost = 0
        for stripe, subs in self._dirty.items():
            if self.layout.parity_disk(stripe) == failed_disk:
                continue
            if self.sub_units == 1:
                lost += unit_bytes
            else:
                for sub_unit in subs:
                    _start, count = self._extent(sub_unit)
                    lost += count * self.sector_bytes
        return lost

    def __repr__(self) -> str:
        return f"<FunctionalArray {self.layout!r}, {len(self._dirty)} dirty stripes>"
