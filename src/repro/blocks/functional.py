"""A byte-accurate RAID 5 / AFRAID array over a :class:`BlockStore`.

This model executes the *logic* of the array — xor parity maintenance,
deferred-parity writes, stripe scrubbing, degraded-mode reconstruction —
with real data, independent of timing.  The properties the paper's
availability analysis assumes are all checkable here:

* after a scrub, parity equals the xor of the stripe's data units;
* with one failed disk, every *clean* stripe reconstructs perfectly;
* with one failed disk, each *dirty* stripe loses exactly the one stripe
  unit that lived on the failed disk (no loss if that unit was parity) —
  the quantity eq. (4)'s MDLR_unprotected integrates.
"""

from __future__ import annotations

import numpy as np

from repro.blocks.store import BlockStore, StoreDiskFailedError
from repro.layout.raid5 import Raid5Layout


class DataLostError(Exception):
    """The requested data is unrecoverable (failed disk + stale parity)."""


def xor_reduce(buffers: list[np.ndarray]) -> np.ndarray:
    """Xor equal-length uint8 buffers into a fresh array in one C pass.

    ``np.bitwise_xor.reduce`` over a stacked matrix replaces the
    Python-level accumulate loop the parity paths used to run — one
    vectorised reduction instead of one temporary copy per stripe unit.
    """
    if len(buffers) == 1:
        return buffers[0].copy()
    return np.bitwise_xor.reduce(np.stack(buffers), axis=0)


class FunctionalArray:
    """Real-bytes left-symmetric RAID 5 with optionally deferred parity."""

    def __init__(self, layout: Raid5Layout, sector_bytes: int = 512) -> None:
        self.layout = layout
        self.sector_bytes = sector_bytes
        striped_sectors = layout.nstripes * layout.stripe_unit_sectors
        self.store = BlockStore(layout.ndisks, striped_sectors, sector_bytes)
        self._dirty: set[int] = set()

    # -- dirty-stripe (parity lag) bookkeeping ------------------------------------

    @property
    def dirty_stripes(self) -> frozenset[int]:
        """Stripes whose on-disk parity is stale (the NVRAM mark set)."""
        return frozenset(self._dirty)

    @property
    def parity_lag_bytes(self) -> int:
        """Unredundant non-parity data right now: the paper's *parity lag*."""
        unit_bytes = self.layout.stripe_unit_sectors * self.sector_bytes
        return len(self._dirty) * self.layout.data_units_per_stripe * unit_bytes

    # -- writes ----------------------------------------------------------------------

    def write(self, logical_sector: int, data: bytes, update_parity: bool = True) -> None:
        """Write ``data`` at ``logical_sector``.

        ``update_parity=True`` is RAID 5 semantics: parity is updated via
        the read-modify-write identity (new parity = old parity ⊕ old data
        ⊕ new data) and the stripe stays clean.  ``update_parity=False`` is
        the AFRAID write: data lands, parity goes stale, the stripe is
        marked dirty.
        """
        buffer = np.frombuffer(bytes(data), dtype=np.uint8)
        if buffer.size % self.sector_bytes != 0:
            raise ValueError("write must be a whole number of sectors")
        nsectors = buffer.size // self.sector_bytes
        offset = 0
        for run in self.layout.map_extent(logical_sector, nsectors):
            run_bytes = run.nsectors * self.sector_bytes
            new_data = buffer[offset : offset + run_bytes]
            if update_parity and run.stripe not in self._dirty:
                old_data = self.store.read_view(run.disk, run.disk_lba, run.nsectors)
                parity_unit = self.layout.parity_unit(run.stripe)
                in_unit = run.disk_lba - parity_unit.disk_lba  # offset within the stripe unit
                parity_lba = parity_unit.disk_lba + in_unit
                old_parity = self.store.read_view(parity_unit.disk, parity_lba, run.nsectors)
                new_parity = np.bitwise_xor(old_parity, old_data)  # fresh buffer, views intact
                new_parity ^= new_data
                self.store.write(parity_unit.disk, parity_lba, new_parity)
                self.store.write(run.disk, run.disk_lba, new_data)
            else:
                # AFRAID write, or a RAID 5 write to an already-dirty stripe
                # (parity is stale anyway; only a scrub can fix it).
                self.store.write(run.disk, run.disk_lba, new_data)
                self._dirty.add(run.stripe)
            offset += run_bytes

    # -- reads -------------------------------------------------------------------------

    def read(self, logical_sector: int, nsectors: int) -> bytes:
        """Read ``nsectors``; reconstructs through a single failed disk.

        Raises :class:`DataLostError` where reconstruction is impossible
        (the stripe was dirty, or more than one disk is gone).
        """
        pieces: list[np.ndarray] = []
        for run in self.layout.map_extent(logical_sector, nsectors):
            try:
                # Views, not copies: each piece is serialised by tobytes()
                # below with no intervening store writes.
                pieces.append(self.store.read_view(run.disk, run.disk_lba, run.nsectors))
            except StoreDiskFailedError:
                pieces.append(self._reconstruct_run(run))
        return b"".join(piece.tobytes() for piece in pieces)

    def _reconstruct_run(self, run) -> np.ndarray:
        if run.stripe in self._dirty:
            raise DataLostError(
                f"stripe {run.stripe} was unredundant when disk {run.disk} failed"
            )
        parity_unit = self.layout.parity_unit(run.stripe)
        in_unit = run.disk_lba - parity_unit.disk_lba
        try:
            surviving = [
                self.store.read_view(parity_unit.disk, parity_unit.disk_lba + in_unit, run.nsectors)
            ]
            surviving.extend(
                self.store.read_view(unit.disk, unit.disk_lba + in_unit, run.nsectors)
                for unit in self.layout.data_units(run.stripe)
                if unit.disk != run.disk
            )
        except StoreDiskFailedError as exc:
            raise DataLostError(f"multiple failures cover stripe {run.stripe}") from exc
        return xor_reduce(surviving)

    # -- parity maintenance ---------------------------------------------------------------

    def scrub_stripe(self, stripe: int) -> None:
        """Rebuild parity for ``stripe`` from its data units; clear its mark.

        This is the AFRAID background parity update: read every data unit,
        xor them, overwrite the parity unit.
        """
        parity_unit = self.layout.parity_unit(stripe)
        nsectors = self.layout.stripe_unit_sectors
        parity = xor_reduce(
            [
                self.store.read_view(unit.disk, unit.disk_lba, nsectors)
                for unit in self.layout.data_units(stripe)
            ]
        )
        self.store.write(parity_unit.disk, parity_unit.disk_lba, parity)
        self._dirty.discard(stripe)

    def scrub_all(self) -> int:
        """Scrub every dirty stripe (the mark-memory-failure recovery path:
        call with ``force_all``-style iteration by the caller if the marks
        themselves were lost).  Returns the number of stripes scrubbed."""
        dirty = sorted(self._dirty)
        for stripe in dirty:
            self.scrub_stripe(stripe)
        return len(dirty)

    def parity_consistent(self, stripe: int) -> bool:
        """True if on-disk parity equals the xor of the stripe's data."""
        parity_unit = self.layout.parity_unit(stripe)
        nsectors = self.layout.stripe_unit_sectors
        expected = xor_reduce(
            [
                self.store.read_view(unit.disk, unit.disk_lba, nsectors)
                for unit in self.layout.data_units(stripe)
            ]
        )
        actual = self.store.read_view(parity_unit.disk, parity_unit.disk_lba, nsectors)
        return bool(np.array_equal(expected, actual))

    # -- failure accounting ----------------------------------------------------------------

    def fail_disk(self, disk: int) -> None:
        """Destroy a member disk."""
        self.store.fail(disk)

    def lost_data_bytes(self, failed_disk: int) -> int:
        """Bytes of *data* (not parity) unrecoverable after ``failed_disk`` died.

        Exactly the paper's single-disk-failure loss: one stripe unit per
        dirty stripe — unless the failed disk held that stripe's parity
        unit, in which case nothing is lost (§3.2).
        """
        unit_bytes = self.layout.stripe_unit_sectors * self.sector_bytes
        lost = 0
        for stripe in self._dirty:
            if self.layout.parity_disk(stripe) != failed_disk:
                lost += unit_bytes
        return lost

    def __repr__(self) -> str:
        return f"<FunctionalArray {self.layout!r}, {len(self._dirty)} dirty stripes>"
