"""A byte-accurate block store: one array of sectors per member disk."""

from __future__ import annotations

import numpy as np


class StoreDiskFailedError(Exception):
    """A read or write touched a failed member disk."""


class BlockStore:
    """Real bytes for ``ndisks`` disks of ``sectors`` sectors each.

    All contents start zeroed — which conveniently makes every stripe's xor
    parity consistent at time zero, mirroring a freshly initialised array.
    """

    def __init__(self, ndisks: int, sectors: int, sector_bytes: int = 512) -> None:
        if ndisks < 1:
            raise ValueError(f"need >= 1 disk, got {ndisks}")
        if sectors < 1:
            raise ValueError(f"need >= 1 sector, got {sectors}")
        if sector_bytes < 1:
            raise ValueError(f"sector_bytes must be positive, got {sector_bytes}")
        self.ndisks = ndisks
        self.sectors = sectors
        self.sector_bytes = sector_bytes
        self._surfaces = [np.zeros(sectors * sector_bytes, dtype=np.uint8) for _ in range(ndisks)]
        self._failed = [False] * ndisks

    # -- failure state ----------------------------------------------------------

    def fail(self, disk: int) -> None:
        """Destroy ``disk``: contents are lost, accesses raise."""
        self._check_disk(disk)
        self._failed[disk] = True
        # Scribble over the surface so any buggy path that still reads it
        # produces visibly wrong data rather than stale-but-plausible bytes.
        self._surfaces[disk][:] = 0xDE

    def is_failed(self, disk: int) -> bool:
        self._check_disk(disk)
        return self._failed[disk]

    @property
    def failed_disks(self) -> list[int]:
        return [disk for disk, failed in enumerate(self._failed) if failed]

    def replace(self, disk: int) -> None:
        """Swap in a fresh (zeroed) drive for a failed slot."""
        self._check_disk(disk)
        self._surfaces[disk] = np.zeros(self.sectors * self.sector_bytes, dtype=np.uint8)
        self._failed[disk] = False

    # -- data access -----------------------------------------------------------------

    def read(self, disk: int, lba: int, nsectors: int) -> np.ndarray:
        """Copy ``nsectors`` starting at ``lba`` off ``disk``."""
        self._check_extent(disk, lba, nsectors)
        if self._failed[disk]:
            raise StoreDiskFailedError(f"disk {disk} has failed")
        start = lba * self.sector_bytes
        end = start + nsectors * self.sector_bytes
        return self._surfaces[disk][start:end].copy()

    def read_view(self, disk: int, lba: int, nsectors: int) -> np.ndarray:
        """Zero-copy view of ``nsectors`` starting at ``lba`` on ``disk``.

        For read-only consumers (the xor/parity paths): callers must not
        mutate the result and must not hold it across a write to the same
        extent.  Use :meth:`read` when in doubt.
        """
        self._check_extent(disk, lba, nsectors)
        if self._failed[disk]:
            raise StoreDiskFailedError(f"disk {disk} has failed")
        start = lba * self.sector_bytes
        return self._surfaces[disk][start : start + nsectors * self.sector_bytes]

    def write(self, disk: int, lba: int, data: np.ndarray | bytes) -> None:
        """Write ``data`` (a whole number of sectors) at ``lba`` on ``disk``."""
        buffer = np.frombuffer(bytes(data), dtype=np.uint8) if isinstance(data, (bytes, bytearray)) else data
        if buffer.size % self.sector_bytes != 0:
            raise ValueError(
                f"write must be whole sectors: {buffer.size} bytes with {self.sector_bytes}-byte sectors"
            )
        nsectors = buffer.size // self.sector_bytes
        self._check_extent(disk, lba, nsectors)
        if self._failed[disk]:
            raise StoreDiskFailedError(f"disk {disk} has failed")
        start = lba * self.sector_bytes
        self._surfaces[disk][start : start + buffer.size] = buffer

    # -- validation ----------------------------------------------------------------------

    def _check_disk(self, disk: int) -> None:
        if not 0 <= disk < self.ndisks:
            raise ValueError(f"disk {disk} out of range [0, {self.ndisks})")

    def _check_extent(self, disk: int, lba: int, nsectors: int) -> None:
        self._check_disk(disk)
        if nsectors < 1:
            raise ValueError(f"nsectors must be >= 1, got {nsectors}")
        if lba < 0 or lba + nsectors > self.sectors:
            raise ValueError(f"extent [{lba}, {lba + nsectors}) outside disk of {self.sectors} sectors")

    def __repr__(self) -> str:
        return f"<BlockStore {self.ndisks} x {self.sectors} sectors, failed={self.failed_disks}>"
