"""Functional (real-bytes) array models.

The timing simulation in :mod:`repro.array` moves no actual data.  This
package is its correctness twin: a :class:`~repro.blocks.store.BlockStore`
holds real bytes per member disk, and
:class:`~repro.blocks.functional.FunctionalArray` layers real xor parity,
degraded-mode reconstruction, deferred-parity (AFRAID) writes, stripe
scrubbing, and post-failure loss accounting on top.  Tests use it to verify
the invariants the paper's design rests on; the fault-injection experiments
use it to measure exactly which bytes a failure destroys.
"""

from repro.blocks.functional import DataLostError, FunctionalArray
from repro.blocks.store import BlockStore, StoreDiskFailedError

__all__ = [
    "BlockStore",
    "DataLostError",
    "FunctionalArray",
    "StoreDiskFailedError",
]
