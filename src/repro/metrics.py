"""Summary statistics for experiment results, plus lightweight perf hooks.

The paper reports mean I/O times per trace and *geometric* means across
traces (the right mean for ratios — §4.2's "geometric mean of 4.1 times").
:class:`PerfCounters` is the harness's own instrumentation: named counts
(events dispatched, IOs serviced, cells simulated) and wall-clock per
phase, so a speedup claim is observable rather than asserted.
"""

from __future__ import annotations

import contextlib
import dataclasses
import math
import time
import typing


@dataclasses.dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a sample."""

    count: int
    mean: float
    median: float
    p95: float
    minimum: float
    maximum: float

    @classmethod
    def of(cls, values: typing.Sequence[float]) -> "Summary":
        """Summarise a sample; an empty one yields the all-zero, count-0
        summary rather than raising (``len()`` rather than truthiness, so
        numpy arrays work too)."""
        if len(values) == 0:
            return cls(count=0, mean=0.0, median=0.0, p95=0.0, minimum=0.0, maximum=0.0)
        ordered = sorted(values)
        return cls(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            median=percentile(ordered, 50.0, presorted=True),
            p95=percentile(ordered, 95.0, presorted=True),
            minimum=ordered[0],
            maximum=ordered[-1],
        )


def percentile(values: typing.Sequence[float], q: float, presorted: bool = False) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    if len(values) == 0:
        raise ValueError("percentile of empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = list(values) if presorted else sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def geometric_mean(values: typing.Sequence[float]) -> float:
    """The geometric mean; every value must be positive."""
    if len(values) == 0:
        raise ValueError("geometric mean of empty sample")
    total = 0.0
    for value in values:
        if value <= 0:
            raise ValueError(f"geometric mean needs positive values, got {value}")
        total += math.log(value)
    return math.exp(total / len(values))


def ratio_summary(numerators: typing.Sequence[float], denominators: typing.Sequence[float]) -> float:
    """Geometric mean of pairwise ratios (the paper's cross-trace speedups)."""
    if len(numerators) != len(denominators):
        raise ValueError("ratio series must have equal length")
    return geometric_mean([n / d for n, d in zip(numerators, denominators)])


class PerfCounters:
    """Named counters and per-phase wall-clock accumulators.

    Deliberately minimal: a plain dict of integer counts and a dict of
    float seconds.  The hot paths this instruments (the kernel run loop,
    the sweep engine) pay nothing unless a caller passes an instance in.

    Example
    -------
    >>> counters = PerfCounters()
    >>> counters.count("events_dispatched", 12)
    >>> with counters.phase("replay"):
    ...     pass
    >>> counters.counts["events_dispatched"]
    12
    """

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}
        self.timings_s: dict[str, float] = {}

    def count(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the ``name`` counter."""
        self.counts[name] = self.counts.get(name, 0) + amount

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` of wall-clock under phase ``name``."""
        self.timings_s[name] = self.timings_s.get(name, 0.0) + seconds

    @contextlib.contextmanager
    def phase(self, name: str) -> typing.Iterator[None]:
        """Time a ``with`` block into ``timings_s[name]`` (re-entrant safe)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - started)

    def merge(self, other: "PerfCounters") -> None:
        """Fold another instance's totals into this one (cross-process)."""
        for name, amount in other.counts.items():
            self.count(name, amount)
        for name, seconds in other.timings_s.items():
            self.add_time(name, seconds)

    def snapshot(self) -> dict:
        """A JSON-friendly copy of all totals."""
        return {"counts": dict(self.counts), "timings_s": dict(self.timings_s)}

    def rows(self) -> list[list[str]]:
        """(name, value) rows for table rendering, counters then phases."""
        rows = [[name, str(value)] for name, value in sorted(self.counts.items())]
        rows.extend(
            [f"{name} (s)", f"{seconds:.3f}"] for name, seconds in sorted(self.timings_s.items())
        )
        return rows

    def __repr__(self) -> str:
        return f"<PerfCounters {self.counts!r} {self.timings_s!r}>"
