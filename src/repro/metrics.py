"""Summary statistics for experiment results.

The paper reports mean I/O times per trace and *geometric* means across
traces (the right mean for ratios — §4.2's "geometric mean of 4.1 times").
"""

from __future__ import annotations

import dataclasses
import math
import typing


@dataclasses.dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a sample."""

    count: int
    mean: float
    median: float
    p95: float
    minimum: float
    maximum: float

    @classmethod
    def of(cls, values: typing.Sequence[float]) -> "Summary":
        if not values:
            return cls(count=0, mean=0.0, median=0.0, p95=0.0, minimum=0.0, maximum=0.0)
        ordered = sorted(values)
        return cls(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            median=percentile(ordered, 50.0, presorted=True),
            p95=percentile(ordered, 95.0, presorted=True),
            minimum=ordered[0],
            maximum=ordered[-1],
        )


def percentile(values: typing.Sequence[float], q: float, presorted: bool = False) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = list(values) if presorted else sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def geometric_mean(values: typing.Sequence[float]) -> float:
    """The geometric mean; every value must be positive."""
    if not values:
        raise ValueError("geometric mean of empty sample")
    total = 0.0
    for value in values:
        if value <= 0:
            raise ValueError(f"geometric mean needs positive values, got {value}")
        total += math.log(value)
    return math.exp(total / len(values))


def ratio_summary(numerators: typing.Sequence[float], denominators: typing.Sequence[float]) -> float:
    """Geometric mean of pairwise ratios (the paper's cross-trace speedups)."""
    if len(numerators) != len(denominators):
        raise ValueError("ratio series must have equal length")
    return geometric_mean([n / d for n, d in zip(numerators, denominators)])
