"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence.  It starts *pending*, becomes
*triggered* when :meth:`Event.succeed` or :meth:`Event.fail` is called, and
its callbacks are dispatched by the simulator at the current simulated time.
Processes wait on events by yielding them.
"""

from __future__ import annotations

import typing
from heapq import heappush as _heappush

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.core import Simulator

# Sentinel distinguishing "no value yet" from a legitimate None value.
class _PendingType:
    """Sentinel type for "no value yet".

    Identity-compared everywhere (``value is _PENDING``), so it must
    survive pickling: snapshot/restore handoff (see
    :mod:`repro.harness.sharding`) round-trips whole simulators, and a
    plain ``object()`` would come back as a *different* object, silently
    turning pending events into triggered ones.  ``__reduce__`` pins the
    unpickled result to the module singleton.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return "<pending>"

    def __reduce__(self):
        return (_restore_pending, ())


_PENDING = _PendingType()


def _restore_pending() -> "_PendingType":
    """Unpickle hook: there is exactly one pending sentinel."""
    return _PENDING


class EventFailed(Exception):
    """Raised inside a process when the event it waited on failed."""


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    sim:
        The owning simulator.  An event may only be used with the simulator
        that created it.
    name:
        Optional label used in ``repr`` and simulator traces.
    """

    __slots__ = (
        "sim",
        "name",
        "callbacks",
        "defused",
        "_value",
        "_exception",
        "_scheduled",
        "_handled",
    )

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.callbacks: list[typing.Callable[[Event], None]] | None = []
        #: Set True to allow a failure with no listeners to pass silently.
        self.defused = False
        self._value: typing.Any = _PENDING
        self._exception: BaseException | None = None
        self._scheduled = False
        self._handled = False

    # -- state inspection ---------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value or an exception."""
        return self._value is not _PENDING or self._exception is not None

    @property
    def processed(self) -> bool:
        """True once the simulator has dispatched the event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully (not failed)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> typing.Any:
        """The success value.  Raises if the event is pending or failed."""
        if self._exception is not None:
            raise self._exception
        if self._value is _PENDING:
            raise RuntimeError(f"{self!r} has not been triggered")
        return self._value

    @property
    def exception(self) -> BaseException | None:
        """The failure exception, or None."""
        return self._exception

    # -- triggering ---------------------------------------------------------

    def succeed(self, value: typing.Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING or self._exception is not None:
            raise RuntimeError(f"{self!r} already triggered")
        if self._scheduled:
            raise RuntimeError(f"{self!r} scheduled twice")
        self._value = value
        # Scheduling is inlined (this is the hottest kernel path: every
        # disk completion, resource grant, and process step lands here).
        # Triggering always happens *now*, so the event goes straight to
        # the current-instant bucket — O(1), no heap sift (see the
        # ordering invariant in repro.sim.core).
        sim = self.sim
        self._scheduled = True
        sim._sequence += 1
        sim._bucket.append(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with a failure.

        A process waiting on the event sees ``exception`` raised at its
        ``yield`` expression.
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self._scheduled:
            raise RuntimeError(f"{self!r} scheduled twice")
        self._exception = exception
        sim = self.sim
        self._scheduled = True
        sim._sequence += 1
        sim._bucket.append(self)
        return self

    # -- callback plumbing ----------------------------------------------------

    def add_callback(self, callback: typing.Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is dispatched.

        If the event has already been processed the callback runs
        immediately, so late listeners never miss the occurrence.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def _dispatch(self) -> None:
        """Run and clear the callback list (simulator internal)."""
        callbacks, self.callbacks = self.callbacks, None
        self._handled = bool(callbacks)
        if callbacks:
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation.

    Construction is the single hottest allocation in the kernel (every
    simulated wait is one), so ``__init__`` writes the slots directly and
    pushes onto the heap itself instead of chaining through
    ``Event.__init__`` and ``Simulator._schedule_event``.  The display
    name is computed lazily in ``__repr__`` — formatting it eagerly used
    to dominate timeout-heavy workloads.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: typing.Any = None, name: str = "") -> None:
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay}")
        self.sim = sim
        self.name = name
        self.callbacks = []
        self._value = value
        self._exception = None
        self.delay = delay
        # defused / _scheduled / _handled slots stay unset: a timeout is
        # born triggered, so succeed()/fail() raise before reading
        # _scheduled, and the failure paths that read defused/_handled
        # are unreachable (_exception is always None).  Skipping three
        # writes is measurable at millions of timeouts per sweep.
        sim._sequence += 1
        when = sim._now + delay
        if when > sim._now:
            _heappush(sim._queue, (when, sim._sequence, self))
        else:
            sim._bucket.append(self)

    def __repr__(self) -> str:
        state = "processed" if self.callbacks is None else "pending"
        label = f" {self.name!r}" if self.name else f" ({self.delay:g}s)"
        return f"<{type(self).__name__}{label} {state}>"

    @classmethod
    def _unscheduled(cls, sim: "Simulator", delay: float, value: typing.Any = None) -> "Timeout":
        """Build a timeout without pushing it onto the heap.

        For :meth:`Simulator.timeouts`, which appends a whole batch and
        re-heapifies once.  The caller owns getting the entry queued.
        """
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay}")
        timeout = cls.__new__(cls)
        timeout.sim = sim
        timeout.name = ""
        timeout.callbacks = []
        timeout._value = value
        timeout._exception = None
        timeout.delay = delay
        return timeout


class _Condition(Event):
    """Base for events composed of several child events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: typing.Iterable[Event], name: str) -> None:
        # Event.__init__ and add_callback inlined: conditions are built per
        # array request (several per stripe write), and the bound-method
        # call per child was measurable in trace replay.  Semantics match
        # exactly — a child already processed runs the callback
        # immediately, just as add_callback would.
        self.sim = sim
        self.name = name
        self.callbacks = []
        self.defused = False
        self._value = _PENDING
        self._exception = None
        self._scheduled = False
        self._handled = False
        self.events: tuple[Event, ...] = tuple(events)
        for event in self.events:
            if event.sim is not sim:
                raise ValueError("all composed events must share one simulator")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed(self._collect())
        else:
            on_child = self._on_child
            for event in self.events:
                callbacks = event.callbacks
                if callbacks is None:
                    on_child(event)
                else:
                    callbacks.append(on_child)

    def _collect(self) -> list[typing.Any]:
        return [event._value for event in self.events if event.triggered and event.ok]

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every child event has fired.

    The value is the list of child values in construction order.  If any
    child fails, the condition fails with that child's exception (first
    failure wins).
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: typing.Iterable[Event], name: str = "all_of") -> None:
        super().__init__(sim, events, name)

    def _on_child(self, event: Event) -> None:
        # Slot reads instead of the triggered/ok properties: this runs
        # once per child per condition, on the replay hot path.
        if self._value is not _PENDING or self._exception is not None:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([child._value for child in self.events])


class AnyOf(_Condition):
    """Fires when the first child event fires, with that child's value.

    A failing first child fails the condition.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: typing.Iterable[Event], name: str = "any_of") -> None:
        super().__init__(sim, events, name)

    def _on_child(self, event: Event) -> None:
        if self._value is not _PENDING or self._exception is not None:
            return
        if event._exception is not None:
            self.fail(event._exception)
        else:
            self.succeed(event._value)
