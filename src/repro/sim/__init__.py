"""Discrete-event simulation kernel.

This package is the substrate that replaces HP's Pantheon simulator in the
AFRAID reproduction.  It provides a deterministic, coroutine-based
discrete-event simulator:

* :class:`~repro.sim.core.Simulator` — the event loop and simulated clock.
* :class:`~repro.sim.events.Event` — one-shot occurrences that processes wait
  on; :class:`~repro.sim.events.Timeout` fires after a simulated delay, and
  :class:`~repro.sim.events.AllOf` / :class:`~repro.sim.events.AnyOf` compose
  events (e.g. the two parallel pre-reads of a RAID 5 small write).
* :class:`~repro.sim.process.Process` — a generator that yields events; the
  kernel resumes it when the yielded event fires.
* :class:`~repro.sim.resources.Resource` — a counted resource with a FIFO
  wait queue (used for the array's bounded request admission).

Determinism: events scheduled for the same instant fire in schedule order
(FIFO tie-breaking by a monotone sequence number), so a given program and
seed always produce the same trajectory.
"""

from repro.sim.core import Simulator
from repro.sim.events import AllOf, AnyOf, Event, EventFailed, Timeout
from repro.sim.process import Interrupt, Process, ProcessKilled
from repro.sim.resources import Resource

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "EventFailed",
    "Interrupt",
    "Process",
    "ProcessKilled",
    "Resource",
    "Simulator",
    "Timeout",
]
