"""A calendar-style event queue: current-instant bucket + heap fallback.

Classic calendar queues [Brown88] bucket events by time so that insert and
pop are amortised O(1) instead of the binary heap's O(log n).  A
discrete-event *simulation* kernel has one overwhelmingly dominant insert
pattern: events scheduled for the **current instant** (event cascades —
completions triggering callbacks triggering more same-instant events).
This implementation therefore keeps exactly one calendar bucket — the
bucket for *now* — as a FIFO deque (O(1) append/popleft, no sift), and
falls back to a binary heap for everything in the sparse future horizon,
where per-event O(log n) is paid only by the minority of entries that
actually cross time.

Ordering contract (identical to a pure ``(time, seq)`` heap):

* every entry receives a monotonically increasing sequence number at
  schedule time;
* entries pop in ``(time, seq)`` order — i.e. time order, with FIFO
  tie-break for equal times.

Why the split preserves that order exactly: an entry lands in the bucket
only when it is scheduled *at* the current clock reading, and the clock
never moves backwards, so every heap entry whose time equals the current
instant was scheduled while the clock was still earlier — hence carries a
**smaller** sequence number than every bucket entry.  The pop rule
(drain heap entries due now before bucket entries, then the bucket in
FIFO order, then advance time via the heap) is therefore exactly
``(time, seq)`` order without storing or comparing sequence numbers for
the bucket at all.

:class:`repro.sim.core.Simulator` embeds this discipline inline (its run
loop is the hottest cycle in the tree); this standalone class is the
reference implementation the property tests exercise, and is usable
anywhere an order-preserving scheduler is needed.
"""

from __future__ import annotations

import typing
from collections import deque
from heapq import heapify as _heapify, heappop as _heappop, heappush as _heappush


class CalendarQueue:
    """An order-preserving scheduler: ``push(when, item)`` / ``pop()``.

    ``pop`` returns ``(when, item)`` pairs in ``(when, schedule-order)``
    order and advances the internal clock to ``when``.  Pushing an entry
    earlier than the current clock raises ``ValueError`` (time never runs
    backwards in a simulation).

    ``cancel`` is lazy: the entry is marked dead and skipped at pop time,
    which keeps cancellation O(1) without disturbing heap order.
    """

    __slots__ = ("_now", "_heap", "_bucket", "_sequence", "_live")

    #: Slot index of the liveness flag inside an entry.
    _ALIVE = 3

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        #: Future entries: ``[when, seq, item, alive]`` lists, heap-ordered.
        self._heap: list[list] = []
        #: Entries due at exactly ``_now``, FIFO.
        self._bucket: deque[list] = deque()
        self._sequence = 0
        self._live = 0

    # -- inspection -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Clock reading: the time of the most recently popped entry."""
        return self._now

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def peek(self) -> float:
        """Time of the next live entry, or ``+inf`` when empty."""
        self._vacuum()
        if self._bucket:
            # A live bucket entry is due now unless a heap entry at the
            # same instant predates it — either way the next time is now.
            return self._now
        if self._heap:
            return self._heap[0][0]
        return float("inf")

    # -- scheduling -----------------------------------------------------------

    def push(self, when: float, item: typing.Any) -> list:
        """Schedule ``item`` at time ``when``; returns a cancellation token."""
        if when < self._now:
            raise ValueError(f"cannot schedule into the past: {when} < {self._now}")
        self._sequence += 1
        entry = [when, self._sequence, item, True]
        if when > self._now:
            _heappush(self._heap, entry)
        else:
            self._bucket.append(entry)
        self._live += 1
        return entry

    def bulk_push(self, pairs: typing.Iterable[tuple[float, typing.Any]]) -> list[list]:
        """Schedule many entries, restoring heap order in one pass.

        Current-instant entries still go to the bucket — appending them to
        the heap would hand them sequence numbers *larger* than existing
        bucket entries while the pop rule drains due heap entries first,
        inverting FIFO order for simultaneous timestamps.  (This is the
        bulk-path ordering bug the regression tests pin down.)
        """
        now = self._now
        heap = self._heap
        bucket = self._bucket
        entries = []
        grew_heap = False
        for when, item in pairs:
            if when < now:
                raise ValueError(f"cannot schedule into the past: {when} < {now}")
            self._sequence += 1
            entry = [when, self._sequence, item, True]
            if when > now:
                heap.append(entry)
                grew_heap = True
            else:
                bucket.append(entry)
            self._live += 1
            entries.append(entry)
        if grew_heap:
            _heapify(heap)
        return entries

    def cancel(self, token: list) -> bool:
        """Cancel a scheduled entry; returns False if already popped/dead."""
        if token[self._ALIVE]:
            token[self._ALIVE] = False
            self._live -= 1
            return True
        return False

    # -- popping --------------------------------------------------------------

    def _vacuum(self) -> None:
        """Drop dead entries from the front of both structures."""
        bucket = self._bucket
        while bucket and not bucket[0][3]:
            bucket.popleft()
        heap = self._heap
        while heap and not heap[0][3]:
            _heappop(heap)

    def pop(self) -> tuple[float, typing.Any]:
        """Remove and return the next ``(when, item)``; advances the clock."""
        while True:
            bucket = self._bucket
            heap = self._heap
            if bucket:
                # Heap entries due at the current instant were scheduled
                # before the clock reached it: they precede the bucket.
                if heap and heap[0][0] <= self._now:
                    entry = _heappop(heap)
                else:
                    entry = bucket.popleft()
            elif heap:
                entry = _heappop(heap)
            else:
                raise IndexError("pop from an empty CalendarQueue")
            if entry[3]:
                # Retire the token: a popped entry must read as dead, or
                # a later cancel() on it would corrupt the live count.
                entry[3] = False
                self._now = entry[0]
                self._live -= 1
                return entry[0], entry[2]
