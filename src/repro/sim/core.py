"""The simulator: calendar event queue, clock, and run loop.

Event-queue discipline
----------------------
The kernel uses the bucket-calendar discipline of
:class:`repro.sim.calendar.CalendarQueue`, embedded inline (the run loop
is the hottest cycle in the tree, so the queue lives as two plain
attributes rather than behind method calls):

* ``_bucket`` — a FIFO deque of events scheduled for the **current
  instant** (event cascades: completions triggering callbacks triggering
  more same-instant events).  Append/popleft are O(1) with no sift.
* ``_queue`` — a binary heap of ``(time, seq, event)`` for events in the
  future horizon, where O(log n) is paid only by entries that actually
  cross time.

Ordering invariant (everything below depends on it):

1. Every scheduled event receives a monotonically increasing sequence
   number (``_sequence``), and events must dispatch in ``(time, seq)``
   order — time order with FIFO tie-break for simultaneous events.
2. An event lands in the bucket only when scheduled *at* the current
   clock reading; the clock never moves backwards.  Hence every heap
   entry whose time equals the current instant was scheduled while the
   clock was still earlier and carries a *smaller* sequence number than
   every bucket entry.
3. The pop rule — heap entries due now first, then the bucket FIFO, then
   advance time via the heap — is therefore exactly ``(time, seq)``
   order without storing sequence numbers for bucket entries at all.

Corollary for **bulk scheduling** (:meth:`Simulator.timeouts`): a batch
entry with zero delay must go to the bucket, not the heap.  Appending it
to the heap would give it a sequence number larger than existing bucket
entries while the pop rule drains due heap entries first — inverting
FIFO order for simultaneous timestamps.  The bulk path also must not
publish any entry until the whole batch has validated: a half-applied
batch that bumped ``_sequence`` for some entries and then raised would
let later schedules reuse sequence numbers, breaking invariant 1.
"""

from __future__ import annotations

import heapq
import typing
from collections import deque
from sys import getrefcount as _getrefcount

from repro.sim.events import Event, Timeout
from repro.sim.process import Process, ProcessGenerator

#: Upper bound on the per-simulator timeout freelist.  Replay workloads
#: keep only a handful of timeouts in flight at once; the cap just stops a
#: pathological burst from pinning memory.
_TIMEOUT_POOL_MAX = 256


class Simulator:
    """A deterministic discrete-event simulator.

    Time is a float in **seconds**.  Events scheduled for the same instant
    are dispatched in schedule order.

    Example
    -------
    >>> sim = Simulator()
    >>> def hello(sim):
    ...     yield sim.timeout(1.5)
    ...     return sim.now
    >>> proc = sim.process(hello(sim))
    >>> sim.run()
    >>> proc.value
    1.5
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        #: Future events, heap-ordered (see the module docstring).
        self._queue: list[tuple[float, int, Event]] = []
        #: Events due at exactly ``_now``, FIFO (see the module docstring).
        self._bucket: deque[Event] = deque()
        self._sequence = 0
        self._trace: typing.Callable[[float, Event], None] | None = None
        #: Recycled Timeout objects (see the run loop): every disk I/O is
        #: at least one timeout, and reusing the object skips the
        #: allocator on the kernel's hottest construction path.
        self._timeout_pool: list[Timeout] = []

    # -- clock ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- factories --------------------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a pending event that some component will trigger later."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: typing.Any = None, name: str = "") -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        pool = self._timeout_pool
        if pool and not name:
            if delay < 0:
                raise ValueError(f"timeout delay must be >= 0, got {delay}")
            # Reuse a recycled timeout: the run loop only pools timeouts it
            # proved unreferenced, so resetting the live slots is safe.
            timeout = pool.pop()
            timeout.callbacks = []
            timeout._value = value
            timeout._exception = None
            timeout.delay = delay
            self._sequence += 1
            when = self._now + delay
            if when > self._now:
                heapq.heappush(self._queue, (when, self._sequence, timeout))
            else:
                self._bucket.append(timeout)
            return timeout
        return Timeout(self, delay, value=value, name=name)

    def timeouts(self, delays: typing.Iterable[float], value: typing.Any = None) -> list[Timeout]:
        """Create many timeouts at once, restoring the heap in one pass.

        Per-timeout ``heappush`` costs O(log n) each; a batch appends every
        entry and re-heapifies once (O(n + k)), which wins for large k —
        e.g. pre-scheduling a whole scrub or arrival schedule.

        The batch is validated *before* anything is published: sequence
        numbers are only consumed once every delay has been checked, so a
        bad delay leaves the simulator untouched (see the module
        docstring's bulk-scheduling corollary).  Zero-delay entries go to
        the current-instant bucket, preserving FIFO order against events
        already scheduled for now.
        """
        batch = [Timeout._unscheduled(self, delay, value) for delay in delays]
        queue = self._queue
        bucket = self._bucket
        now = self._now
        sequence = self._sequence
        grew_heap = False
        for timeout in batch:
            sequence += 1
            when = now + timeout.delay
            if when > now:
                queue.append((when, sequence, timeout))
                grew_heap = True
            else:
                bucket.append(timeout)
        self._sequence = sequence
        if grew_heap:
            heapq.heapify(queue)
        return batch

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    # -- scheduling (kernel internal, used by Event) ---------------------------

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            raise RuntimeError(f"{event!r} scheduled twice")
        event._scheduled = True
        self._sequence += 1
        when = self._now + delay
        if when > self._now:
            heapq.heappush(self._queue, (when, self._sequence, event))
        else:
            self._bucket.append(event)

    # -- run loop ---------------------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        if self._bucket:
            return self._now
        return self._queue[0][0] if self._queue else float("inf")

    @property
    def events_dispatched(self) -> int:
        """Events dispatched so far (scheduled minus still queued).

        Every scheduled event receives a sequence number and is dispatched
        exactly once, so this costs nothing to maintain.
        """
        return self._sequence - len(self._queue) - len(self._bucket)

    def _pop_next(self) -> Event:
        """Remove the next event in (time, seq) order; advances the clock."""
        bucket = self._bucket
        queue = self._queue
        if bucket:
            # Heap entries due at the current instant were scheduled
            # before the clock reached it: they precede the bucket.
            if queue and queue[0][0] <= self._now:
                return heapq.heappop(queue)[2]
            return bucket.popleft()
        when, _seq, event = heapq.heappop(queue)
        self._now = when
        return event

    def step(self) -> None:
        """Dispatch the single next event."""
        event = self._pop_next()
        if self._trace is not None:
            self._trace(self._now, event)
        event._dispatch()
        if event._exception is not None and not event.defused and not event._handled:
            # An event failed and nothing is positioned to handle it (any
            # waiter attached before dispatch has run by now and either
            # handled it or re-failed; a failure with no handler at all must
            # not pass silently).  _dispatch cleared the callback list, so
            # _handled records whether anyone was listening.
            raise event._exception

    def run(self, until: float | None = None) -> None:
        """Run until the queue empties or simulated time passes ``until``.

        When ``until`` is given, the clock is left at exactly ``until`` even
        if the last event fired earlier (so time-weighted statistics can
        close their integrals at the horizon).
        """
        if until is not None and until < self._now:
            raise ValueError(f"cannot run backwards: now={self._now}, until={until}")
        queue = self._queue
        bucket = self._bucket
        if until is None:
            # The common case — drain to empty, no horizon — dispatches
            # inline with everything in locals.  This loop is the kernel's
            # innermost cycle; method-call and attribute overhead here is
            # measurable on every experiment.
            heappop = heapq.heappop
            popleft = bucket.popleft
            pool = self._timeout_pool
            while True:
                if bucket:
                    # Same-instant heap entries predate all bucket entries
                    # (see the module docstring's ordering invariant).
                    if queue and queue[0][0] <= self._now:
                        event = heappop(queue)[2]
                    else:
                        event = popleft()
                elif queue:
                    when, _seq, event = heappop(queue)
                    self._now = when
                else:
                    break
                if self._trace is not None:
                    self._trace(self._now, event)
                # Event._dispatch, inlined (saves a call per event):
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    event._handled = True
                    for callback in callbacks:
                        callback(event)
                elif event._exception is not None and not event.defused:
                    raise event._exception
                # Recycle dispatched timeouts nobody holds a reference to
                # (refcount 2 = the local + the getrefcount argument).
                # Exact-type + unnamed keeps subclasses and user-labelled
                # timeouts out of the pool.
                if (
                    type(event) is Timeout
                    and _getrefcount(event) == 2
                    and not event.name
                    and len(pool) < _TIMEOUT_POOL_MAX
                ):
                    event._value = None
                    pool.append(event)
            return
        while bucket or (queue and queue[0][0] <= until):
            self.step()
        self._now = until

    def run_until_triggered(self, event: Event, limit: float = float("inf")) -> typing.Any:
        """Run until ``event`` triggers; return its value.

        Raises ``RuntimeError`` if the queue drains or ``limit`` passes first.
        """
        queue = self._queue
        bucket = self._bucket
        heappop = heapq.heappop
        popleft = bucket.popleft
        pool = self._timeout_pool
        # ``processed`` implies ``triggered``, so waiting for the callback
        # list to clear covers both; the loop dispatches inline (cf. run()).
        while event.callbacks is not None:
            if bucket:
                if queue and queue[0][0] <= self._now:
                    next_event = heappop(queue)[2]
                else:
                    next_event = popleft()
            elif queue and queue[0][0] <= limit:
                when, _seq, next_event = heappop(queue)
                self._now = when
            else:
                raise RuntimeError(f"simulation ended before {event!r} triggered")
            if self._trace is not None:
                self._trace(self._now, next_event)
            # Event._dispatch, inlined (saves a call per event):
            callbacks = next_event.callbacks
            next_event.callbacks = None
            if callbacks:
                next_event._handled = True
                for callback in callbacks:
                    callback(next_event)
            elif next_event._exception is not None and not next_event.defused:
                raise next_event._exception
            # Recycle unreferenced timeouts (see run() for the invariant).
            if (
                type(next_event) is Timeout
                and _getrefcount(next_event) == 2
                and not next_event.name
                and len(pool) < _TIMEOUT_POOL_MAX
            ):
                next_event._value = None
                pool.append(next_event)
        return event.value

    # -- debugging ---------------------------------------------------------------

    def set_trace(self, callback: typing.Callable[[float, Event], None] | None) -> None:
        """Install a hook called as ``callback(time, event)`` on every dispatch."""
        self._trace = callback
