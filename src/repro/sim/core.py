"""The simulator: event heap, clock, and run loop."""

from __future__ import annotations

import heapq
import typing

from repro.sim.events import Event, Timeout
from repro.sim.process import Process, ProcessGenerator


class Simulator:
    """A deterministic discrete-event simulator.

    Time is a float in **seconds**.  Events scheduled for the same instant
    are dispatched in schedule order.

    Example
    -------
    >>> sim = Simulator()
    >>> def hello(sim):
    ...     yield sim.timeout(1.5)
    ...     return sim.now
    >>> proc = sim.process(hello(sim))
    >>> sim.run()
    >>> proc.value
    1.5
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._sequence = 0
        self._trace: typing.Callable[[float, Event], None] | None = None

    # -- clock ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- factories --------------------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a pending event that some component will trigger later."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: typing.Any = None, name: str = "") -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value=value, name=name)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    # -- scheduling (kernel internal, used by Event) ---------------------------

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            raise RuntimeError(f"{event!r} scheduled twice")
        event._scheduled = True
        self._sequence += 1
        heapq.heappush(self._queue, (self._now + delay, self._sequence, event))

    # -- run loop ---------------------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Dispatch the single next event."""
        when, _seq, event = heapq.heappop(self._queue)
        self._now = when
        if self._trace is not None:
            self._trace(when, event)
        event._dispatch()
        if event._exception is not None and not getattr(event, "defused", False):
            # An event failed and nothing is positioned to handle it (any
            # waiter attached before dispatch has run by now and either
            # handled it or re-failed; a failure with no handler at all must
            # not pass silently).
            if event.callbacks is None and not event._handled:
                raise event._exception

    def run(self, until: float | None = None) -> None:
        """Run until the queue empties or simulated time passes ``until``.

        When ``until`` is given, the clock is left at exactly ``until`` even
        if the last event fired earlier (so time-weighted statistics can
        close their integrals at the horizon).
        """
        if until is not None and until < self._now:
            raise ValueError(f"cannot run backwards: now={self._now}, until={until}")
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                break
            self.step()
        if until is not None:
            self._now = until

    def run_until_triggered(self, event: Event, limit: float = float("inf")) -> typing.Any:
        """Run until ``event`` triggers; return its value.

        Raises ``RuntimeError`` if the queue drains or ``limit`` passes first.
        """
        while not event.triggered or not event.processed:
            if not self._queue or self._queue[0][0] > limit:
                raise RuntimeError(f"simulation ended before {event!r} triggered")
            self.step()
        return event.value

    # -- debugging ---------------------------------------------------------------

    def set_trace(self, callback: typing.Callable[[float, Event], None] | None) -> None:
        """Install a hook called as ``callback(time, event)`` on every dispatch."""
        self._trace = callback
