"""The simulator: event heap, clock, and run loop."""

from __future__ import annotations

import heapq
import typing
from sys import getrefcount as _getrefcount

from repro.sim.events import Event, Timeout
from repro.sim.process import Process, ProcessGenerator

#: Upper bound on the per-simulator timeout freelist.  Replay workloads
#: keep only a handful of timeouts in flight at once; the cap just stops a
#: pathological burst from pinning memory.
_TIMEOUT_POOL_MAX = 256


class Simulator:
    """A deterministic discrete-event simulator.

    Time is a float in **seconds**.  Events scheduled for the same instant
    are dispatched in schedule order.

    Example
    -------
    >>> sim = Simulator()
    >>> def hello(sim):
    ...     yield sim.timeout(1.5)
    ...     return sim.now
    >>> proc = sim.process(hello(sim))
    >>> sim.run()
    >>> proc.value
    1.5
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._sequence = 0
        self._trace: typing.Callable[[float, Event], None] | None = None
        #: Recycled Timeout objects (see the run loop): every disk I/O is
        #: at least one timeout, and reusing the object skips the
        #: allocator on the kernel's hottest construction path.
        self._timeout_pool: list[Timeout] = []

    # -- clock ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- factories --------------------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a pending event that some component will trigger later."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: typing.Any = None, name: str = "") -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        pool = self._timeout_pool
        if pool and not name:
            if delay < 0:
                raise ValueError(f"timeout delay must be >= 0, got {delay}")
            # Reuse a recycled timeout: the run loop only pools timeouts it
            # proved unreferenced, so resetting the live slots is safe.
            timeout = pool.pop()
            timeout.callbacks = []
            timeout._value = value
            timeout._exception = None
            timeout.delay = delay
            self._sequence += 1
            heapq.heappush(self._queue, (self._now + delay, self._sequence, timeout))
            return timeout
        return Timeout(self, delay, value=value, name=name)

    def timeouts(self, delays: typing.Iterable[float], value: typing.Any = None) -> list[Timeout]:
        """Create many timeouts at once, restoring the heap in one pass.

        Per-timeout ``heappush`` costs O(log n) each; a batch appends every
        entry and re-heapifies once (O(n + k)), which wins for large k —
        e.g. pre-scheduling a whole scrub or arrival schedule.
        """
        queue = self._queue
        now = self._now
        sequence = self._sequence
        batch: list[Timeout] = []
        for delay in delays:
            timeout = Timeout._unscheduled(self, delay, value)
            sequence += 1
            queue.append((now + delay, sequence, timeout))
            batch.append(timeout)
        self._sequence = sequence
        heapq.heapify(queue)
        return batch

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    # -- scheduling (kernel internal, used by Event) ---------------------------

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            raise RuntimeError(f"{event!r} scheduled twice")
        event._scheduled = True
        self._sequence += 1
        heapq.heappush(self._queue, (self._now + delay, self._sequence, event))

    # -- run loop ---------------------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._queue[0][0] if self._queue else float("inf")

    @property
    def events_dispatched(self) -> int:
        """Events dispatched so far (scheduled minus still queued).

        Every scheduled event receives a sequence number and is dispatched
        exactly once, so this costs nothing to maintain.
        """
        return self._sequence - len(self._queue)

    def step(self) -> None:
        """Dispatch the single next event."""
        when, _seq, event = heapq.heappop(self._queue)
        self._now = when
        if self._trace is not None:
            self._trace(when, event)
        event._dispatch()
        if event._exception is not None and not event.defused and not event._handled:
            # An event failed and nothing is positioned to handle it (any
            # waiter attached before dispatch has run by now and either
            # handled it or re-failed; a failure with no handler at all must
            # not pass silently).  _dispatch cleared the callback list, so
            # _handled records whether anyone was listening.
            raise event._exception

    def run(self, until: float | None = None) -> None:
        """Run until the queue empties or simulated time passes ``until``.

        When ``until`` is given, the clock is left at exactly ``until`` even
        if the last event fired earlier (so time-weighted statistics can
        close their integrals at the horizon).
        """
        if until is not None and until < self._now:
            raise ValueError(f"cannot run backwards: now={self._now}, until={until}")
        queue = self._queue
        if until is None:
            # The common case — drain to empty, no horizon — dispatches
            # inline with everything in locals.  This loop is the kernel's
            # innermost cycle; method-call and attribute overhead here is
            # measurable on every experiment.
            heappop = heapq.heappop
            pool = self._timeout_pool
            while queue:
                when, _seq, event = heappop(queue)
                self._now = when
                if self._trace is not None:
                    self._trace(when, event)
                # Event._dispatch, inlined (saves a call per event):
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    event._handled = True
                    for callback in callbacks:
                        callback(event)
                elif event._exception is not None and not event.defused:
                    raise event._exception
                # Recycle dispatched timeouts nobody holds a reference to
                # (refcount 2 = the local + the getrefcount argument).
                # Exact-type + unnamed keeps subclasses and user-labelled
                # timeouts out of the pool.
                if (
                    type(event) is Timeout
                    and _getrefcount(event) == 2
                    and not event.name
                    and len(pool) < _TIMEOUT_POOL_MAX
                ):
                    event._value = None
                    pool.append(event)
            return
        while queue and queue[0][0] <= until:
            self.step()
        self._now = until

    def run_until_triggered(self, event: Event, limit: float = float("inf")) -> typing.Any:
        """Run until ``event`` triggers; return its value.

        Raises ``RuntimeError`` if the queue drains or ``limit`` passes first.
        """
        queue = self._queue
        heappop = heapq.heappop
        pool = self._timeout_pool
        # ``processed`` implies ``triggered``, so waiting for the callback
        # list to clear covers both; the loop dispatches inline (cf. run()).
        while event.callbacks is not None:
            if not queue or queue[0][0] > limit:
                raise RuntimeError(f"simulation ended before {event!r} triggered")
            when, _seq, next_event = heappop(queue)
            self._now = when
            if self._trace is not None:
                self._trace(when, next_event)
            # Event._dispatch, inlined (saves a call per event):
            callbacks = next_event.callbacks
            next_event.callbacks = None
            if callbacks:
                next_event._handled = True
                for callback in callbacks:
                    callback(next_event)
            elif next_event._exception is not None and not next_event.defused:
                raise next_event._exception
            # Recycle unreferenced timeouts (see run() for the invariant).
            if (
                type(next_event) is Timeout
                and _getrefcount(next_event) == 2
                and not next_event.name
                and len(pool) < _TIMEOUT_POOL_MAX
            ):
                next_event._value = None
                pool.append(next_event)
        return event.value

    # -- debugging ---------------------------------------------------------------

    def set_trace(self, callback: typing.Callable[[float, Event], None] | None) -> None:
        """Install a hook called as ``callback(time, event)`` on every dispatch."""
        self._trace = callback
