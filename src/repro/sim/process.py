"""Coroutine processes for the simulation kernel.

A process wraps a generator that yields :class:`~repro.sim.events.Event`
instances.  When a yielded event fires, the kernel resumes the generator,
sending the event's value in (or throwing its exception).  The process is
itself an event: it triggers with the generator's return value, so processes
can wait on each other.
"""

from __future__ import annotations

import typing
from types import GeneratorType

from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.core import Simulator

ProcessGenerator = typing.Generator[Event, typing.Any, typing.Any]


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries whatever the interrupter passed.  AFRAID's
    background scrubber uses this to abandon an idle-time parity rebuild when
    foreground work arrives.
    """

    def __init__(self, cause: typing.Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class ProcessKilled(Exception):
    """The failure value of a process that was killed via :meth:`Process.kill`."""


class Process(Event):
    """A running simulation process.

    Create via :meth:`repro.sim.core.Simulator.process`.  The process starts
    at the current simulated time (before any further time passes, but after
    the caller's current step completes).
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = "") -> None:
        # Plain generators (the overwhelmingly common case) skip the two
        # hasattr probes; duck-typed generator-likes still pass.
        if type(generator) is not GeneratorType and (
            not hasattr(generator, "send") or not hasattr(generator, "throw")
        ):
            raise TypeError(f"process body must be a generator, got {type(generator).__name__}")
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        # Kick off the generator via an immediately-firing bootstrap event.
        # Constructed + triggered inline (Event.__init__ and succeed()
        # fused): one bootstrap per process spawn, and replay-heavy
        # workloads spawn a process per queue pump / client request.  The
        # heap operation matches Event.succeed() exactly, so dispatch
        # order is unchanged.
        bootstrap = Event.__new__(Event)
        bootstrap.sim = sim
        bootstrap.name = ""
        bootstrap.callbacks = [self._resume]
        bootstrap.defused = False
        bootstrap._value = None
        bootstrap._exception = None
        bootstrap._scheduled = True
        bootstrap._handled = False
        self._waiting_on: Event | None = bootstrap
        sim._sequence += 1
        sim._bucket.append(bootstrap)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: typing.Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        Interrupting a finished process is a no-op.  The event the process
        was waiting on is detached: if it later fires, the process (which has
        moved on) ignores it.
        """
        if self.triggered:
            return
        self._detach()
        poke = Event(self.sim, name=f"{self.name}.interrupt")
        poke.add_callback(lambda _event: self._step_throw(Interrupt(cause)))
        poke.succeed()

    def kill(self) -> None:
        """Terminate the process immediately.

        The process event fails with :class:`ProcessKilled`; generators get a
        chance to run ``finally`` blocks via ``GeneratorExit``.
        """
        if self.triggered:
            return
        self._detach()
        self._generator.close()
        self.fail(ProcessKilled(self.name))

    # -- kernel internals ----------------------------------------------------

    def _detach(self) -> None:
        """Stop listening to the event currently waited on."""
        waiting = self._waiting_on
        self._waiting_on = None
        if waiting is not None and waiting.callbacks is not None:
            try:
                waiting.callbacks.remove(self._resume)
            except ValueError:
                pass

    def _resume(self, event: Event) -> None:
        """Callback invoked when the awaited event fires.

        This is the per-hop path of every process — the success branch
        runs the generator and re-arms the next wait inline rather than
        fanning out through helper methods (one resume used to cost four
        nested calls; on long process chains that overhead dominated).
        """
        if event is not self._waiting_on:
            return  # stale wakeup from a detached event
        self._waiting_on = None
        if event._exception is not None:
            self._step_throw(event._exception)
            return
        try:
            target = self._generator.send(event._value)
        except StopIteration as stop:
            # With listeners attached, trigger normally so they are
            # dispatched.  Without any (fire-and-forget pumps and
            # per-request service processes — the common case), mark the
            # process event processed directly: dispatching an event with
            # zero callbacks is a no-op, and a late add_callback on a
            # processed event already runs immediately, so skipping the
            # schedule + dispatch changes no observable ordering.
            if self.callbacks:
                self.succeed(stop.value)
            else:
                self._value = stop.value
                self.callbacks = None
            return
        except BaseException as exc:
            self._crash(exc)
            return
        # Inline _wait_on's happy path: yielded a live event of our sim.
        if isinstance(target, Event) and target.sim is self.sim:
            self._waiting_on = target
            callbacks = target.callbacks
            if callbacks is not None:
                callbacks.append(self._resume)
            else:
                self._resume(target)  # already processed: resume immediately
        else:
            self._wait_on(target)

    def _step_throw(self, exc: BaseException) -> None:
        try:
            target = self._generator.throw(exc)
        except StopIteration as stop:
            if self.callbacks:  # see _resume: listener-free finish shortcut
                self.succeed(stop.value)
            else:
                self._value = stop.value
                self.callbacks = None
        except BaseException as raised:
            if raised is exc:
                # The process did not handle the exception: fail the process
                # event so waiters see it (uncaught failures surface in run()).
                self.fail(raised)
            else:
                self._crash(raised)
        else:
            self._wait_on(target)

    def _wait_on(self, target: Event) -> None:
        if not isinstance(target, Event):
            self._crash(TypeError(f"process {self.name!r} yielded {target!r}, expected an Event"))
            return
        if target.sim is not self.sim:
            self._crash(ValueError(f"process {self.name!r} yielded an event from another simulator"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)

    def _crash(self, exc: BaseException) -> None:
        self._generator.close()
        self.fail(exc)
