"""Counted resources with FIFO wait queues.

The array controller uses a :class:`Resource` to cap the number of client
requests concurrently active inside the array (the paper limits this to the
number of physical disks).
"""

from __future__ import annotations

import collections

from repro.sim.core import Simulator
from repro.sim.events import Event


class Resource:
    """A counted resource: ``capacity`` slots, FIFO granting order.

    Usage inside a process::

        yield resource.acquire()
        try:
            ...  # hold one slot
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._grant_name = f"{name}.grant"
        self._in_use = 0
        self._waiters: collections.deque[Event] = collections.deque()

    @property
    def in_use(self) -> int:
        """Number of slots currently held."""
        return self._in_use

    @property
    def available(self) -> int:
        """Number of free slots."""
        return self.capacity - self._in_use

    @property
    def queued(self) -> int:
        """Number of acquirers waiting for a slot."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event that fires once a slot is held by the caller."""
        if self._in_use < self.capacity and not self._waiters:
            # Uncontended fast path (construction + succeed fused): one
            # grant per client request makes this hot during replay.
            self._in_use += 1
            sim = self.sim
            grant = Event.__new__(Event)
            grant.sim = sim
            grant.name = self._grant_name
            grant.callbacks = []
            grant.defused = False
            grant._value = None
            grant._exception = None
            grant._scheduled = True
            grant._handled = False
            sim._sequence += 1
            sim._bucket.append(grant)
            return grant
        grant = Event(self.sim, name=self._grant_name)
        self._waiters.append(grant)
        return grant

    def release(self) -> None:
        """Release one held slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError(f"{self.name}: release() without acquire()")
        if self._waiters:
            # Hand the slot directly to the next waiter; in_use is unchanged.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1

    def __repr__(self) -> str:
        return f"<Resource {self.name!r} {self._in_use}/{self.capacity} used, {self.queued} queued>"
