"""Idle-period detection ([Golding95], "Idleness is not sloth").

The paper's default configuration uses a timer-based detector with a
100 ms threshold: the array is declared idle once it has been *completely*
idle (no queued or in-flight client requests) for 100 ms, at which point
the background parity scrubber may start.  Any new client activity
immediately cancels the pending declaration.

:class:`MovingAverageIdlePredictor` is the [Golding95]-style idle-duration
predictor; the paper's baseline ignores its output (§4.1), but the
extension experiments can consult it to skip idle periods predicted to be
too short to complete a stripe rebuild.
"""

from __future__ import annotations

import typing

from repro.sim import Simulator


class _IdleDeclaration:
    """Pending idle declaration: calls ``_declare`` with its generation.

    A named class instead of a lambda so an armed detector (every freshly
    built array has one) survives the snapshot pickling done by
    :mod:`repro.harness.sharding`.
    """

    __slots__ = ("detector", "generation")

    def __init__(self, detector: "IdleDetector", generation: int) -> None:
        self.detector = detector
        self.generation = generation

    def __call__(self, _event) -> None:
        self.detector._declare(self.generation)


class IdleDetector:
    """Timer-based idleness detection over an activity count.

    Components report ``activity_started()`` / ``activity_ended()``; when
    the count sits at zero for ``threshold_s``, every ``on_idle`` callback
    fires.  Callbacks also fire again after each subsequent busy→idle
    transition (not periodically while idle).
    """

    def __init__(self, sim: Simulator, threshold_s: float = 0.100) -> None:
        if threshold_s < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold_s}")
        self.sim = sim
        self.threshold_s = threshold_s
        self.on_idle: list[typing.Callable[[], None]] = []
        self.on_busy: list[typing.Callable[[], None]] = []
        self._outstanding = 0
        self._generation = 0
        self._created_at = sim.now
        self._last_idle_start = sim.now  # when the count last dropped to 0
        self._last_busy_start: float | None = None
        self._idle_periods: list[float] = []
        # The detector starts idle: arm the initial declaration.
        self._arm()

    # -- activity reporting -----------------------------------------------------------

    def activity_started(self) -> None:
        """A client request entered the system (queued or in service)."""
        self._outstanding += 1
        self._generation += 1  # cancels any pending idle declaration
        if self._outstanding == 1:
            idle_span = self.sim.now - self._last_idle_start
            if idle_span > 0:
                self._idle_periods.append(idle_span)
            self._last_busy_start = self.sim.now
            for callback in self.on_busy:
                callback()

    def activity_ended(self) -> None:
        """A client request left the system."""
        if self._outstanding <= 0:
            raise RuntimeError("activity_ended() without matching activity_started()")
        self._outstanding -= 1
        if self._outstanding == 0:
            self._last_idle_start = self.sim.now
            self._arm()

    # -- state -----------------------------------------------------------------------------

    @property
    def outstanding(self) -> int:
        return self._outstanding

    @property
    def is_idle(self) -> bool:
        """True when no client work is queued or in flight."""
        return self._outstanding == 0

    @property
    def idle_for(self) -> float:
        """Seconds since the system went idle (0 while busy)."""
        if not self.is_idle:
            return 0.0
        return self.sim.now - self._last_idle_start

    @property
    def observed_idle_periods(self) -> list[float]:
        """Completed idle-period durations, oldest first."""
        return list(self._idle_periods)

    def total_idle_time(self) -> float:
        """Cumulative idle seconds since the detector was created
        (includes the currently running idle span, if any)."""
        total = sum(self._idle_periods)
        if self.is_idle:
            total += self.sim.now - self._last_idle_start
        return total

    def idle_fraction(self) -> float:
        """Fraction of the detector's lifetime spent completely idle."""
        lifetime = self.sim.now - self._created_at
        return self.total_idle_time() / lifetime if lifetime > 0 else 1.0

    # -- internals ----------------------------------------------------------------------------

    def _arm(self) -> None:
        check = self.sim.timeout(self.threshold_s, name="idle.check")
        check.add_callback(_IdleDeclaration(self, self._generation))

    def _declare(self, generation: int) -> None:
        if generation != self._generation or self._outstanding != 0:
            return  # activity intervened; declaration cancelled
        for callback in self.on_idle:
            callback()


class MovingAverageIdlePredictor:
    """Exponentially-weighted moving average of idle-period durations.

    ``predict()`` estimates how long the *current* idle period will last,
    based on history.  [Golding95] evaluates a family of such predictors;
    the EWMA is their simple, effective baseline.
    """

    def __init__(self, detector: IdleDetector, alpha: float = 0.3, initial_s: float = 1.0) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.detector = detector
        self.alpha = alpha
        self._estimate = initial_s
        self._consumed = 0
        detector.on_busy.append(self._on_busy)

    def _on_busy(self) -> None:
        periods = self.detector.observed_idle_periods
        for duration in periods[self._consumed :]:
            self._estimate = self.alpha * duration + (1.0 - self.alpha) * self._estimate
        self._consumed = len(periods)

    def predict(self) -> float:
        """Predicted remaining duration of the current idle period."""
        return self._estimate
