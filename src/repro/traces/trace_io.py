"""Reading and writing traces: a trivial CSV format and a compact binary one.

CSV (one header line, then one line per record) — for hand conversion of
externally captured traces:

    time_s,op,offset_sectors,nsectors,sync
    0.001250,W,12345,16,0

``op`` is ``R`` or ``W``; ``sync`` is 0/1.

Binary (``.bin``) — for large captures: a 16-byte header (magic
``AFRD``, version, record count) followed by fixed 24-byte records
(f64 time, u64 offset, u32 nsectors, u16 flags, u16 pad), little-endian.
Fixed-size records, parsed without any string handling.
"""

from __future__ import annotations

import csv
import pathlib
import struct

from repro.disk import IoKind
from repro.traces.records import Trace, TraceRecord

_HEADER = ["time_s", "op", "offset_sectors", "nsectors", "sync"]
_OP_TO_KIND = {"R": IoKind.READ, "W": IoKind.WRITE}
_KIND_TO_OP = {IoKind.READ: "R", IoKind.WRITE: "W"}


def write_trace_csv(trace: Trace, path: str | pathlib.Path) -> None:
    """Write ``trace`` to ``path`` in the CSV trace format."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        for record in trace:
            writer.writerow(
                [
                    f"{record.time_s:.6f}",
                    _KIND_TO_OP[record.kind],
                    record.offset_sectors,
                    record.nsectors,
                    int(record.sync),
                ]
            )


def read_trace_csv(path: str | pathlib.Path, name: str | None = None) -> Trace:
    """Read a trace written by :func:`write_trace_csv` (or hand-converted)."""
    path = pathlib.Path(path)
    records: list[TraceRecord] = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != _HEADER:
            raise ValueError(f"{path}: unexpected header {header!r}")
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue
            try:
                time_s, op, offset, nsectors, sync = row
                records.append(
                    TraceRecord(
                        time_s=float(time_s),
                        kind=_OP_TO_KIND[op],
                        offset_sectors=int(offset),
                        nsectors=int(nsectors),
                        sync=bool(int(sync)),
                    )
                )
            except (ValueError, KeyError) as exc:
                raise ValueError(f"{path}:{line_number}: bad record {row!r}") from exc
    return Trace(name if name is not None else path.stem, records)


_BIN_MAGIC = b"AFRD"
_BIN_VERSION = 1
_BIN_HEADER = struct.Struct("<4sIQ")  # magic, version, record count
_BIN_RECORD = struct.Struct("<dQIHH")  # time, offset, nsectors, flags, pad
_FLAG_WRITE = 0x1
_FLAG_SYNC = 0x2


def write_trace_binary(trace: Trace, path: str | pathlib.Path) -> None:
    """Write ``trace`` in the compact binary format."""
    with open(path, "wb") as handle:
        handle.write(_BIN_HEADER.pack(_BIN_MAGIC, _BIN_VERSION, len(trace)))
        for record in trace:
            flags = (_FLAG_WRITE if record.is_write else 0) | (_FLAG_SYNC if record.sync else 0)
            handle.write(
                _BIN_RECORD.pack(record.time_s, record.offset_sectors, record.nsectors, flags, 0)
            )


def read_trace_binary(path: str | pathlib.Path, name: str | None = None) -> Trace:
    """Read a trace written by :func:`write_trace_binary`."""
    path = pathlib.Path(path)
    with open(path, "rb") as handle:
        header = handle.read(_BIN_HEADER.size)
        if len(header) != _BIN_HEADER.size:
            raise ValueError(f"{path}: truncated header")
        magic, version, count = _BIN_HEADER.unpack(header)
        if magic != _BIN_MAGIC:
            raise ValueError(f"{path}: not an AFRD trace (magic {magic!r})")
        if version != _BIN_VERSION:
            raise ValueError(f"{path}: unsupported version {version}")
        payload = handle.read(count * _BIN_RECORD.size)
    if len(payload) != count * _BIN_RECORD.size:
        raise ValueError(f"{path}: truncated records ({len(payload)} bytes for {count} records)")
    records = []
    for time_s, offset, nsectors, flags, _pad in _BIN_RECORD.iter_unpack(payload):
        records.append(
            TraceRecord(
                time_s=time_s,
                kind=IoKind.WRITE if flags & _FLAG_WRITE else IoKind.READ,
                offset_sectors=offset,
                nsectors=nsectors,
                sync=bool(flags & _FLAG_SYNC),
            )
        )
    return Trace(name if name is not None else path.stem, records)
