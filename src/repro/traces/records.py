"""Trace records: the block-level I/O log format everything replays."""

from __future__ import annotations

import dataclasses
import typing

from repro.disk import IoKind


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One traced I/O: when, what direction, where, and how much."""

    time_s: float
    kind: IoKind
    offset_sectors: int
    nsectors: int
    sync: bool = False

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError(f"time must be >= 0, got {self.time_s}")
        if self.offset_sectors < 0:
            raise ValueError(f"offset must be >= 0, got {self.offset_sectors}")
        if self.nsectors < 1:
            raise ValueError(f"nsectors must be >= 1, got {self.nsectors}")

    @property
    def is_write(self) -> bool:
        return self.kind is IoKind.WRITE

    @property
    def nbytes(self) -> int:
        return self.nsectors * 512


class Trace:
    """An ordered sequence of records plus identifying metadata."""

    def __init__(self, name: str, records: typing.Sequence[TraceRecord], duration_s: float | None = None) -> None:
        self.name = name
        self.records = list(records)
        for earlier, later in zip(self.records, self.records[1:]):
            if later.time_s < earlier.time_s:
                raise ValueError(f"trace {name!r} is not time-ordered")
        last = self.records[-1].time_s if self.records else 0.0
        self.duration_s = duration_s if duration_s is not None else last
        if self.duration_s < last:
            raise ValueError("declared duration is shorter than the trace")

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> typing.Iterator[TraceRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self.records[index]

    # -- summary statistics (used by tests and the harness report) ---------------

    @property
    def write_fraction(self) -> float:
        if not self.records:
            return 0.0
        return sum(1 for record in self.records if record.is_write) / len(self.records)

    @property
    def total_bytes(self) -> int:
        return sum(record.nbytes for record in self.records)

    @property
    def mean_request_bytes(self) -> float:
        return self.total_bytes / len(self.records) if self.records else 0.0

    @property
    def mean_iops(self) -> float:
        return len(self.records) / self.duration_s if self.duration_s > 0 else 0.0

    def idle_gaps(self, threshold_s: float = 0.0) -> list[float]:
        """Inter-arrival gaps longer than ``threshold_s`` (burstiness probe)."""
        gaps = []
        for earlier, later in zip(self.records, self.records[1:]):
            gap = later.time_s - earlier.time_s
            if gap > threshold_s:
                gaps.append(gap)
        return gaps

    def __repr__(self) -> str:
        return (
            f"<Trace {self.name!r}: {len(self.records)} ios over {self.duration_s:.1f}s, "
            f"{self.write_fraction:.0%} writes>"
        )
