"""Fit synthetic-generator parameters to a measured trace.

The inverse of :mod:`repro.traces.synthetic`: given any trace (e.g. one
converted from a real capture), estimate the
:class:`~repro.traces.synthetic.BurstyWorkloadParams` whose generator
would produce statistically similar traffic.  This is how a user adapts
the reproduction to *their* workload: analyze → fit → generate at any
duration or address-space scale.

The estimators are deliberately simple method-of-moments fits; the
round-trip tests in ``tests/traces/test_fit.py`` quantify how well a
fitted generator reproduces the source statistics.
"""

from __future__ import annotations

import math
import statistics

from repro.metrics import percentile
from repro.traces.analysis import find_bursts, sequential_fraction
from repro.traces.records import Trace
from repro.traces.synthetic import BurstyWorkloadParams


#: The method-of-moments estimators need at least this many records: the
#: burst/gap statistics divide by the number of inter-arrival gaps and the
#: locality estimators divide by the record count, so an empty or
#: near-empty trace would otherwise surface as a bare ``ZeroDivisionError``
#: deep inside an estimator.
MIN_FIT_RECORDS = 4


def fit_workload(
    trace: Trace,
    gap_threshold_s: float = 0.1,
    address_space_sectors: int | None = None,
    name: str | None = None,
) -> BurstyWorkloadParams:
    """Estimate generator parameters from ``trace``.

    Raises
    ------
    ValueError
        If the trace holds fewer than :data:`MIN_FIT_RECORDS` records
        (including the empty and single-record cases).
    """
    if len(trace) < MIN_FIT_RECORDS:
        raise ValueError(
            f"need at least {MIN_FIT_RECORDS} requests to fit a workload, "
            f"got {len(trace)}"
        )
    records = list(trace)
    bursts = find_bursts(trace, gap_threshold_s)

    # Arrival process.
    intra_gaps = [
        later.time_s - earlier.time_s
        for earlier, later in zip(records, records[1:])
        if later.time_s - earlier.time_s <= gap_threshold_s
    ]
    within_gap = statistics.mean(intra_gaps) if intra_gaps else gap_threshold_s / 2
    idle_gaps = [gap for gap in trace.idle_gaps(gap_threshold_s)]
    if idle_gaps:
        idle_mean = statistics.mean(idle_gaps)
        logs = [math.log(gap) for gap in idle_gaps]
        sigma = statistics.pstdev(logs) if len(logs) > 1 else 1.0
    else:
        idle_mean = gap_threshold_s
        sigma = 1.0

    # Sizes: split at twice the median into a small and a large class.
    sizes = sorted(record.nsectors for record in records)
    small = int(percentile(sizes, 50, presorted=True))
    large_cutoff = 2 * small
    large_sizes = [size for size in sizes if size >= large_cutoff]
    if large_sizes:
        large = int(percentile(large_sizes, 50))
        large_fraction = len(large_sizes) / len(sizes)
    else:
        large = max(small * 4, small + 1)
        large_fraction = 0.0

    # Locality: sequential runs measured directly; the hot-spot share is
    # the traffic fraction landing in the densest tenth of touched blocks.
    hot_fraction = _hotspot_fraction(records)

    space = address_space_sectors
    if space is None:
        space = max(record.offset_sectors + record.nsectors for record in records)
        space = max(space, large + 1)

    return BurstyWorkloadParams(
        name=name or f"fit({trace.name})",
        duration_s=trace.duration_s,
        address_space_sectors=space,
        write_fraction=trace.write_fraction,
        requests_per_burst_mean=max(1.0, bursts.burst_sizes.mean),
        within_burst_gap_s=max(0.0, within_gap),
        idle_gap_mean_s=idle_mean,
        idle_gap_sigma=max(0.1, min(sigma, 3.0)),
        small_size_sectors=max(1, small),
        large_size_sectors=max(large, small + 1),
        large_fraction=min(1.0, large_fraction),
        sequential_fraction=min(1.0, sequential_fraction(trace)),
        hotspot_fraction=min(1.0, hot_fraction),
        sync_fraction=sum(1 for r in records if r.sync) / len(records),
    )


def _top_decile(ordered_counts: list[int]) -> int:
    """Accesses landing in the densest tenth of blocks (empty-safe).

    ``ordered_counts`` must be sorted descending; an empty list (no
    records touched any block) contributes zero accesses rather than
    dividing by — or indexing into — nothing.
    """
    if not ordered_counts:
        return 0
    top = max(1, len(ordered_counts) // 10)
    return sum(ordered_counts[:top])


def _hotspot_fraction(records) -> float:
    """Share of accesses hitting the densest 10% of touched 4 KB blocks."""
    if not records:
        return 0.0
    counts: dict[int, int] = {}
    for record in records:
        block = record.offset_sectors // 8
        counts[block] = counts.get(block, 0) + 1
    ordered = sorted(counts.values(), reverse=True)
    return _top_decile(ordered) / len(records)
