"""Workloads: trace records, trace file I/O, and synthetic generators.

The paper drives its simulations with ten proprietary block-level traces
(hplajw, snake, cello-usr, cello-news, netware, ATT, AS400-1..4).  Those
traces are not redistributable, so this package provides seeded synthetic
generators parameterised from their published characterisations
([Ruemmler93] and the paper's own workload descriptions).  What AFRAID's
results depend on — and what the generators therefore reproduce per
workload — is:

* **burstiness**: requests arrive in bursts separated by idle gaps whose
  durations are heavy-tailed (the paper's whole premise is that real
  workloads leave enough idle time to rebuild parity);
* **write intensity**: the fraction of accesses that are writes at the
  *disk* level (high, since host buffer caches absorb most reads);
* **load level**: from a single user's trickle (hplajw) to a
  database-load benchmark that nearly saturates the array (netware, ATT);
* **locality**: a mix of sequential runs, hot-spot accesses, and uniform
  traffic.

See :data:`repro.traces.catalog.CATALOG` for the ten named workloads.
"""

from repro.traces.analysis import TraceReport, analyze
from repro.traces.catalog import CATALOG, WorkloadSpec, workload_names, make_trace
from repro.traces.records import Trace, TraceRecord
from repro.traces.synthetic import BurstyWorkloadGenerator, BurstyWorkloadParams
from repro.traces.trace_io import (
    read_trace_binary,
    read_trace_csv,
    write_trace_binary,
    write_trace_csv,
)

__all__ = [
    "TraceReport",
    "analyze",
    "BurstyWorkloadGenerator",
    "BurstyWorkloadParams",
    "CATALOG",
    "Trace",
    "TraceRecord",
    "WorkloadSpec",
    "make_trace",
    "read_trace_binary",
    "read_trace_csv",
    "workload_names",
    "write_trace_binary",
    "write_trace_csv",
]
