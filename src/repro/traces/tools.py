"""Trace transformations: scaling, clipping, remapping, merging.

These are the tools for adapting traces between environments — most
importantly :func:`scale_gaps`, which stretches or compresses the *idle
gaps* while preserving intra-burst timing.  That is exactly the
transformation relating this reproduction's minute-scale traces to the
paper's day-scale ones (see EXPERIMENTS.md), so it is first-class and
tested rather than an undocumented assumption.
"""

from __future__ import annotations

import heapq
import typing

from repro.traces.records import Trace, TraceRecord


def _with_time(record: TraceRecord, time_s: float) -> TraceRecord:
    return TraceRecord(
        time_s=time_s,
        kind=record.kind,
        offset_sectors=record.offset_sectors,
        nsectors=record.nsectors,
        sync=record.sync,
    )


def time_scale(trace: Trace, factor: float, name: str | None = None) -> Trace:
    """Uniformly stretch (>1) or compress (<1) the whole time axis."""
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor}")
    records = [_with_time(record, record.time_s * factor) for record in trace]
    return Trace(name or f"{trace.name}x{factor:g}", records, duration_s=trace.duration_s * factor)


def scale_gaps(
    trace: Trace,
    factor: float,
    gap_threshold_s: float = 0.1,
    name: str | None = None,
) -> Trace:
    """Scale only the inter-burst gaps, preserving intra-burst timing.

    Gaps longer than ``gap_threshold_s`` are multiplied by ``factor``;
    everything else keeps its relative spacing.  Burst *intensity* (and
    hence queueing behaviour during bursts) is unchanged; only the idle
    time available for parity scrubbing moves.
    """
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor}")
    if not len(trace):
        return Trace(name or trace.name, [], duration_s=trace.duration_s)
    records = [trace[0]]
    shift = 0.0
    previous = trace[0].time_s
    for record in list(trace)[1:]:
        gap = record.time_s - previous
        if gap > gap_threshold_s:
            shift += gap * (factor - 1.0)
        previous = record.time_s
        records.append(_with_time(record, record.time_s + shift))
    duration = max(trace.duration_s + shift, records[-1].time_s)
    return Trace(name or f"{trace.name}/gaps x{factor:g}", records, duration_s=duration)


def clip(trace: Trace, start_s: float, end_s: float, name: str | None = None) -> Trace:
    """Extract the window [start_s, end_s), rebased to time zero."""
    if end_s <= start_s:
        raise ValueError("end must be after start")
    records = [
        _with_time(record, record.time_s - start_s)
        for record in trace
        if start_s <= record.time_s < end_s
    ]
    return Trace(name or f"{trace.name}[{start_s:g}:{end_s:g}]", records, duration_s=end_s - start_s)


def remap_addresses(
    trace: Trace, address_space_sectors: int, alignment: int = 8, name: str | None = None
) -> Trace:
    """Fold the trace's addresses into a (usually smaller) address space.

    Offsets are taken modulo the new space and re-aligned; relative
    locality within the footprint is approximately preserved.
    """
    if address_space_sectors < alignment:
        raise ValueError("address space too small")
    records = []
    for record in trace:
        limit = address_space_sectors - record.nsectors
        offset = record.offset_sectors % max(1, limit)
        offset = (offset // alignment) * alignment
        records.append(
            TraceRecord(
                time_s=record.time_s,
                kind=record.kind,
                offset_sectors=offset,
                nsectors=record.nsectors,
                sync=record.sync,
            )
        )
    return Trace(name or f"{trace.name}@{address_space_sectors}", records, duration_s=trace.duration_s)


def merge(traces: typing.Sequence[Trace], name: str = "merged") -> Trace:
    """Interleave several traces by timestamp (a multi-client workload)."""
    if not traces:
        raise ValueError("need at least one trace")
    records = list(heapq.merge(*[list(trace) for trace in traces], key=lambda r: r.time_s))
    duration = max(trace.duration_s for trace in traces)
    return Trace(name, records, duration_s=duration)
