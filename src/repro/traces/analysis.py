"""Trace characterisation — the [Ruemmler93] measurements, in miniature.

The paper's premise rests on measurable workload properties: burstiness
(idle gaps between bursts), write intensity, and load level.  This module
computes them for any :class:`~repro.traces.records.Trace`, whether
synthetic or converted from a real capture, so workloads can be compared
against the catalog's intent and against each other.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.metrics import Summary
from repro.traces.records import Trace


@dataclasses.dataclass(frozen=True)
class BurstAnalysis:
    """Bursts found by splitting the trace at gaps > ``gap_threshold_s``."""

    gap_threshold_s: float
    n_bursts: int
    burst_sizes: Summary  # requests per burst
    burst_spans: Summary  # seconds from first to last request of a burst
    idle_gaps: Summary  # seconds between bursts

    @property
    def duty_cycle(self) -> float:
        """Fraction of time inside bursts (roughly: how busy the device is)."""
        busy = self.burst_spans.mean * self.n_bursts
        idle = self.idle_gaps.mean * max(0, self.n_bursts - 1)
        total = busy + idle
        return busy / total if total > 0 else 0.0


@dataclasses.dataclass(frozen=True)
class TraceReport:
    """The full characterisation of one trace."""

    name: str
    n_requests: int
    duration_s: float
    write_fraction: float
    mean_iops: float
    request_bytes: Summary
    interarrival_s: Summary
    bursts: BurstAnalysis
    sequential_fraction: float
    footprint_sectors: int

    def rows(self) -> list[tuple[str, str]]:
        return [
            ("requests", str(self.n_requests)),
            ("duration", f"{self.duration_s:.1f} s"),
            ("write fraction", f"{self.write_fraction:.1%}"),
            ("mean rate", f"{self.mean_iops:.1f} IOPS"),
            ("mean request", f"{self.request_bytes.mean / 1024:.1f} KB"),
            ("median interarrival", f"{self.interarrival_s.median * 1e3:.1f} ms"),
            ("bursts (gap > threshold)", str(self.bursts.n_bursts)),
            ("mean burst size", f"{self.bursts.burst_sizes.mean:.1f} requests"),
            ("mean idle gap", f"{self.bursts.idle_gaps.mean:.2f} s"),
            ("p95 idle gap", f"{self.bursts.idle_gaps.p95:.2f} s"),
            ("duty cycle", f"{self.bursts.duty_cycle:.1%}"),
            ("sequential fraction", f"{self.sequential_fraction:.1%}"),
            ("address footprint", f"{self.footprint_sectors * 512 / 2**20:.1f} MiB"),
        ]


def find_bursts(trace: Trace, gap_threshold_s: float = 0.1) -> BurstAnalysis:
    """Split the trace into bursts at idle gaps above the threshold.

    The default threshold matches the paper's 100 ms idle-detector timer,
    so "number of idle gaps" here is "number of scrub opportunities".
    """
    if not len(trace):
        raise ValueError("empty trace")
    sizes: list[float] = []
    spans: list[float] = []
    gaps: list[float] = []
    burst_start = trace[0].time_s
    previous = trace[0].time_s
    count = 1
    for record in list(trace)[1:]:
        gap = record.time_s - previous
        if gap > gap_threshold_s:
            sizes.append(count)
            spans.append(previous - burst_start)
            gaps.append(gap)
            burst_start = record.time_s
            count = 1
        else:
            count += 1
        previous = record.time_s
    sizes.append(count)
    spans.append(previous - burst_start)
    return BurstAnalysis(
        gap_threshold_s=gap_threshold_s,
        n_bursts=len(sizes),
        burst_sizes=Summary.of(sizes),
        burst_spans=Summary.of(spans),
        idle_gaps=Summary.of(gaps) if gaps else Summary.of([0.0]),
    )


def sequential_fraction(trace: Trace) -> float:
    """Fraction of requests starting exactly where the previous ended."""
    if len(trace) < 2:
        return 0.0
    sequential = 0
    for earlier, later in zip(trace, list(trace)[1:]):
        if later.offset_sectors == earlier.offset_sectors + earlier.nsectors:
            sequential += 1
    return sequential / (len(trace) - 1)


def analyze(trace: Trace, gap_threshold_s: float = 0.1) -> TraceReport:
    """Produce the full characterisation report for ``trace``."""
    if not len(trace):
        raise ValueError("empty trace")
    records = list(trace)
    interarrivals = [b.time_s - a.time_s for a, b in zip(records, records[1:])]
    touched: set[int] = set()
    for record in records:
        first_block = record.offset_sectors // 8
        last_block = (record.offset_sectors + record.nsectors - 1) // 8
        touched.update(range(first_block, last_block + 1))
    return TraceReport(
        name=trace.name,
        n_requests=len(records),
        duration_s=trace.duration_s,
        write_fraction=trace.write_fraction,
        mean_iops=trace.mean_iops,
        request_bytes=Summary.of([record.nbytes for record in records]),
        interarrival_s=Summary.of(interarrivals) if interarrivals else Summary.of([0.0]),
        bursts=find_bursts(trace, gap_threshold_s),
        sequential_fraction=sequential_fraction(trace),
        footprint_sectors=len(touched) * 8,
    )


def compare(traces: typing.Sequence[Trace], gap_threshold_s: float = 0.1) -> list[TraceReport]:
    """Characterise several traces for side-by-side comparison."""
    return [analyze(trace, gap_threshold_s) for trace in traces]
