"""Seeded synthetic bursty-workload generation.

The arrival process is ON/OFF: bursts of geometrically many requests with
exponential within-burst gaps, separated by lognormal (heavy-tailed) idle
gaps — the structure [Ruemmler93] reports for UNIX disk access patterns.
Addresses mix sequential runs, a hot region, and uniform traffic; sizes
mix a small (file-system block) and a large (transfer) class.

Everything is driven by one :class:`numpy.random.Generator` with an
explicit seed, so a (params, seed) pair always yields the identical trace.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.disk import IoKind
from repro.traces.records import Trace, TraceRecord


@dataclasses.dataclass(frozen=True)
class BurstyWorkloadParams:
    """Knobs describing one workload class."""

    name: str
    duration_s: float
    address_space_sectors: int
    write_fraction: float
    # Arrival process:
    requests_per_burst_mean: float = 8.0
    within_burst_gap_s: float = 0.010
    idle_gap_mean_s: float = 1.0
    idle_gap_sigma: float = 1.2  # lognormal shape: bigger = heavier tail
    # Request sizes (sectors of 512 B):
    small_size_sectors: int = 8  # a 4 KB file-system block
    large_size_sectors: int = 64  # a 32 KB transfer
    large_fraction: float = 0.10
    # Locality:
    sequential_fraction: float = 0.30
    hotspot_fraction: float = 0.40
    hotspot_span_fraction: float = 0.05
    sync_fraction: float = 0.10

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if self.address_space_sectors < self.large_size_sectors:
            raise ValueError("address space smaller than one large request")
        for name in ("write_fraction", "large_fraction", "sequential_fraction",
                     "hotspot_fraction", "hotspot_span_fraction", "sync_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.requests_per_burst_mean < 1.0:
            raise ValueError("bursts must average >= 1 request")
        if self.within_burst_gap_s < 0 or self.idle_gap_mean_s < 0:
            raise ValueError("gaps must be >= 0")

    @property
    def approximate_iops(self) -> float:
        """Long-run arrival rate implied by the burst/gap structure."""
        burst = self.requests_per_burst_mean
        cycle = burst * self.within_burst_gap_s + self.idle_gap_mean_s
        return burst / cycle if cycle > 0 else float("inf")


class BurstyWorkloadGenerator:
    """Generates :class:`Trace` objects from :class:`BurstyWorkloadParams`."""

    def __init__(self, params: BurstyWorkloadParams, seed: int = 42) -> None:
        self.params = params
        self.seed = seed

    def generate(self) -> Trace:
        """Produce the full trace for the configured duration."""
        params = self.params
        rng = np.random.default_rng(self.seed)
        records: list[TraceRecord] = []
        # Start just before a burst (as if the trace were cut from a longer
        # capture mid-activity), so short traces are never empty even for
        # workloads with long idle gaps.
        clock = float(rng.exponential(params.within_burst_gap_s + 1e-9))
        # Sequential-run state: where the previous request ended.
        next_sequential = int(rng.integers(0, params.address_space_sectors))
        hot_span = max(
            params.large_size_sectors,
            int(params.address_space_sectors * params.hotspot_span_fraction),
        )
        hot_start = int(rng.integers(0, max(1, params.address_space_sectors - hot_span)))
        # Lognormal with the requested mean: mu = ln(mean) - sigma^2/2.
        sigma = params.idle_gap_sigma
        mu = math.log(max(params.idle_gap_mean_s, 1e-9)) - sigma * sigma / 2.0

        while clock < params.duration_s:
            burst_size = max(1, int(rng.geometric(1.0 / params.requests_per_burst_mean)))
            for _ in range(burst_size):
                if clock >= params.duration_s:
                    break
                records.append(self._make_record(rng, clock, next_sequential, hot_start, hot_span))
                next_sequential = records[-1].offset_sectors + records[-1].nsectors
                clock += float(rng.exponential(params.within_burst_gap_s + 1e-12))
            clock += float(rng.lognormal(mu, sigma))
        return Trace(params.name, records, duration_s=params.duration_s)

    def _make_record(
        self,
        rng: np.random.Generator,
        clock: float,
        next_sequential: int,
        hot_start: int,
        hot_span: int,
    ) -> TraceRecord:
        params = self.params
        if rng.random() < params.large_fraction:
            nsectors = params.large_size_sectors
        else:
            nsectors = params.small_size_sectors
        limit = params.address_space_sectors - nsectors

        roll = rng.random()
        if roll < params.sequential_fraction:
            offset = next_sequential
        elif roll < params.sequential_fraction + params.hotspot_fraction:
            offset = hot_start + int(rng.integers(0, max(1, hot_span - nsectors)))
        else:
            offset = int(rng.integers(0, max(1, limit)))
        # Align to the request's own size (file-system-block alignment).
        offset = (offset // nsectors) * nsectors
        offset = min(max(offset, 0), (limit // nsectors) * nsectors)

        is_write = rng.random() < params.write_fraction
        sync = is_write and rng.random() < params.sync_fraction
        return TraceRecord(
            time_s=clock,
            kind=IoKind.WRITE if is_write else IoKind.READ,
            offset_sectors=offset,
            nsectors=nsectors,
            sync=sync,
        )
