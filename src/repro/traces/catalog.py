"""The ten named workloads of the paper's evaluation (§4.1), as synthetic
generator parameterisations.

The real traces are proprietary; each spec below encodes the published
characterisation of its namesake — how bursty it is, how write-heavy, and
how hard it drives the array.  Rates are scaled to a 5-disk array of
late-90s drives (tens of IOPS sustained; a RAID 5 small write costs ~4
disk I/Os, so write-heavy specs above ~40 IOPS will saturate RAID 5 while
leaving AFRAID headroom — the regime the paper studies).

Sources: [Ruemmler93] for hplajw / snake / cello (it characterises those
three systems in detail); the paper's own §4.1 one-liners for netware,
ATT, and the AS400 set ("intensive database-loading benchmark",
"production telephone-company database system", "four production AS400
systems", with ATT and AS400-1 called out in §4.4 as the workloads with
the fewest idle periods and most write traffic).
"""

from __future__ import annotations

import dataclasses

from repro.traces.records import Trace
from repro.traces.synthetic import BurstyWorkloadGenerator, BurstyWorkloadParams

#: Data capacity of the paper's 5-disk array: 4 data-equivalents x 2 GB.
PAPER_ADDRESS_SPACE_SECTORS = 4 * (2 * 10**9) // 512


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """A named workload: description plus generator knobs (minus scale)."""

    name: str
    description: str
    write_fraction: float
    requests_per_burst_mean: float
    within_burst_gap_s: float
    idle_gap_mean_s: float
    idle_gap_sigma: float
    large_fraction: float = 0.10
    sequential_fraction: float = 0.30
    hotspot_fraction: float = 0.40
    sync_fraction: float = 0.10

    def params(
        self,
        duration_s: float,
        address_space_sectors: int = PAPER_ADDRESS_SPACE_SECTORS,
    ) -> BurstyWorkloadParams:
        """Bind the spec to a duration and an address space."""
        return BurstyWorkloadParams(
            name=self.name,
            duration_s=duration_s,
            address_space_sectors=address_space_sectors,
            write_fraction=self.write_fraction,
            requests_per_burst_mean=self.requests_per_burst_mean,
            within_burst_gap_s=self.within_burst_gap_s,
            idle_gap_mean_s=self.idle_gap_mean_s,
            idle_gap_sigma=self.idle_gap_sigma,
            large_fraction=self.large_fraction,
            sequential_fraction=self.sequential_fraction,
            hotspot_fraction=self.hotspot_fraction,
            sync_fraction=self.sync_fraction,
        )


CATALOG: dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in [
        WorkloadSpec(
            name="hplajw",
            description="single-user HP-UX workstation (email, document editing): "
            "a light trickle with long idle gaps",
            write_fraction=0.70,
            requests_per_burst_mean=8,
            within_burst_gap_s=0.01,
            idle_gap_mean_s=8.0,
            idle_gap_sigma=1.6,
        ),
        WorkloadSpec(
            name="snake",
            description="HP-UX file server for a Berkeley workstation cluster: "
            "bursty, moderate load",
            write_fraction=0.55,
            requests_per_burst_mean=20,
            within_burst_gap_s=0.008,
            idle_gap_mean_s=5.0,
            idle_gap_sigma=1.4,
        ),
        WorkloadSpec(
            name="cello-usr",
            description="cello timesharing system, root//usr//users disks: "
            "bursty program-development traffic",
            write_fraction=0.60,
            requests_per_burst_mean=24,
            within_burst_gap_s=0.007,
            idle_gap_mean_s=4.0,
            idle_gap_sigma=1.4,
        ),
        WorkloadSpec(
            name="cello-news",
            description="cello's Usenet news disk: half of the system's I/Os, "
            "write-heavy with shorter gaps",
            write_fraction=0.80,
            requests_per_burst_mean=24,
            within_burst_gap_s=0.007,
            idle_gap_mean_s=0.8,
            idle_gap_sigma=1.2,
            hotspot_fraction=0.55,
        ),
        WorkloadSpec(
            name="netware",
            description="intensive database-loading benchmark on a Novell "
            "NetWare server: sustained, write-dominated, few gaps",
            write_fraction=0.85,
            requests_per_burst_mean=20,
            within_burst_gap_s=0.009,
            idle_gap_mean_s=0.15,
            idle_gap_sigma=0.8,
            large_fraction=0.25,
            sequential_fraction=0.50,
        ),
        WorkloadSpec(
            name="ATT",
            description="production telephone-company database (one copy of a "
            "mirrored set): heavy writes, few idle periods",
            write_fraction=0.75,
            requests_per_burst_mean=26,
            within_burst_gap_s=0.008,
            idle_gap_mean_s=0.25,
            idle_gap_sigma=0.9,
            hotspot_fraction=0.55,
        ),
        WorkloadSpec(
            name="AS400-1",
            description="production IBM AS400 #1: the busiest of the four — "
            "few idle periods, much write traffic",
            write_fraction=0.65,
            requests_per_burst_mean=26,
            within_burst_gap_s=0.008,
            idle_gap_mean_s=0.35,
            idle_gap_sigma=1.0,
        ),
        WorkloadSpec(
            name="AS400-2",
            description="production IBM AS400 #2: moderate commercial load",
            write_fraction=0.60,
            requests_per_burst_mean=20,
            within_burst_gap_s=0.008,
            idle_gap_mean_s=2.0,
            idle_gap_sigma=1.2,
        ),
        WorkloadSpec(
            name="AS400-3",
            description="production IBM AS400 #3: lighter commercial load",
            write_fraction=0.55,
            requests_per_burst_mean=16,
            within_burst_gap_s=0.009,
            idle_gap_mean_s=3.2,
            idle_gap_sigma=1.3,
        ),
        WorkloadSpec(
            name="AS400-4",
            description="production IBM AS400 #4: the lightest of the four",
            write_fraction=0.50,
            requests_per_burst_mean=10,
            within_burst_gap_s=0.01,
            idle_gap_mean_s=3.0,
            idle_gap_sigma=1.4,
        ),
    ]
}


def workload_names() -> list[str]:
    """The ten workloads, in the paper's presentation order."""
    return list(CATALOG)


#: The spec used (renamed) for workload names outside the catalog when a
#: caller opts into ``make_trace(..., allow_generic=True)``: a middle-of-
#: the-road bursty server, close to the catalog's median knobs.
GENERIC_SPEC = WorkloadSpec(
    name="generic",
    description="generic bursty server workload (catalog fallback)",
    write_fraction=0.60,
    requests_per_burst_mean=20,
    within_burst_gap_s=0.008,
    idle_gap_mean_s=3.0,
    idle_gap_sigma=1.4,
)


def make_trace(
    name: str,
    duration_s: float = 60.0,
    address_space_sectors: int = PAPER_ADDRESS_SPACE_SECTORS,
    seed: int = 42,
    allow_generic: bool = False,
) -> Trace:
    """Generate the named workload's trace.

    The seed is combined with the workload name so different workloads
    never share a random stream even with the same seed argument.  With
    ``allow_generic``, a name outside the catalog yields
    :data:`GENERIC_SPEC` renamed to ``name`` (still seeded by the name)
    instead of raising.
    """
    if name not in CATALOG:
        if not allow_generic:
            raise KeyError(f"unknown workload {name!r}; choose from {workload_names()}")
        spec = dataclasses.replace(GENERIC_SPEC, name=name)
    else:
        spec = CATALOG[name]
    params = spec.params(duration_s, address_space_sectors)
    derived_seed = (hash_name(name) * 1_000_003 + seed) % 2**63
    return BurstyWorkloadGenerator(params, seed=derived_seed).generate()


def hash_name(name: str) -> int:
    """A stable (non-salted) string hash, so seeds survive interpreter runs."""
    value = 0
    for char in name:
        value = (value * 131 + ord(char)) % 2**31
    return value
