"""NVRAM reliability (§3.4).

Single-copy NVRAM write caches (e.g. the PrestoServe card) hold dirty data
behind one battery: their MDLR gives the yardstick against which AFRAID's
temporary parity lag should be judged.  The paper's point: PrestoServe-class
NVRAM already loses ~67 bytes/hour in expectation — more than AFRAID's
unprotected-data contribution under almost every workload.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class NvramModel:
    """A single-copy NVRAM staging memory."""

    name: str
    mttf_h: float
    vulnerable_bytes: int  # dirty data resident behind the single point of failure

    def __post_init__(self) -> None:
        if self.mttf_h <= 0:
            raise ValueError("mttf must be positive")
        if self.vulnerable_bytes < 0:
            raise ValueError("vulnerable_bytes must be >= 0")

    @property
    def mdlr(self) -> float:
        """Expected loss rate in bytes/hour: vulnerable data × failure rate."""
        return self.vulnerable_bytes / self.mttf_h


#: §3.4: the popular PrestoServe card — 15k-hour MTTF [Neary91], 1 MB of
#: vulnerable data ⇒ ~67 bytes/hour.
PRESTOSERVE = NvramModel(name="PrestoServe", mttf_h=15.0e3, vulnerable_bytes=10**6)

#: §3.4: lithium-cell SRAM, the most reliable (and expensive) NVRAM class.
LITHIUM_SRAM = NvramModel(name="Li-cell SRAM", mttf_h=500.0e3, vulnerable_bytes=10**6)

#: AFRAID's own marking memory: one bit per stripe — 3 KB per GB stored.
#: Its failure loses no data outright (parity is rebuilt array-wide), so
#: vulnerable_bytes is 0; see §3.1 for the double-failure window analysis.
AFRAID_MARK_MEMORY = NvramModel(name="AFRAID mark memory", mttf_h=500.0e3, vulnerable_bytes=0)
