"""Support-component reliability (§3.3).

The paper's thesis: modern disks are so reliable that the array's power
supplies, controller, cabling and fans — not its disks — bound overall
availability.  A :class:`SupportModel` aggregates component MTTFs into one
support MTTDL and the matching whole-array MDLR contribution.
"""

from __future__ import annotations

import dataclasses

from repro.availability.models import combine_mttdl, mdlr_whole_array_loss


@dataclasses.dataclass(frozen=True)
class SupportComponent:
    """One non-disk component whose failure loses the array's data."""

    name: str
    mttf_h: float
    #: Fraction of this component's failures that actually destroy data
    #: (a fan failing rarely does immediately; a controller losing its
    #: write cache usually does).
    data_loss_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.mttf_h <= 0:
            raise ValueError(f"{self.name}: mttf must be positive")
        if not 0.0 < self.data_loss_fraction <= 1.0:
            raise ValueError(f"{self.name}: data_loss_fraction must be in (0, 1]")

    @property
    def mttdl_h(self) -> float:
        """Mean time to *data loss* from this component alone."""
        return self.mttf_h / self.data_loss_fraction


class SupportModel:
    """Aggregate support-hardware data-loss model."""

    def __init__(self, components: list[SupportComponent] | None = None, mttdl_h: float | None = None) -> None:
        """Either give individual ``components`` or a single lumped ``mttdl_h``."""
        if (components is None) == (mttdl_h is None):
            raise ValueError("give exactly one of components / mttdl_h")
        self.components = tuple(components or ())
        self._lumped_mttdl_h = mttdl_h

    @property
    def mttdl_h(self) -> float:
        """Combined support MTTDL (harmonic over the components)."""
        if self._lumped_mttdl_h is not None:
            return self._lumped_mttdl_h
        return combine_mttdl(*[component.mttdl_h for component in self.components])

    def mdlr(self, ndisks: int, disk_bytes: int) -> float:
        """Bytes/hour lost to support failures (whole array each time)."""
        return mdlr_whole_array_loss(ndisks, disk_bytes, self.mttdl_h)


#: §3.3's "current more reasonable value" for a conservatively engineered
#: array: a lumped 2M-hour support MTTDL (the number Table 1 assumes).
CONSERVATIVE_SUPPORT = SupportModel(mttdl_h=2.0e6)

#: [Gibson93]'s older figure, used in the paper's 53 KB/hour comparison.
GIBSON_SUPPORT = SupportModel(mttdl_h=150.0e3)

#: An itemised example assembled from the component MTTFs §3.3 quotes,
#: illustrating why reaching 2M hours takes redundant engineering.
TYPICAL_COMPONENTS = SupportModel(
    components=[
        SupportComponent("controller", mttf_h=500.0e3, data_loss_fraction=0.5),
        SupportComponent("host bus adapter", mttf_h=400.0e3, data_loss_fraction=0.25),
        SupportComponent("power supply module", mttf_h=200.0e3, data_loss_fraction=0.1),
        SupportComponent("cabling and packaging", mttf_h=2.0e6, data_loss_fraction=0.5),
        SupportComponent("fans and cooling", mttf_h=300.0e3, data_loss_fraction=0.05),
    ]
)
