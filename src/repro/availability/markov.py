"""Markov-chain MTTDL models — the exact counterpart of eq. (1).

The paper's eq. (1) is the classical high-repair-rate approximation of a
birth-death Markov chain.  This module solves the chains exactly (via the
fundamental-matrix method: expected absorption time t solves −Q·t = 1 on
the transient states), which serves three purposes:

* validates eq. (1) — the closed form agrees to within λ/μ;
* extends the analysis to RAID 6 (two repairs in flight), which the
  paper's §5 refinement needs;
* models AFRAID's unprotected window as an extra direct data-loss rate,
  giving an independent derivation of eq. (2c)'s structure.

States are failure counts; "data loss" is the absorbing state.
"""

from __future__ import annotations

import numpy as np


class AbsorbingChain:
    """A continuous-time Markov chain with one absorbing failure state.

    ``transitions`` maps (from_state, to_state) to a rate (per hour);
    states are hashable labels.  The absorbing state must appear only as
    a destination.
    """

    def __init__(self, transitions: dict[tuple[object, object], float], absorbing: object) -> None:
        if not transitions:
            raise ValueError("need at least one transition")
        for (source, _dest), rate in transitions.items():
            if rate <= 0:
                raise ValueError(f"rates must be positive, got {rate}")
            if source == absorbing:
                raise ValueError("the absorbing state cannot have outgoing transitions")
        self.transitions = dict(transitions)
        self.absorbing = absorbing
        self.states = sorted(
            {s for s, _d in transitions} | {d for _s, d in transitions if d != absorbing},
            key=str,
        )
        self._index = {state: i for i, state in enumerate(self.states)}

    def expected_time_to_absorption(self, start: object) -> float:
        """Mean hours from ``start`` until the absorbing state."""
        if start not in self._index:
            raise ValueError(f"unknown start state {start!r}")
        n = len(self.states)
        generator = np.zeros((n, n))
        for (source, dest), rate in self.transitions.items():
            i = self._index[source]
            generator[i, i] -= rate
            if dest != self.absorbing:
                generator[i, self._index[dest]] += rate
        times = np.linalg.solve(-generator, np.ones(n))
        return float(times[self._index[start]])


def raid5_markov_mttdl(ndisks: int, mttf_disk_h: float, mttr_h: float) -> float:
    """Exact MTTDL of an N+1-disk RAID 5 with one repair crew.

    States: 0 failures, 1 failure (repairing); absorption on the second
    concurrent failure.  Eq. (1) is this chain's λ≪μ limit.
    """
    if ndisks < 2:
        raise ValueError(f"need >= 2 disks, got {ndisks}")
    failure_rate = 1.0 / mttf_disk_h
    repair_rate = 1.0 / mttr_h
    chain = AbsorbingChain(
        {
            (0, 1): ndisks * failure_rate,
            (1, 0): repair_rate,
            (1, "loss"): (ndisks - 1) * failure_rate,
        },
        absorbing="loss",
    )
    return chain.expected_time_to_absorption(0)


def raid6_markov_mttdl(ndisks: int, mttf_disk_h: float, mttr_h: float) -> float:
    """Exact MTTDL of an N+2-disk RAID 6 (one repair crew).

    Tolerates two concurrent failures; absorbs on the third.
    """
    if ndisks < 3:
        raise ValueError(f"need >= 3 disks, got {ndisks}")
    failure_rate = 1.0 / mttf_disk_h
    repair_rate = 1.0 / mttr_h
    chain = AbsorbingChain(
        {
            (0, 1): ndisks * failure_rate,
            (1, 0): repair_rate,
            (1, 2): (ndisks - 1) * failure_rate,
            (2, 1): repair_rate,
            (2, "loss"): (ndisks - 2) * failure_rate,
        },
        absorbing="loss",
    )
    return chain.expected_time_to_absorption(0)


def afraid_markov_mttdl(
    ndisks: int, mttf_disk_h: float, mttr_h: float, unprotected_fraction: float
) -> float:
    """AFRAID's chain: the RAID 5 chain plus a direct loss path.

    While data is unprotected (a fraction f of the time), *any* single
    disk failure loses data, so state 0 gains a direct absorption rate of
    f·(N+1)λ and the two-failure path is scaled by the remaining (1−f).
    This reproduces eq. (2c)'s structure from first principles.
    """
    if not 0.0 <= unprotected_fraction <= 1.0:
        raise ValueError("unprotected_fraction must be in [0, 1]")
    failure_rate = 1.0 / mttf_disk_h
    repair_rate = 1.0 / mttr_h
    if unprotected_fraction == 1.0:
        return mttf_disk_h / ndisks  # every failure is fatal
    transitions: dict[tuple[object, object], float] = {
        (0, 1): (1.0 - unprotected_fraction) * ndisks * failure_rate,
        (1, 0): repair_rate,
        (1, "loss"): (ndisks - 1) * failure_rate,
    }
    if unprotected_fraction > 1e-12:
        # Below ~1e-12 the direct-loss rate underflows relative to the
        # repair rate and only degrades the linear solve's conditioning;
        # the exposure is indistinguishable from zero anyway.
        transitions[(0, "loss")] = unprotected_fraction * ndisks * failure_rate
    chain = AbsorbingChain(transitions, absorbing="loss")
    return chain.expected_time_to_absorption(0)
