"""Analytic availability models — Section 3 of the paper.

Two complementary metrics:

* **MTTDL** — mean time to (any) data loss, eqs. (1)–(2c);
* **MDLR** — mean data-loss *rate* in bytes/hour, eqs. (3)–(5), which
  weighs each failure mode by how much data it destroys.

Plus the support-component, NVRAM, and external-power models of §3.3–3.5,
and the :class:`~repro.availability.lag.ParityLagTracker` that turns a
simulation's dirty-stripe history into the ``Tunprot`` and mean-parity-lag
quantities those equations consume.

Unless stated otherwise, times are in **hours** and data in **bytes**
(matching the paper's units); the simulation-side tracker works in seconds
and the harness converts.
"""

from repro.availability.lag import ParityLagTracker
from repro.availability.lifetime import loss_probability, mttdl_from_loss_probability
from repro.availability.models import (
    afraid_mdlr,
    afraid_mttdl,
    afraid_mttdl_raid_component,
    afraid_mttdl_unprotected,
    combine_mttdl,
    declustered_mttdl,
    declustered_mttdl_catastrophic,
    declustered_mdlr,
    declustered_rebuild_speedup,
    mdlr_raid_catastrophic,
    mdlr_unprotected,
    mirror_mdlr,
    mirror_mttdl,
    mirror_mttdl_catastrophic,
    mirror_mttdl_unprotected,
    organization_mdlr,
    organization_mttdl,
    raid0_mttdl,
    raid15_mdlr,
    raid15_mttdl,
    raid15_mttdl_catastrophic,
    raid15_mttdl_unprotected,
    raid5_mttdl_catastrophic,
)
from repro.availability.nvram_model import NvramModel, PRESTOSERVE
from repro.availability.params import ReliabilityParams, TABLE_1
from repro.availability.power import PowerModel, MAINS_ONLY, WITH_UPS
from repro.availability.support import SupportModel, CONSERVATIVE_SUPPORT, GIBSON_SUPPORT

__all__ = [
    "CONSERVATIVE_SUPPORT",
    "GIBSON_SUPPORT",
    "MAINS_ONLY",
    "NvramModel",
    "PRESTOSERVE",
    "ParityLagTracker",
    "PowerModel",
    "ReliabilityParams",
    "SupportModel",
    "TABLE_1",
    "WITH_UPS",
    "afraid_mdlr",
    "afraid_mttdl",
    "afraid_mttdl_raid_component",
    "afraid_mttdl_unprotected",
    "combine_mttdl",
    "declustered_mdlr",
    "declustered_mttdl",
    "declustered_mttdl_catastrophic",
    "declustered_rebuild_speedup",
    "loss_probability",
    "mdlr_raid_catastrophic",
    "mdlr_unprotected",
    "mirror_mdlr",
    "mirror_mttdl",
    "mirror_mttdl_catastrophic",
    "mirror_mttdl_unprotected",
    "mttdl_from_loss_probability",
    "organization_mdlr",
    "organization_mttdl",
    "raid0_mttdl",
    "raid15_mdlr",
    "raid15_mttdl",
    "raid15_mttdl_catastrophic",
    "raid15_mttdl_unprotected",
    "raid5_mttdl_catastrophic",
]
