"""Table 1: the reliability constants assumed throughout the paper."""

from __future__ import annotations

import dataclasses

HOURS_PER_YEAR = 24.0 * 365.25
GB = 10**9
KB = 10**3


@dataclasses.dataclass(frozen=True)
class ReliabilityParams:
    """The paper's Table 1, plus the derived effective disk MTTF.

    ``mttf_disk_raw_h`` is the manufacturer's figure; the paper folds the
    failure-prediction coverage factor C in as
    ``MTTFdisk = MTTFdisk-raw / (1 − C)`` — predicted failures (a fraction
    C of all failures) can be repaired pre-emptively and so do not count
    as *unexpected*.
    """

    mttf_disk_raw_h: float = 1.0e6  # disk mean time to failure (raw)
    mttdl_support_h: float = 2.0e6  # support hardware mean time to data loss
    coverage: float = 0.5  # disk failure-prediction coverage C
    mttr_h: float = 48.0  # mean time to repair
    stripe_unit_bytes: int = 8 * 2**10  # stripe unit size S = 8 KB
    disk_bytes: int = 2 * GB  # size of disk, Vdisk = 2 GB

    def __post_init__(self) -> None:
        if not 0.0 <= self.coverage < 1.0:
            raise ValueError(f"coverage must be in [0, 1), got {self.coverage}")
        for name in ("mttf_disk_raw_h", "mttdl_support_h", "mttr_h"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.stripe_unit_bytes < 1 or self.disk_bytes < 1:
            raise ValueError("sizes must be positive")

    @property
    def mttf_disk_h(self) -> float:
        """Effective MTTF for *unexpected* disk failures: raw / (1 − C)."""
        return self.mttf_disk_raw_h / (1.0 - self.coverage)

    def rows(self) -> list[tuple[str, str]]:
        """(parameter, value) pairs in the paper's Table 1 order."""
        return [
            ("disk mean time to failure MTTFdisk-raw", f"{self.mttf_disk_raw_h / 1e6:g}M hours"),
            (
                "support hardware mean time to data loss MTTDLsupport",
                f"{self.mttdl_support_h / 1e6:g}M hours",
            ),
            ("disk failure-prediction coverage (C)", f"{self.coverage:g}"),
            ("mean time to repair (MTTR)", f"{self.mttr_h:g} hours"),
            ("stripe unit size (S)", f"{self.stripe_unit_bytes // 2**10}KB"),
            ("size of disk (Vdisk)", f"{self.disk_bytes / GB:g}GB"),
        ]


#: The exact values of the paper's Table 1.
TABLE_1 = ReliabilityParams()
