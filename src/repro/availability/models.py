"""Equations (1)–(5): disk-related MTTDL and MDLR for RAID 5 and AFRAID.

Conventions: an array has ``ndisks = N + 1`` member disks (N data-equivalent
plus one parity-equivalent).  Times in hours, data in bytes, rates in
bytes/hour.  All MTTDL contributions combine as *rates* (harmonically),
since independent failure processes add their rates.
"""

from __future__ import annotations


def _check_ndisks(ndisks: int) -> int:
    if ndisks < 2:
        raise ValueError(f"an array needs >= 2 disks, got {ndisks}")
    return ndisks - 1  # N


def raid5_mttdl_catastrophic(ndisks: int, mttf_disk_h: float, mttr_h: float) -> float:
    """Eq. (1): MTTDL of an N+1-disk RAID 5 to a *double* disk failure.

    ``MTTDL = MTTFdisk² / (N · (N+1) · MTTR)``
    """
    n = _check_ndisks(ndisks)
    if mttf_disk_h <= 0 or mttr_h <= 0:
        raise ValueError("mttf and mttr must be positive")
    return mttf_disk_h**2 / (n * (n + 1) * mttr_h)


def raid0_mttdl(ndisks: int, mttf_disk_h: float) -> float:
    """MTTDL of an unprotected array: the first disk failure loses data.

    With ``ndisks`` independent exponential failure processes the aggregate
    rate is ndisks/MTTF.
    """
    if ndisks < 1:
        raise ValueError(f"need >= 1 disk, got {ndisks}")
    if mttf_disk_h <= 0:
        raise ValueError("mttf must be positive")
    return mttf_disk_h / ndisks


def afraid_mttdl_unprotected(
    ndisks: int, mttf_disk_h: float, unprotected_fraction: float
) -> float:
    """Eq. (2a): the MTTDL contribution while unprotected data exists.

    ``unprotected_fraction`` is Tunprot/Ttotal, measured from a workload.
    ``MTTDL = (Ttotal/Tunprot) · MTTFdisk / (N+1)``.  Conservative: any
    single-disk failure during an unprotected period counts as data loss.
    Returns +inf when the array was never unprotected.
    """
    n = _check_ndisks(ndisks)
    if not 0.0 <= unprotected_fraction <= 1.0:
        raise ValueError(f"unprotected_fraction must be in [0, 1], got {unprotected_fraction}")
    if unprotected_fraction == 0.0:
        return float("inf")
    return (1.0 / unprotected_fraction) * mttf_disk_h / (n + 1)


def afraid_mttdl_raid_component(
    raid5_mttdl_h: float, unprotected_fraction: float
) -> float:
    """Eq. (2b): the double-failure contribution, for the protected time.

    ``MTTDL = Ttotal/(Ttotal − Tunprot) · MTTDL_RAID_catastrophic``.
    Returns +inf when the array is *always* unprotected (no RAID exposure).
    """
    if not 0.0 <= unprotected_fraction <= 1.0:
        raise ValueError(f"unprotected_fraction must be in [0, 1], got {unprotected_fraction}")
    if unprotected_fraction == 1.0:
        return float("inf")
    return raid5_mttdl_h / (1.0 - unprotected_fraction)


def combine_mttdl(*mttdls: float) -> float:
    """Eq. (2c) generalised: combine independent contributions harmonically.

    MTTDLs are inverse rates; independent processes add rates:
    ``1/MTTDL = Σ 1/MTTDLᵢ``.  Infinite contributions drop out.
    """
    if not mttdls:
        raise ValueError("need at least one MTTDL")
    rate = 0.0
    for mttdl in mttdls:
        if mttdl <= 0:
            raise ValueError(f"MTTDL values must be positive, got {mttdl}")
        if mttdl != float("inf"):
            rate += 1.0 / mttdl
    return float("inf") if rate == 0.0 else 1.0 / rate


def afraid_mttdl(
    ndisks: int,
    mttf_disk_h: float,
    mttr_h: float,
    unprotected_fraction: float,
) -> float:
    """Eq. (2c): overall disk-related AFRAID MTTDL for a measured workload."""
    unprot = afraid_mttdl_unprotected(ndisks, mttf_disk_h, unprotected_fraction)
    raid = afraid_mttdl_raid_component(
        raid5_mttdl_catastrophic(ndisks, mttf_disk_h, mttr_h), unprotected_fraction
    )
    return combine_mttdl(unprot, raid)


def mdlr_raid_catastrophic(
    ndisks: int, disk_bytes: int, raid_mttdl_h: float
) -> float:
    """Eq. (3): data-loss rate of the double-disk-failure catastrophe.

    ``MDLR = 2·Vdisk · N/(N+1) / MTTDL`` — two disks of contents go, of
    which the N/(N+1) fraction was data rather than parity.
    """
    n = _check_ndisks(ndisks)
    if disk_bytes < 0:
        raise ValueError("disk_bytes must be >= 0")
    if raid_mttdl_h <= 0:
        raise ValueError("MTTDL must be positive")
    return 2.0 * disk_bytes * (n / (n + 1)) / raid_mttdl_h


def mdlr_unprotected(
    ndisks: int, mean_parity_lag_bytes: float, mttf_disk_h: float
) -> float:
    """Eq. (4): data-loss rate from single-disk failures over dirty stripes.

    ``MDLR = (mean_parity_lag / N) · (N+1)/MTTFdisk`` — on average a 1/N
    share of the unprotected data sits on whichever disk dies, and the
    array's total disk-failure rate is (N+1)/MTTF.
    """
    n = _check_ndisks(ndisks)
    if mean_parity_lag_bytes < 0:
        raise ValueError("parity lag must be >= 0")
    if mttf_disk_h <= 0:
        raise ValueError("mttf must be positive")
    return (mean_parity_lag_bytes / n) * (n + 1) / mttf_disk_h


def afraid_mdlr(
    ndisks: int,
    disk_bytes: int,
    mttf_disk_h: float,
    mttr_h: float,
    mean_parity_lag_bytes: float,
) -> float:
    """Eq. (5): total disk-related AFRAID data-loss rate."""
    catastrophic = mdlr_raid_catastrophic(
        ndisks, disk_bytes, raid5_mttdl_catastrophic(ndisks, mttf_disk_h, mttr_h)
    )
    return catastrophic + mdlr_unprotected(ndisks, mean_parity_lag_bytes, mttf_disk_h)


def _check_pairs(ndisks: int) -> int:
    if ndisks < 2 or ndisks % 2:
        raise ValueError(f"a mirrored array needs an even disk count >= 2, got {ndisks}")
    return ndisks // 2


def mirror_mttdl_catastrophic(ndisks: int, mttf_disk_h: float, mttr_h: float) -> float:
    """MTTDL of a pair-mirrored array (RAID 1 / RAID 1/0) to pair death.

    A pair dies when the surviving member fails during the partner's
    repair window: ``MTTDLpair = MTTFdisk² / (2·MTTR)`` (Thomasian), and
    with ``npairs`` independent pairs the rates add:
    ``MTTDL = MTTFdisk² / (2·npairs·MTTR)``.
    """
    npairs = _check_pairs(ndisks)
    if mttf_disk_h <= 0 or mttr_h <= 0:
        raise ValueError("mttf and mttr must be positive")
    return mttf_disk_h**2 / (2.0 * npairs * mttr_h)


def mirror_mttdl_unprotected(
    ndisks: int, mttf_disk_h: float, unprotected_fraction: float
) -> float:
    """Deferred-mirror analogue of eq. (2a).

    With the mirror copy deferred, a dirty stripe's only fresh copy is
    its primary: only a *primary* failure during an unprotected period
    loses data, and there are ``npairs`` primaries.
    ``MTTDL = (Ttotal/Tunprot) · MTTFdisk / npairs``.
    """
    npairs = _check_pairs(ndisks)
    if not 0.0 <= unprotected_fraction <= 1.0:
        raise ValueError(f"unprotected_fraction must be in [0, 1], got {unprotected_fraction}")
    if unprotected_fraction == 0.0:
        return float("inf")
    return (1.0 / unprotected_fraction) * mttf_disk_h / npairs


def mirror_mttdl(
    ndisks: int,
    mttf_disk_h: float,
    mttr_h: float,
    unprotected_fraction: float,
) -> float:
    """Overall disk-related MTTDL of a deferred-copy mirrored array.

    Combines the deferred-copy exposure with the pair-death catastrophe
    exactly as eq. (2c) combines AFRAID's components.
    """
    unprot = mirror_mttdl_unprotected(ndisks, mttf_disk_h, unprotected_fraction)
    pair = afraid_mttdl_raid_component(
        mirror_mttdl_catastrophic(ndisks, mttf_disk_h, mttr_h), unprotected_fraction
    )
    return combine_mttdl(unprot, pair)


def mirror_mdlr(
    ndisks: int,
    disk_bytes: int,
    mttf_disk_h: float,
    mttr_h: float,
    mean_copy_lag_bytes: float,
) -> float:
    """Data-loss rate of a deferred-copy mirrored array.

    Pair death loses one disk's worth of data (the pair stores each byte
    twice); a primary failure during dirty windows loses that primary's
    share of the copy lag — the lag spreads over ``npairs`` primaries and
    primaries fail at ``npairs/MTTF``, so the lag term is simply
    ``lag / MTTF``.
    """
    _check_pairs(ndisks)
    if disk_bytes < 0:
        raise ValueError("disk_bytes must be >= 0")
    if mean_copy_lag_bytes < 0:
        raise ValueError("copy lag must be >= 0")
    catastrophic = disk_bytes / mirror_mttdl_catastrophic(ndisks, mttf_disk_h, mttr_h)
    return catastrophic + mean_copy_lag_bytes / mttf_disk_h


def raid15_mttdl_catastrophic(ndisks: int, mttf_disk_h: float, mttr_h: float) -> float:
    """MTTDL of hybrid RAID 1+5 to a *double pair* death.

    Treat each mirrored pair as a super-disk with
    ``MTTFpair = MTTFdisk²/(2·MTTR)`` and feed eq. (1) the pair array:
    parity over ``npairs`` pairs survives one dead pair, so data loss
    needs a second pair death within the first pair's repair window.
    """
    npairs = _check_pairs(ndisks)
    mttf_pair = mttf_disk_h**2 / (2.0 * mttr_h)
    return raid5_mttdl_catastrophic(npairs, mttf_pair, mttr_h)


def raid15_mttdl_unprotected(
    ndisks: int, mttf_disk_h: float, mttr_h: float, unprotected_fraction: float
) -> float:
    """Deferred-parity exposure of RAID 1+5.

    Dirty stripes keep both mirror copies of their data, so losing dirty
    data needs a whole *pair* to die during the unprotected window:
    ``MTTDL = (Ttotal/Tunprot) · MTTFpair / npairs``.
    """
    npairs = _check_pairs(ndisks)
    if not 0.0 <= unprotected_fraction <= 1.0:
        raise ValueError(f"unprotected_fraction must be in [0, 1], got {unprotected_fraction}")
    if unprotected_fraction == 0.0:
        return float("inf")
    mttf_pair = mttf_disk_h**2 / (2.0 * mttr_h)
    return (1.0 / unprotected_fraction) * mttf_pair / npairs


def raid15_mttdl(
    ndisks: int,
    mttf_disk_h: float,
    mttr_h: float,
    unprotected_fraction: float,
) -> float:
    """Overall disk-related MTTDL of deferred-parity RAID 1+5."""
    unprot = raid15_mttdl_unprotected(ndisks, mttf_disk_h, mttr_h, unprotected_fraction)
    raid = afraid_mttdl_raid_component(
        raid15_mttdl_catastrophic(ndisks, mttf_disk_h, mttr_h), unprotected_fraction
    )
    return combine_mttdl(unprot, raid)


def raid15_mdlr(
    ndisks: int,
    disk_bytes: int,
    mttf_disk_h: float,
    mttr_h: float,
    mean_parity_lag_bytes: float,
) -> float:
    """Data-loss rate of deferred-parity RAID 1+5 (pair-level eq. (5))."""
    npairs = _check_pairs(ndisks)
    mttf_pair = mttf_disk_h**2 / (2.0 * mttr_h)
    catastrophic = mdlr_raid_catastrophic(
        npairs, disk_bytes, raid15_mttdl_catastrophic(ndisks, mttf_disk_h, mttr_h)
    )
    return catastrophic + mdlr_unprotected(npairs, mean_parity_lag_bytes, mttf_pair)


def declustered_rebuild_speedup(ndisks: int, stripe_width: int) -> float:
    """Rebuild-time shrink factor of parity declustering.

    Each surviving disk contributes only the ``(k-1)/(n-1)`` fraction of
    its contents to a rebuild, so repair completes that much sooner.
    """
    if not 3 <= stripe_width <= ndisks:
        raise ValueError(
            f"stripe width must satisfy 3 <= k <= ndisks, got k={stripe_width} for {ndisks} disks"
        )
    return (stripe_width - 1) / (ndisks - 1)


def declustered_mttdl_catastrophic(
    ndisks: int, mttf_disk_h: float, mttr_h: float, stripe_width: int | None = None
) -> float:
    """Eq. (1) with the declustered repair window.

    Any second concurrent failure still intersects some stripe of the
    first (the complete block design covers every disk pair), so the
    double-failure structure is RAID 5's — but the window shrinks by the
    rebuild speedup ``(k-1)/(n-1)``.
    """
    k = ndisks - 1 if stripe_width is None else stripe_width
    return raid5_mttdl_catastrophic(
        ndisks, mttf_disk_h, mttr_h * declustered_rebuild_speedup(ndisks, k)
    )


def declustered_mttdl(
    ndisks: int,
    mttf_disk_h: float,
    mttr_h: float,
    unprotected_fraction: float,
    stripe_width: int | None = None,
) -> float:
    """Overall disk-related MTTDL of declustered AFRAID (eq. (2c) shape)."""
    unprot = afraid_mttdl_unprotected(ndisks, mttf_disk_h, unprotected_fraction)
    raid = afraid_mttdl_raid_component(
        declustered_mttdl_catastrophic(ndisks, mttf_disk_h, mttr_h, stripe_width),
        unprotected_fraction,
    )
    return combine_mttdl(unprot, raid)


def declustered_mdlr(
    ndisks: int,
    disk_bytes: int,
    mttf_disk_h: float,
    mttr_h: float,
    mean_parity_lag_bytes: float,
    stripe_width: int | None = None,
) -> float:
    """Eq. (5) with the declustered catastrophe rate."""
    catastrophic = mdlr_raid_catastrophic(
        ndisks,
        disk_bytes,
        declustered_mttdl_catastrophic(ndisks, mttf_disk_h, mttr_h, stripe_width),
    )
    return catastrophic + mdlr_unprotected(ndisks, mean_parity_lag_bytes, mttf_disk_h)


def organization_mttdl(
    organization: str,
    ndisks: int,
    mttf_disk_h: float,
    mttr_h: float,
    unprotected_fraction: float,
) -> float:
    """Disk-related MTTDL of a deferred-update array of any organization.

    ``"raid5"`` reproduces :func:`afraid_mttdl` exactly (the pre-existing
    default everywhere); the other organizations dispatch to their models.
    """
    if organization == "raid5":
        return afraid_mttdl(ndisks, mttf_disk_h, mttr_h, unprotected_fraction)
    if organization == "raid5d":
        return declustered_mttdl(ndisks, mttf_disk_h, mttr_h, unprotected_fraction)
    if organization in ("raid1", "raid10"):
        return mirror_mttdl(ndisks, mttf_disk_h, mttr_h, unprotected_fraction)
    if organization == "raid15":
        return raid15_mttdl(ndisks, mttf_disk_h, mttr_h, unprotected_fraction)
    raise ValueError(f"unknown organization {organization!r}")


def organization_mdlr(
    organization: str,
    ndisks: int,
    disk_bytes: int,
    mttf_disk_h: float,
    mttr_h: float,
    mean_lag_bytes: float,
) -> float:
    """Disk-related MDLR of a deferred-update array of any organization."""
    if organization == "raid5":
        return afraid_mdlr(ndisks, disk_bytes, mttf_disk_h, mttr_h, mean_lag_bytes)
    if organization == "raid5d":
        return declustered_mdlr(ndisks, disk_bytes, mttf_disk_h, mttr_h, mean_lag_bytes)
    if organization in ("raid1", "raid10"):
        return mirror_mdlr(ndisks, disk_bytes, mttf_disk_h, mttr_h, mean_lag_bytes)
    if organization == "raid15":
        return raid15_mdlr(ndisks, disk_bytes, mttf_disk_h, mttr_h, mean_lag_bytes)
    raise ValueError(f"unknown organization {organization!r}")


def mdlr_whole_array_loss(
    ndisks: int, disk_bytes: int, mttdl_h: float
) -> float:
    """MDLR of a failure mode that destroys the whole array's data.

    Used for the support-hardware contribution (§3.3): the array holds
    ``N·Vdisk`` bytes of data (the rest is parity).
    """
    n = _check_ndisks(ndisks)
    if mttdl_h <= 0:
        raise ValueError("MTTDL must be positive")
    return n * disk_bytes / mttdl_h


def single_disk_mdlr(disk_bytes: int, mttf_disk_h: float) -> float:
    """MDLR of one unprotected disk — §3.6's 2–4 KB/hour yardstick."""
    if mttf_disk_h <= 0:
        raise ValueError("mttf must be positive")
    return disk_bytes / mttf_disk_h
