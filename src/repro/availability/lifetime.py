"""Lifetime loss probabilities.

MTTDL figures are failure *rates* in disguise, not lifetime promises — a
point the paper makes explicitly (§3.2).  For an exponential process the
chance of at least one loss during a deployment of length T is
``1 − exp(−T/MTTDL)``; e.g. a 1M-hour MTTDL is a 2.6% chance of loss over
a typical 3-year array life.
"""

from __future__ import annotations

import math

from repro.availability.params import HOURS_PER_YEAR


def loss_probability(mttdl_h: float, lifetime_h: float) -> float:
    """P(≥1 data loss during ``lifetime_h``) for an exponential process."""
    if mttdl_h <= 0:
        raise ValueError("MTTDL must be positive")
    if lifetime_h < 0:
        raise ValueError("lifetime must be >= 0")
    if mttdl_h == float("inf"):
        return 0.0
    return 1.0 - math.exp(-lifetime_h / mttdl_h)


def loss_probability_years(mttdl_h: float, years: float = 3.0) -> float:
    """Convenience wrapper: lifetime given in years (default: the paper's
    typical 3-year array life)."""
    return loss_probability(mttdl_h, years * HOURS_PER_YEAR)


def mttdl_from_loss_probability(probability: float, lifetime_h: float) -> float:
    """Invert :func:`loss_probability`: what MTTDL yields this lifetime risk?"""
    if not 0.0 < probability < 1.0:
        raise ValueError("probability must be in (0, 1)")
    if lifetime_h <= 0:
        raise ValueError("lifetime must be positive")
    return -lifetime_h / math.log(1.0 - probability)
