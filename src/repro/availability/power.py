"""External power failures (§3.5).

A power cut during a RAID 5 write can corrupt the stripe being updated
(no intentions log), so the effective data-loss rate scales with the
fraction of time writes are outstanding — the *write duty cycle*.  The
paper: mains MTTF 4300 h and a 10% duty cycle give a 43k-hour MTTDL —
losing ~98% of the array's availability — while a 200k-hour UPS restores
it to 2M hours.
"""

from __future__ import annotations

import dataclasses

from repro.availability.models import mdlr_whole_array_loss


@dataclasses.dataclass(frozen=True)
class PowerModel:
    """External power with an optional UPS in front of the array."""

    name: str
    mttf_power_h: float
    write_duty_cycle: float = 0.1

    def __post_init__(self) -> None:
        if self.mttf_power_h <= 0:
            raise ValueError("power mttf must be positive")
        if not 0.0 < self.write_duty_cycle <= 1.0:
            raise ValueError("write duty cycle must be in (0, 1]")

    @property
    def mttdl_h(self) -> float:
        """Only outages that land during a write lose data."""
        return self.mttf_power_h / self.write_duty_cycle

    def mdlr(self, ndisks: int, disk_bytes: int, lost_fraction: float = 1e-6) -> float:
        """Loss rate; a power cut corrupts in-flight stripes, not the whole
        array, so ``lost_fraction`` scales the per-event damage."""
        return mdlr_whole_array_loss(ndisks, disk_bytes, self.mttdl_h) * lost_fraction


#: §3.5's mains-only scenario: [Gibson93]'s 4300-hour power MTTF.
MAINS_ONLY = PowerModel(name="mains only", mttf_power_h=4300.0)

#: §3.5's high-grade UPS [Best95]: 200k-hour MTTF.
WITH_UPS = PowerModel(name="with UPS", mttf_power_h=200.0e3)
