"""Parity-lag accounting: turning a dirty-stripe history into §3's inputs.

*Parity lag* (the paper's term) is the amount of unredundant non-parity
data in the array at an instant, in bytes.  The tracker integrates it over
simulated time to produce:

* ``mean_parity_lag_bytes`` — the time-weighted average, eq. (4)'s input;
* ``unprotected_fraction`` — Tunprot/Ttotal, eq. (2a)'s input;
* peak lag and total unprotected time, for reporting.

The array controller calls :meth:`record` whenever the number of dirty
stripes changes; :meth:`finish` closes the integral at the horizon.
"""

from __future__ import annotations


class ParityLagTracker:
    """Time-weighted integral of parity lag over a simulation run."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._start = start_time
        self._last_time = start_time
        self._last_lag = 0.0
        self._lag_integral = 0.0  # byte·seconds
        self._unprotected_time = 0.0  # seconds with lag > 0
        self._peak_lag = 0.0
        self._finished_at: float | None = None

    # -- recording ---------------------------------------------------------------

    def record(self, time: float, lag_bytes: float) -> None:
        """The parity lag changed to ``lag_bytes`` at ``time``."""
        if self._finished_at is not None:
            raise RuntimeError("tracker already finished")
        if time < self._last_time:
            raise ValueError(f"time went backwards: {time} < {self._last_time}")
        if lag_bytes < 0:
            raise ValueError(f"lag cannot be negative, got {lag_bytes}")
        self._accumulate(time)
        self._last_lag = lag_bytes
        self._peak_lag = max(self._peak_lag, lag_bytes)

    def finish(self, time: float) -> None:
        """Close the integrals at the end of the observation window."""
        if self._finished_at is not None:
            raise RuntimeError("tracker already finished")
        if time < self._last_time:
            raise ValueError(f"time went backwards: {time} < {self._last_time}")
        self._accumulate(time)
        self._finished_at = time

    def _accumulate(self, time: float) -> None:
        elapsed = time - self._last_time
        if elapsed > 0:
            self._lag_integral += self._last_lag * elapsed
            if self._last_lag > 0:
                self._unprotected_time += elapsed
        self._last_time = time

    # -- results ----------------------------------------------------------------------

    @property
    def total_time(self) -> float:
        """Observation window so far (seconds)."""
        end = self._finished_at if self._finished_at is not None else self._last_time
        return end - self._start

    @property
    def unprotected_time(self) -> float:
        """Tunprot: seconds during which some data was unredundant."""
        return self._unprotected_time

    @property
    def unprotected_fraction(self) -> float:
        """Tunprot / Ttotal (0 if no time has passed)."""
        total = self.total_time
        return self._unprotected_time / total if total > 0 else 0.0

    @property
    def mean_parity_lag_bytes(self) -> float:
        """Time-weighted mean lag over the whole window."""
        total = self.total_time
        return self._lag_integral / total if total > 0 else 0.0

    @property
    def peak_parity_lag_bytes(self) -> float:
        return self._peak_lag

    @property
    def current_lag_bytes(self) -> float:
        return self._last_lag

    def snapshot_unprotected_fraction(self, now: float) -> float:
        """Tunprot/Ttotal as of ``now`` without mutating the tracker.

        The MTTDL_x policy polls this continuously to decide whether the
        availability target is still being met.  After :meth:`finish` the
        fraction is frozen — the window is closed, so later ``now`` values
        must not keep extending (or double-counting) the open segment.
        """
        if self._finished_at is not None and now >= self._finished_at:
            return self.unprotected_fraction
        if now < self._last_time:
            raise ValueError("time went backwards")
        total = now - self._start
        if total <= 0:
            return 0.0
        unprotected = self._unprotected_time
        if self._last_lag > 0:
            unprotected += now - self._last_time
        return unprotected / total

    def __repr__(self) -> str:
        return (
            f"<ParityLagTracker mean={self.mean_parity_lag_bytes:.1f}B "
            f"unprot={self.unprotected_fraction:.3f} peak={self._peak_lag:.0f}B>"
        )
