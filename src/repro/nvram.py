"""The AFRAID marking memory: one NVRAM bit per (sub-)stripe.

A write marks the target stripes *unredundant*; the background scrubber
clears the mark once parity is rebuilt.  Re-marking a marked stripe does
nothing (§1.1).  Marks are kept in insertion order so the scrubber
processes the longest-unprotected stripe first.

The §5 refinement is supported too: with ``bits_per_stripe = M > 1`` each
stripe is tracked in M sub-units, so a small write dirties only 1/M of the
stripe and the rebuild reads proportionally less.

Cost check (§1.1): one bit per stripe on a 5-wide array with 8 KB stripe
units is 1 bit per 32 KB of data — ~3 bits per 100 KB, or ~3 KB of NVRAM
per GB stored, matching the paper's figure (:meth:`MarkMemory.size_bits`).
"""

from __future__ import annotations

import typing


def sub_unit_extent(sub_unit: int, unit_sectors: int, bits: int) -> tuple[int, int]:
    """(start sector within the unit, sector count) of one marking sub-unit.

    Sub-units divide the stripe-unit *height* (§5): with M bits per
    stripe, bit k covers rows [k·U/M, (k+1)·U/M) of every unit in the
    stripe.  Integer arithmetic so consecutive extents tile the unit
    exactly; the companion :func:`sub_unit_of` uses the same boundaries.
    """
    start = sub_unit * unit_sectors // bits
    end = (sub_unit + 1) * unit_sectors // bits
    return start, max(1, end - start)


def sub_unit_of(row: int, unit_sectors: int, bits: int) -> int:
    """The marking sub-unit covering ``row`` (a sector offset within a unit).

    Exact inverse of the :func:`sub_unit_extent` tiling: the smallest k
    with ``(k+1)·U//M > row``, clamped for the degenerate M > U case.
    """
    return min(((row + 1) * bits - 1) // unit_sectors, bits - 1)


def sub_units_overlapping(
    start_row: int, nsectors: int, unit_sectors: int, bits: int
) -> range:
    """The sub-units a row span [start_row, start_row + nsectors) touches."""
    if bits == 1:
        return range(0, 1)
    first = sub_unit_of(start_row, unit_sectors, bits)
    last = sub_unit_of(start_row + nsectors - 1, unit_sectors, bits)
    return range(first, last + 1)


class MarkMemoryFailedError(Exception):
    """The marking memory was accessed after failing."""


class MarkMemory:
    """Per-stripe (or per-sub-unit) unredundant marks."""

    def __init__(self, nstripes: int, bits_per_stripe: int = 1) -> None:
        if nstripes < 1:
            raise ValueError(f"need >= 1 stripe, got {nstripes}")
        if bits_per_stripe < 1:
            raise ValueError(f"need >= 1 bit per stripe, got {bits_per_stripe}")
        self.nstripes = nstripes
        self.bits_per_stripe = bits_per_stripe
        # dict used as an insertion-ordered set of (stripe, sub_unit).
        self._marks: dict[tuple[int, int], None] = {}
        # Secondary index: stripe -> insertion-ordered set of marked
        # sub-units.  Keeps the per-write queries (is this stripe dirty?
        # clear its marks) O(marks of that stripe) instead of O(all marks).
        self._per_stripe: dict[int, dict[int, None]] = {}
        self._failed = False

    # -- marking -------------------------------------------------------------------

    def mark(self, stripe: int, sub_unit: int = 0) -> bool:
        """Mark a (sub-)stripe unredundant.  Returns True if newly marked."""
        self._check_alive()
        self._check_key(stripe, sub_unit)
        key = (stripe, sub_unit)
        if key in self._marks:
            return False
        self._marks[key] = None
        subs = self._per_stripe.get(stripe)
        if subs is None:
            self._per_stripe[stripe] = {sub_unit: None}
        else:
            subs[sub_unit] = None
        return True

    def clear(self, stripe: int, sub_unit: int = 0) -> bool:
        """Clear a mark after its parity was rebuilt.  True if it was set."""
        self._check_alive()
        self._check_key(stripe, sub_unit)
        key = (stripe, sub_unit)
        if key in self._marks:
            del self._marks[key]
            subs = self._per_stripe[stripe]
            del subs[sub_unit]
            if not subs:
                del self._per_stripe[stripe]
            return True
        return False

    def clear_stripe(self, stripe: int) -> int:
        """Clear every sub-unit mark of ``stripe``; returns how many."""
        self._check_alive()
        subs = self._per_stripe.pop(stripe, None)
        if subs is None:
            return 0
        marks = self._marks
        for sub_unit in subs:
            del marks[(stripe, sub_unit)]
        return len(subs)

    # -- queries ----------------------------------------------------------------------

    def is_marked(self, stripe: int, sub_unit: int | None = None) -> bool:
        """Is the stripe (or one sub-unit of it) marked?"""
        self._check_alive()
        if sub_unit is not None:
            return (stripe, sub_unit) in self._marks
        return stripe in self._per_stripe

    @property
    def count(self) -> int:
        """Number of set marks."""
        self._check_alive()
        return len(self._marks)

    @property
    def marked_stripes(self) -> list[int]:
        """Distinct marked stripes, oldest mark first."""
        self._check_alive()
        seen: dict[int, None] = {}
        for stripe, _sub in self._marks:
            seen.setdefault(stripe)
        return list(seen)

    @property
    def marked_stripe_count(self) -> int:
        """``len(marked_stripes)`` without building the list."""
        self._check_alive()
        return len(self._per_stripe)

    def oldest(self) -> tuple[int, int] | None:
        """The longest-standing (stripe, sub_unit) mark, or None."""
        self._check_alive()
        return next(iter(self._marks), None)

    def marks_in_order(self) -> list[tuple[int, int]]:
        """All (stripe, sub_unit) marks, oldest first."""
        self._check_alive()
        return list(self._marks)

    def marks_of(self, stripe: int) -> list[int]:
        """Sub-units of ``stripe`` currently marked, oldest first."""
        self._check_alive()
        subs = self._per_stripe.get(stripe)
        return [] if subs is None else list(subs)

    # -- persistence (crash simulation) ----------------------------------------------

    def snapshot(self) -> list[tuple[int, int]]:
        """All (stripe, sub_unit) marks, oldest first — NVRAM survives a
        power loss, so a crash-restart restores exactly this list."""
        self._check_alive()
        return list(self._marks)

    def restore(self, marks: typing.Iterable[tuple[int, int]]) -> None:
        """Re-apply a :meth:`snapshot` (insertion order preserved)."""
        for stripe, sub_unit in marks:
            self.mark(stripe, sub_unit)

    # -- sizing (the paper's cost argument) ----------------------------------------------

    @property
    def size_bits(self) -> int:
        """NVRAM footprint: nstripes × bits_per_stripe."""
        return self.nstripes * self.bits_per_stripe

    # -- failure ------------------------------------------------------------------------

    @property
    def failed(self) -> bool:
        return self._failed

    def fail(self) -> None:
        """Lose the marking memory.

        The recovery procedure (§1.1) is the *array's* job: rebuild parity
        for every stripe, since it can no longer tell which were dirty.
        Until :meth:`recover` is called, accesses raise.
        """
        self._failed = True
        self._marks.clear()
        self._per_stripe.clear()

    def recover(self) -> None:
        """Bring a replacement marking memory online (all marks clear)."""
        self._failed = False
        self._marks.clear()
        self._per_stripe.clear()

    # -- helpers -------------------------------------------------------------------------

    def _check_alive(self) -> None:
        if self._failed:
            raise MarkMemoryFailedError("marking memory has failed")

    def _check_key(self, stripe: int, sub_unit: int) -> None:
        if not 0 <= stripe < self.nstripes:
            raise ValueError(f"stripe {stripe} out of range [0, {self.nstripes})")
        if not 0 <= sub_unit < self.bits_per_stripe:
            raise ValueError(f"sub_unit {sub_unit} out of range [0, {self.bits_per_stripe})")

    def __repr__(self) -> str:
        state = "FAILED" if self._failed else f"{len(self._marks)} marks"
        return f"<MarkMemory {self.nstripes} stripes x {self.bits_per_stripe} bits, {state}>"
