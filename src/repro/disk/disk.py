"""The mechanical disk: seek + rotation + transfer timing, one I/O at a time.

The model follows [Ruemmler94]: a fixed controller overhead per command, the
seek curve from :mod:`repro.disk.seek`, rotational latency computed from the
absolute rotational position (a pure function of simulated time, so equal
``spindle_phase`` values give the spin-synchronised arrays the paper
simulates), and per-track media transfer where head/cylinder switches along
a long access are hidden by track/cylinder skew.
"""

from __future__ import annotations

import dataclasses
import enum
import typing

from repro.disk.geometry import DiskGeometry
from repro.disk.seek import SeekModel
from repro.sim import Event, Simulator


class IoKind(enum.Enum):
    """Direction of a disk access."""

    READ = "read"
    WRITE = "write"


class DiskFailedError(Exception):
    """An I/O was issued to (or in flight on) a failed disk."""


@dataclasses.dataclass(frozen=True)
class DiskIO:
    """One physical disk access: ``nsectors`` starting at ``lba``."""

    kind: IoKind
    lba: int
    nsectors: int
    tag: typing.Any = None

    def __post_init__(self) -> None:
        if self.lba < 0:
            raise ValueError(f"lba must be >= 0, got {self.lba}")
        if self.nsectors < 1:
            raise ValueError(f"nsectors must be >= 1, got {self.nsectors}")

    @property
    def last_lba(self) -> int:
        return self.lba + self.nsectors - 1


@dataclasses.dataclass(frozen=True)
class ServiceBreakdown:
    """Where the time of one disk access went."""

    overhead: float
    seek: float
    rotational_latency: float
    transfer: float

    @property
    def total(self) -> float:
        return self.overhead + self.seek + self.rotational_latency + self.transfer


@dataclasses.dataclass
class DiskStats:
    """Cumulative per-disk counters."""

    reads: int = 0
    writes: int = 0
    sectors_read: int = 0
    sectors_written: int = 0
    busy_time: float = 0.0
    seek_time: float = 0.0
    rotational_latency: float = 0.0
    transfer_time: float = 0.0
    readahead_hits: int = 0

    @property
    def ios(self) -> int:
        return self.reads + self.writes


class MechanicalDisk:
    """A single spindle that services one :class:`DiskIO` at a time.

    Queueing lives in the back-end device driver (:mod:`repro.sched`); the
    disk itself refuses overlapping commands.
    """

    def __init__(
        self,
        sim: Simulator,
        geometry: DiskGeometry,
        seek_model: SeekModel,
        rpm: float,
        controller_overhead_s: float = 0.0005,
        head_switch_s: float = 0.001,
        spindle_phase: float = 0.0,
        immediate_report: bool = False,
        readahead_segments: int = 0,
        name: str = "disk",
    ) -> None:
        """``immediate_report`` and ``readahead_segments`` enable the
        drive-level caches [Ruemmler94] describes.  Both default off —
        the paper's configuration disables immediate reporting (writes
        are write-through to media) and relies on host caches instead of
        drive read-ahead (§4.1)."""
        if rpm <= 0:
            raise ValueError(f"rpm must be positive, got {rpm}")
        if not 0.0 <= spindle_phase < 1.0:
            raise ValueError(f"spindle_phase must be in [0, 1), got {spindle_phase}")
        if readahead_segments < 0:
            raise ValueError("readahead_segments must be >= 0")
        self.sim = sim
        self.geometry = geometry
        self.seek_model = seek_model
        self.rpm = rpm
        self.rotation_period = 60.0 / rpm
        self.controller_overhead_s = controller_overhead_s
        self.head_switch_s = head_switch_s
        self.spindle_phase = spindle_phase
        self.immediate_report = immediate_report
        self.readahead_segments = readahead_segments
        self.name = name
        self.stats = DiskStats()
        self._current_cylinder = 0
        self._current_head = 0
        self._busy_until = 0.0
        self._failed = False
        # Read-ahead cache: LRU list of (first_lba, last_lba) segments,
        # newest last.  A segment is the tail of a track the drive kept
        # streaming after a host read finished.
        self._segments: list[tuple[int, int]] = []

    # -- state -------------------------------------------------------------------

    @property
    def busy(self) -> bool:
        """True while a command occupies the mechanism."""
        return self.sim.now < self._busy_until

    @property
    def busy_until(self) -> float:
        """When the mechanism finishes its current command."""
        return self._busy_until

    @property
    def failed(self) -> bool:
        return self._failed

    @property
    def current_cylinder(self) -> int:
        return self._current_cylinder

    def fail(self) -> None:
        """Mark the disk failed: all subsequent accesses error."""
        self._failed = True

    def repair(self) -> None:
        """Return a failed disk to service (contents are NOT restored)."""
        self._failed = False

    # -- rotational position -------------------------------------------------------

    def rotational_fraction(self, at_time: float) -> float:
        """Fraction of a revolution completed at ``at_time`` (0 ≤ f < 1)."""
        return (at_time / self.rotation_period + self.spindle_phase) % 1.0

    # -- timing ---------------------------------------------------------------------

    def compute_service(self, io: DiskIO, start_time: float) -> ServiceBreakdown:
        """Compute the full service-time breakdown, without side effects."""
        segments = list(self.geometry.track_segments(io.lba, io.nsectors))
        first_addr = segments[0][0]
        seek = self.seek_model.seek_time(abs(first_addr.cylinder - self._current_cylinder))
        if seek == 0.0 and first_addr.head != self._current_head:
            seek = self.head_switch_s  # pure head switch, no arm motion
        clock = start_time + self.controller_overhead_s + seek

        rotational_latency = 0.0
        transfer = 0.0
        previous_cylinder = first_addr.cylinder
        for index, (addr, run) in enumerate(segments):
            sector_period = self.rotation_period / addr.sectors_per_track
            if index == 0:
                target_fraction = addr.sector / addr.sectors_per_track
                now_fraction = self.rotational_fraction(clock)
                wait = ((target_fraction - now_fraction) % 1.0) * self.rotation_period
                rotational_latency += wait
                clock += wait
            else:
                skew = (
                    self.geometry.cylinder_skew
                    if addr.cylinder != previous_cylinder
                    else self.geometry.track_skew
                )
                skew_time = skew * sector_period
                if self.head_switch_s <= skew_time:
                    switch_cost = skew_time
                else:
                    # Skew too small to hide the switch: we miss the first
                    # sector and pay a full extra revolution.
                    switch_cost = skew_time + self.rotation_period
                transfer += switch_cost
                clock += switch_cost
            run_time = run * sector_period
            transfer += run_time
            clock += run_time
            previous_cylinder = addr.cylinder
        return ServiceBreakdown(
            overhead=self.controller_overhead_s,
            seek=seek,
            rotational_latency=rotational_latency,
            transfer=transfer,
        )

    def execute(self, io: DiskIO) -> Event:
        """Service ``io`` now; returns an event firing at completion.

        The caller (a back-end driver) must not overlap commands.
        """
        if self._failed:
            failure = self.sim.event(name=f"{self.name}.failed_io")
            failure.fail(DiskFailedError(f"{self.name} has failed"))
            return failure
        if self.busy:
            raise RuntimeError(f"{self.name} is busy until t={self._busy_until:.6f}")

        if io.kind is IoKind.READ and self._readahead_hit(io):
            # Served from the drive's segment buffer: overhead only.
            self.stats.reads += 1
            self.stats.sectors_read += io.nsectors
            self.stats.readahead_hits += 1
            breakdown = ServiceBreakdown(
                overhead=self.controller_overhead_s, seek=0.0,
                rotational_latency=0.0, transfer=0.0,
            )
            done = self.sim.event(name="cached_read")
            self.sim.timeout(breakdown.total).add_callback(
                lambda _event: self._complete(done, breakdown)
            )
            return done

        breakdown = self.compute_service(io, self.sim.now)
        # Update mechanical state to the end of the access.
        last_addr, last_run = None, 0
        for last_addr, last_run in self.geometry.track_segments(io.lba, io.nsectors):
            pass
        assert last_addr is not None
        self._current_cylinder = last_addr.cylinder
        self._current_head = last_addr.head
        self._busy_until = self.sim.now + breakdown.total

        stats = self.stats
        if io.kind is IoKind.READ:
            stats.reads += 1
            stats.sectors_read += io.nsectors
        else:
            stats.writes += 1
            stats.sectors_written += io.nsectors
        stats.busy_time += breakdown.total
        stats.seek_time += breakdown.seek
        stats.rotational_latency += breakdown.rotational_latency
        stats.transfer_time += breakdown.transfer

        if io.kind is IoKind.READ:
            self._record_readahead(io)
        else:
            self._invalidate_segments(io)

        done = self.sim.event(name=io.kind.value)
        if io.kind is IoKind.WRITE and self.immediate_report:
            # Immediate reporting: the host sees completion as soon as
            # the data is in the drive buffer; the mechanism stays busy
            # until the media write really finishes.
            report_after = self.controller_overhead_s
        else:
            report_after = breakdown.total
        completion = self.sim.timeout(report_after)
        completion.add_callback(lambda _event: self._complete(done, breakdown))
        return done

    # -- drive-level caches ----------------------------------------------------------

    def _readahead_hit(self, io: DiskIO) -> bool:
        if not self.readahead_segments:
            return False
        for index, (first, last) in enumerate(self._segments):
            if first <= io.lba and io.last_lba <= last:
                # LRU refresh.
                self._segments.append(self._segments.pop(index))
                return True
        return False

    def _record_readahead(self, io: DiskIO) -> None:
        """After a media read the drive keeps streaming to the end of the
        track; remember that tail (plus the read itself) as a segment."""
        if not self.readahead_segments:
            return
        addr = self.geometry.lba_to_physical(io.last_lba)
        track_end = io.last_lba + (addr.sectors_per_track - 1 - addr.sector)
        self._segments.append((io.lba, track_end))
        while len(self._segments) > self.readahead_segments:
            self._segments.pop(0)

    def _invalidate_segments(self, io: DiskIO) -> None:
        """Writes invalidate overlapping read-ahead segments."""
        if not self._segments:
            return
        self._segments = [
            (first, last)
            for first, last in self._segments
            if last < io.lba or first > io.last_lba
        ]

    def _complete(self, done: Event, breakdown: ServiceBreakdown) -> None:
        if self._failed:
            done.fail(DiskFailedError(f"{self.name} failed mid-flight"))
        else:
            done.succeed(breakdown)

    # -- derived figures ----------------------------------------------------------

    def sustained_read_rate(self) -> float:
        """Bytes/second streaming from the media, averaged over zones."""
        total_bytes = 0
        total_time = 0.0
        for zone in self.geometry.zones:
            track_bytes = zone.sectors_per_track * self.geometry.sector_bytes
            tracks = zone.cylinders * self.geometry.heads
            total_bytes += track_bytes * tracks
            total_time += self.rotation_period * tracks
        return total_bytes / total_time

    def __repr__(self) -> str:
        return f"<MechanicalDisk {self.name!r} {self.geometry!r} @{self.rpm:g} rpm>"
