"""The mechanical disk: seek + rotation + transfer timing, one I/O at a time.

The model follows [Ruemmler94]: a fixed controller overhead per command, the
seek curve from :mod:`repro.disk.seek`, rotational latency computed from the
absolute rotational position (a pure function of simulated time, so equal
``spindle_phase`` values give the spin-synchronised arrays the paper
simulates), and per-track media transfer where head/cylinder switches along
a long access are hidden by track/cylinder skew.
"""

from __future__ import annotations

import dataclasses
import enum
import typing
from bisect import bisect_right as _bisect_right
from heapq import heappush as _heappush

from repro.disk.geometry import DiskGeometry
from repro.disk.seek import SeekModel
from repro.sim import Event, Simulator


class IoKind(enum.Enum):
    """Direction of a disk access."""

    READ = "read"
    WRITE = "write"


#: Seek tables keyed by (curve coefficients, cylinder count), shared by
#: every :class:`MechanicalDisk` built from equal parameters.
_SEEK_TABLE_CACHE: dict[tuple, list[float]] = {}


class DiskFailedError(Exception):
    """An I/O was issued to (or in flight on) a failed disk."""


class LatentSectorError(Exception):
    """A read touched a latent (media-defect) sector.

    Unlike a whole-disk failure the drive stays in service: the read
    fails after a full mechanical attempt, and a *write* covering the
    sector heals it (the drive remaps it to a spare), which is how the
    array's scrub/rebuild machinery repairs latent errors it discovers.
    """

    def __init__(self, disk_name: str, lbas: list[int]) -> None:
        super().__init__(f"{disk_name}: unreadable sector(s) {lbas}")
        self.disk_name = disk_name
        self.lbas = lbas


class DiskIO:
    """One physical disk access: ``nsectors`` starting at ``lba``.

    A plain ``__slots__`` class rather than a frozen dataclass: the
    controller creates one per physical command (millions per replay) and
    the dataclass ``__init__``/``__post_init__`` machinery was measurable.
    Value semantics (eq/hash/repr) are preserved.
    """

    __slots__ = ("kind", "lba", "nsectors", "tag")

    def __init__(self, kind: IoKind, lba: int, nsectors: int, tag: typing.Any = None) -> None:
        if lba < 0:
            raise ValueError(f"lba must be >= 0, got {lba}")
        if nsectors < 1:
            raise ValueError(f"nsectors must be >= 1, got {nsectors}")
        self.kind = kind
        self.lba = lba
        self.nsectors = nsectors
        self.tag = tag

    @property
    def last_lba(self) -> int:
        return self.lba + self.nsectors - 1

    def __repr__(self) -> str:
        return (
            f"DiskIO(kind={self.kind!r}, lba={self.lba!r}, "
            f"nsectors={self.nsectors!r}, tag={self.tag!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiskIO):
            return NotImplemented
        return (
            self.kind is other.kind
            and self.lba == other.lba
            and self.nsectors == other.nsectors
            and self.tag == other.tag
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.lba, self.nsectors, self.tag))


class ServiceBreakdown:
    """Where the time of one disk access went."""

    __slots__ = ("overhead", "seek", "rotational_latency", "transfer")

    def __init__(
        self, overhead: float, seek: float, rotational_latency: float, transfer: float
    ) -> None:
        self.overhead = overhead
        self.seek = seek
        self.rotational_latency = rotational_latency
        self.transfer = transfer

    @property
    def total(self) -> float:
        return self.overhead + self.seek + self.rotational_latency + self.transfer

    def __repr__(self) -> str:
        return (
            f"ServiceBreakdown(overhead={self.overhead!r}, seek={self.seek!r}, "
            f"rotational_latency={self.rotational_latency!r}, transfer={self.transfer!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ServiceBreakdown):
            return NotImplemented
        return (
            self.overhead == other.overhead
            and self.seek == other.seek
            and self.rotational_latency == other.rotational_latency
            and self.transfer == other.transfer
        )

    def __hash__(self) -> int:
        return hash((self.overhead, self.seek, self.rotational_latency, self.transfer))


@dataclasses.dataclass
class DiskStats:
    """Cumulative per-disk counters."""

    reads: int = 0
    writes: int = 0
    sectors_read: int = 0
    sectors_written: int = 0
    busy_time: float = 0.0
    seek_time: float = 0.0
    rotational_latency: float = 0.0
    transfer_time: float = 0.0
    readahead_hits: int = 0

    @property
    def ios(self) -> int:
        return self.reads + self.writes


class MechanicalDisk:
    """A single spindle that services one :class:`DiskIO` at a time.

    Queueing lives in the back-end device driver (:mod:`repro.sched`); the
    disk itself refuses overlapping commands.
    """

    def __init__(
        self,
        sim: Simulator,
        geometry: DiskGeometry,
        seek_model: SeekModel,
        rpm: float,
        controller_overhead_s: float = 0.0005,
        head_switch_s: float = 0.001,
        spindle_phase: float = 0.0,
        immediate_report: bool = False,
        readahead_segments: int = 0,
        name: str = "disk",
    ) -> None:
        """``immediate_report`` and ``readahead_segments`` enable the
        drive-level caches [Ruemmler94] describes.  Both default off —
        the paper's configuration disables immediate reporting (writes
        are write-through to media) and relies on host caches instead of
        drive read-ahead (§4.1)."""
        if rpm <= 0:
            raise ValueError(f"rpm must be positive, got {rpm}")
        if not 0.0 <= spindle_phase < 1.0:
            raise ValueError(f"spindle_phase must be in [0, 1), got {spindle_phase}")
        if readahead_segments < 0:
            raise ValueError("readahead_segments must be >= 0")
        self.sim = sim
        self.geometry = geometry
        self.seek_model = seek_model
        self.rpm = rpm
        self.rotation_period = 60.0 / rpm
        self.controller_overhead_s = controller_overhead_s
        self.head_switch_s = head_switch_s
        self.spindle_phase = spindle_phase
        self.immediate_report = immediate_report
        self.readahead_segments = readahead_segments
        self.name = name
        # Seek time by cylinder distance, tabulated once: the seek curve is
        # a pure function of distance and the hot path pays a sqrt plus
        # branchy float math per I/O without it.  ~4k floats per geometry.
        # The table is shared across instances with identical curve
        # parameters (arrays build dozens of identical drives; tabulating
        # per drive was measurable in replay setup).  Subclassed seek
        # models fall back to a private table — their coefficients do not
        # determine their behaviour.
        if type(seek_model) is SeekModel:
            key = (
                seek_model.a,
                seek_model.b,
                seek_model.c,
                seek_model.e,
                seek_model.crossover,
                geometry.cylinders,
            )
            table = _SEEK_TABLE_CACHE.get(key)
            if table is None:
                table = [seek_model.seek_time(d) for d in range(geometry.cylinders)]
                _SEEK_TABLE_CACHE[key] = table
            self._seek_table = table
        else:
            self._seek_table = [seek_model.seek_time(d) for d in range(geometry.cylinders)]
        self.stats = DiskStats()
        self._current_cylinder = 0
        self._current_head = 0
        self._busy_until = 0.0
        self._failed = False
        #: The queued completion event of the command in flight (if any);
        #: ``fail()`` converts it so waiters see the failure at the
        #: scheduled completion time.
        self._inflight: Event | None = None
        # Read-ahead cache: LRU list of (first_lba, last_lba) segments,
        # newest last.  A segment is the tail of a track the drive kept
        # streaming after a host read finished.
        self._segments: list[tuple[int, int]] = []
        #: Latent (unreadable) sectors; empty on the fault-free path so
        #: the per-I/O check is a single falsy test.
        self._latent_errors: set[int] = set()

    # -- state -------------------------------------------------------------------

    @property
    def busy(self) -> bool:
        """True while a command occupies the mechanism."""
        return self.sim.now < self._busy_until

    @property
    def busy_until(self) -> float:
        """When the mechanism finishes its current command."""
        return self._busy_until

    @property
    def failed(self) -> bool:
        return self._failed

    @property
    def current_cylinder(self) -> int:
        return self._current_cylinder

    def fail(self) -> None:
        """Mark the disk failed: all subsequent accesses error.

        A command in flight fails too: its (already queued) completion
        event is converted to a failure, which waiters observe at the
        originally scheduled completion time — exactly when the old
        completion-time status check would have reported it.
        """
        self._failed = True
        inflight = self._inflight
        if inflight is not None:
            self._inflight = None
            if inflight.callbacks is not None:  # not yet dispatched
                inflight._exception = DiskFailedError(f"{self.name} failed mid-flight")

    def repair(self) -> None:
        """Return a failed disk to service (contents are NOT restored)."""
        self._failed = False

    # -- latent sector errors --------------------------------------------------------

    def inject_latent_error(self, lba: int) -> None:
        """Make sector ``lba`` unreadable until something writes over it."""
        if not 0 <= lba < self.geometry.total_sectors:
            raise ValueError(f"lba {lba} outside {self.name} ({self.geometry.total_sectors} sectors)")
        self._latent_errors.add(lba)

    @property
    def latent_error_count(self) -> int:
        return len(self._latent_errors)

    @property
    def latent_error_lbas(self) -> list[int]:
        """The currently-unreadable sectors, ascending."""
        return sorted(self._latent_errors)

    def latent_errors_within(self, lba: int, nsectors: int) -> list[int]:
        """Latent sectors inside [lba, lba + nsectors), ascending."""
        if not self._latent_errors:
            return []
        last = lba + nsectors - 1
        return sorted(bad for bad in self._latent_errors if lba <= bad <= last)

    # -- rotational position -------------------------------------------------------

    def rotational_fraction(self, at_time: float) -> float:
        """Fraction of a revolution completed at ``at_time`` (0 ≤ f < 1)."""
        return (at_time / self.rotation_period + self.spindle_phase) % 1.0

    # -- timing ---------------------------------------------------------------------

    def _service_parts(
        self, lba: int, nsectors: int, start_time: float
    ) -> tuple[float, float, float, int, int]:
        """One flat pass over the access: (seek, rotational latency,
        transfer, last cylinder, last head), with no side effects.

        This is :meth:`compute_service` with the per-segment
        :class:`~repro.disk.geometry.PhysicalAddress` objects and repeated
        attribute loads stripped out; the floating-point operations and
        their order are *identical*, so results are bit-equal — the golden
        replay gate depends on that.
        """
        geometry = self.geometry
        if 0 <= lba and 1 <= nsectors and lba + nsectors <= geometry.total_sectors:
            # Decode the start position inline; when the whole access fits
            # in one track run (the common case for trace-replay I/O sizes)
            # skip iter_segments' per-segment list/tuple construction.
            zone_first_lba = geometry._zone_first_lba
            index = _bisect_right(zone_first_lba, lba) - 1
            spt = geometry.zones[index].sectors_per_track
            offset = lba - zone_first_lba[index]
            sectors_per_cylinder = geometry.heads * spt
            cylinder = geometry._zone_first_cyl[index] + offset // sectors_per_cylinder
            within = offset % sectors_per_cylinder
            head = within // spt
            sector = within % spt
            if spt - sector >= nsectors:
                distance = cylinder - self._current_cylinder
                if distance < 0:
                    distance = -distance
                seek = self._seek_table[distance]
                if seek == 0.0 and head != self._current_head:
                    seek = self.head_switch_s
                rotation_period = self.rotation_period
                clock = start_time + self.controller_overhead_s + seek
                sector_period = rotation_period / spt
                target_fraction = sector / spt
                now_fraction = (clock / rotation_period + self.spindle_phase) % 1.0
                rotational_latency = ((target_fraction - now_fraction) % 1.0) * rotation_period
                return seek, rotational_latency, nsectors * sector_period, cylinder, head
        segments = geometry.iter_segments(lba, nsectors)
        cylinder, head, sector, spt, run = segments[0]
        distance = cylinder - self._current_cylinder
        if distance < 0:
            distance = -distance
        seek = self._seek_table[distance]
        if seek == 0.0 and head != self._current_head:
            seek = self.head_switch_s  # pure head switch, no arm motion
        rotation_period = self.rotation_period
        head_switch_s = self.head_switch_s
        clock = start_time + self.controller_overhead_s + seek

        # First segment: rotational wait to the target sector, then media.
        sector_period = rotation_period / spt
        target_fraction = sector / spt
        now_fraction = (clock / rotation_period + self.spindle_phase) % 1.0
        rotational_latency = ((target_fraction - now_fraction) % 1.0) * rotation_period
        clock += rotational_latency
        transfer = 0.0
        run_time = run * sector_period
        transfer += run_time
        clock += run_time

        if len(segments) > 1:
            cylinder_skew = self.geometry.cylinder_skew
            track_skew = self.geometry.track_skew
            previous_cylinder = cylinder
            for index in range(1, len(segments)):
                cylinder, head, sector, spt, run = segments[index]
                sector_period = rotation_period / spt
                skew = cylinder_skew if cylinder != previous_cylinder else track_skew
                skew_time = skew * sector_period
                if head_switch_s <= skew_time:
                    switch_cost = skew_time
                else:
                    # Skew too small to hide the switch: we miss the first
                    # sector and pay a full extra revolution.
                    switch_cost = skew_time + rotation_period
                transfer += switch_cost
                clock += switch_cost
                run_time = run * sector_period
                transfer += run_time
                clock += run_time
                previous_cylinder = cylinder
        return seek, rotational_latency, transfer, cylinder, head

    def compute_service(self, io: DiskIO, start_time: float) -> ServiceBreakdown:
        """Compute the full service-time breakdown, without side effects."""
        seek, rotational_latency, transfer, _cyl, _head = self._service_parts(
            io.lba, io.nsectors, start_time
        )
        return ServiceBreakdown(
            overhead=self.controller_overhead_s,
            seek=seek,
            rotational_latency=rotational_latency,
            transfer=transfer,
        )

    def execute(self, io: DiskIO, into: Event | None = None) -> Event:
        """Service ``io`` now; returns an event firing at completion.

        The caller (a back-end driver) must not overlap commands.

        ``into`` lets the caller supply the completion event (the driver
        passes its own per-command event, eliminating a relay event and a
        dispatch per disk I/O).  The supplied event is triggered from the
        same timeout callback the relay used to be, so same-instant
        dispatch order is unchanged.
        """
        if self._failed:
            failure = into if into is not None else self.sim.event(name=f"{self.name}.failed_io")
            failure.fail(DiskFailedError(f"{self.name} has failed"))
            return failure
        now = self.sim._now
        if now < self._busy_until:
            raise RuntimeError(f"{self.name} is busy until t={self._busy_until:.6f}")

        bad_lbas: list[int] | None = None
        if self._latent_errors:
            if io.kind is IoKind.WRITE:
                # Writing over a latent sector heals it (drive remap).
                for lba in self.latent_errors_within(io.lba, io.nsectors):
                    self._latent_errors.discard(lba)
            else:
                bad_lbas = self.latent_errors_within(io.lba, io.nsectors) or None

        # `self._segments and` elides the _readahead_hit call when no
        # segments are buffered (always, with read-ahead disabled): a hit
        # needs a live segment regardless of the configured segment count.
        if io.kind is IoKind.READ and bad_lbas is None and self._segments and self._readahead_hit(io):
            # Served from the drive's segment buffer: overhead only.
            self.stats.reads += 1
            self.stats.sectors_read += io.nsectors
            self.stats.readahead_hits += 1
            breakdown = ServiceBreakdown(
                overhead=self.controller_overhead_s, seek=0.0,
                rotational_latency=0.0, transfer=0.0,
            )
            done = into if into is not None else self.sim.event(name="cached_read")
            return self._schedule_completion(done, breakdown, breakdown.total)

        seek, rotational_latency, transfer, last_cylinder, last_head = self._service_parts(
            io.lba, io.nsectors, now
        )
        overhead = self.controller_overhead_s
        # Same addition order as ServiceBreakdown.total.
        total = overhead + seek + rotational_latency + transfer
        breakdown = ServiceBreakdown(
            overhead=overhead,
            seek=seek,
            rotational_latency=rotational_latency,
            transfer=transfer,
        )
        # Update mechanical state to the end of the access.
        self._current_cylinder = last_cylinder
        self._current_head = last_head
        self._busy_until = now + total

        stats = self.stats
        stats.busy_time += total
        stats.seek_time += seek
        stats.rotational_latency += rotational_latency
        stats.transfer_time += transfer
        if io.kind is IoKind.READ:
            stats.reads += 1
            stats.sectors_read += io.nsectors
            if bad_lbas is None and self.readahead_segments:
                self._record_readahead(io)
            report_after = total
        else:
            stats.writes += 1
            stats.sectors_written += io.nsectors
            if self._segments:
                self._invalidate_segments(io)
            # Immediate reporting: the host sees completion as soon as
            # the data is in the drive buffer; the mechanism stays busy
            # until the media write really finishes.
            report_after = overhead if self.immediate_report else total

        done = into if into is not None else self.sim.event(name=io.kind.value)
        done = self._schedule_completion(done, breakdown, report_after)
        if bad_lbas is not None:
            # The mechanism made the full attempt (timing and stats above
            # are real); the completion reports the media error instead.
            done._exception = LatentSectorError(self.name, bad_lbas)
        return done

    def _schedule_completion(self, done: Event, breakdown: ServiceBreakdown, after: float) -> Event:
        """Queue ``done`` to fire with ``breakdown`` in ``after`` seconds.

        The event is triggered and pushed directly — the relay timeout
        whose callback used to trigger it added an extra event + dispatch
        per disk I/O.  Waiters still observe completion (or a mid-flight
        failure, see :meth:`fail`) at the same simulated instant.
        """
        done._value = breakdown
        done._scheduled = True
        sim = self.sim
        sim._sequence += 1
        when = sim._now + after
        if when > sim._now:
            _heappush(sim._queue, (when, sim._sequence, done))
        else:
            sim._bucket.append(done)
        self._inflight = done
        return done

    # -- drive-level caches ----------------------------------------------------------

    def _readahead_hit(self, io: DiskIO) -> bool:
        if not self.readahead_segments:
            return False
        for index, (first, last) in enumerate(self._segments):
            if first <= io.lba and io.last_lba <= last:
                # LRU refresh.
                self._segments.append(self._segments.pop(index))
                return True
        return False

    def _record_readahead(self, io: DiskIO) -> None:
        """After a media read the drive keeps streaming to the end of the
        track; remember that tail (plus the read itself) as a segment."""
        if not self.readahead_segments:
            return
        # Integer-only decode of the last LBA's in-track sector; avoids
        # lba_to_physical's PhysicalAddress construction per media read.
        geometry = self.geometry
        zone_first_lba = geometry._zone_first_lba
        last_lba = io.lba + io.nsectors - 1
        index = _bisect_right(zone_first_lba, last_lba) - 1
        spt = geometry.zones[index].sectors_per_track
        sector = (last_lba - zone_first_lba[index]) % (geometry.heads * spt) % spt
        track_end = last_lba + (spt - 1 - sector)
        self._segments.append((io.lba, track_end))
        while len(self._segments) > self.readahead_segments:
            self._segments.pop(0)

    def _invalidate_segments(self, io: DiskIO) -> None:
        """Writes invalidate overlapping read-ahead segments."""
        if not self._segments:
            return
        self._segments = [
            (first, last)
            for first, last in self._segments
            if last < io.lba or first > io.last_lba
        ]

    # -- derived figures ----------------------------------------------------------

    def sustained_read_rate(self) -> float:
        """Bytes/second streaming from the media, averaged over zones."""
        total_bytes = 0
        total_time = 0.0
        for zone in self.geometry.zones:
            track_bytes = zone.sectors_per_track * self.geometry.sector_bytes
            tracks = zone.cylinders * self.geometry.heads
            total_bytes += track_bytes * tracks
            total_time += self.rotation_period * tracks
        return total_bytes / total_time

    def __repr__(self) -> str:
        return f"<MechanicalDisk {self.name!r} {self.geometry!r} @{self.rpm:g} rpm>"
