"""Concrete disk instances.

:func:`hp_c3325` approximates the HP C3325 3.5" 2 GB 5400 RPM SCSI-2 drive
the paper's arrays use [HPC3324].  The full datasheet is not reproducible
here, so the parameters below are chosen to match every figure the paper
itself relies on:

* 5400 RPM (11.11 ms revolution),
* ~2 GB formatted capacity,
* ~5 MB/s sustained media rate (the paper: rebuilding a 2 GB disk "about
  ten minutes" at "a sustained rate of 5MB/s"),
* early-90s HP seek profile (≈2 ms single-cylinder, ≈9.5 ms average).

:func:`toy_disk` is a miniature geometry for fast functional tests.
"""

from __future__ import annotations

from repro.disk.disk import MechanicalDisk
from repro.disk.geometry import DiskGeometry, Zone
from repro.disk.seek import SeekModel
from repro.sim import Simulator

# 8 zones x 502 cylinders x 9 heads; mean 108 sectors/track.
_C3325_ZONE_SPT = (144, 132, 120, 112, 104, 96, 84, 72)
_C3325_CYLS_PER_ZONE = 502
_C3325_HEADS = 9
_C3325_RPM = 5400.0
_C3325_SINGLE_SEEK_S = 0.0022
_C3325_AVERAGE_SEEK_S = 0.0095
_C3325_FULL_SEEK_S = 0.0180
_C3325_HEAD_SWITCH_S = 0.0008
_C3325_OVERHEAD_S = 0.0007


def c3325_geometry() -> DiskGeometry:
    """The zoned geometry of the modelled HP C3325 (≈1.999 GB)."""
    zones = [Zone(cylinders=_C3325_CYLS_PER_ZONE, sectors_per_track=spt) for spt in _C3325_ZONE_SPT]
    return DiskGeometry(
        heads=_C3325_HEADS,
        zones=zones,
        sector_bytes=512,
        track_skew=12,
        cylinder_skew=20,
    )


def c3325_seek_model() -> SeekModel:
    """Seek curve fitted to the C3325 anchor times."""
    geometry = c3325_geometry()
    return SeekModel.fit(
        single_cylinder_s=_C3325_SINGLE_SEEK_S,
        average_s=_C3325_AVERAGE_SEEK_S,
        full_stroke_s=_C3325_FULL_SEEK_S,
        cylinders=geometry.cylinders,
    )


def hp_c3325(sim: Simulator, name: str = "c3325", spindle_phase: float = 0.0) -> MechanicalDisk:
    """Build one HP C3325-like drive attached to ``sim``.

    All drives built with the same ``spindle_phase`` are spin-synchronised,
    matching the paper's §4.1 simplification.
    """
    return MechanicalDisk(
        sim=sim,
        geometry=c3325_geometry(),
        seek_model=c3325_seek_model(),
        rpm=_C3325_RPM,
        controller_overhead_s=_C3325_OVERHEAD_S,
        head_switch_s=_C3325_HEAD_SWITCH_S,
        spindle_phase=spindle_phase,
        name=name,
    )


def toy_disk(sim: Simulator, name: str = "toy", cylinders: int = 64, heads: int = 2, spt: int = 32) -> MechanicalDisk:
    """A small, fast disk for unit tests (single zone, gentle seek curve)."""
    geometry = DiskGeometry(
        heads=heads,
        zones=[Zone(cylinders=cylinders, sectors_per_track=spt)],
        sector_bytes=512,
        track_skew=4,
        cylinder_skew=6,
    )
    seek = SeekModel.fit(
        single_cylinder_s=0.001,
        average_s=0.005,
        full_stroke_s=0.010,
        cylinders=cylinders,
    )
    return MechanicalDisk(
        sim=sim,
        geometry=geometry,
        seek_model=seek,
        rpm=6000.0,
        controller_overhead_s=0.0002,
        head_switch_s=0.0003,
        spindle_phase=0.0,
        name=name,
    )
