"""Mechanical disk models.

This package replaces the calibrated Pantheon disk models of
[Ruemmler94] ("An introduction to disk drive modeling").  A
:class:`~repro.disk.disk.MechanicalDisk` combines:

* :class:`~repro.disk.geometry.DiskGeometry` — zoned cylinders/heads/sectors
  and LBA ↔ physical mapping,
* :class:`~repro.disk.seek.SeekModel` — the a+b·√d short-seek / linear
  long-seek curve,
* rotational position as a pure function of simulated time (so arrays built
  from disks with equal phase are *spin-synchronised*, as in the paper),
* per-track transfer with head/cylinder switches hidden by track skew,
* a fixed per-command controller overhead.

The :func:`~repro.disk.models.hp_c3325` factory instantiates the HP C3325
2 GB 5400 RPM drive the paper's arrays are built from.
"""

from repro.disk.disk import (
    DiskFailedError,
    DiskIO,
    DiskStats,
    IoKind,
    LatentSectorError,
    MechanicalDisk,
    ServiceBreakdown,
)
from repro.disk.geometry import DiskGeometry, Zone
from repro.disk.models import c3325_geometry, c3325_seek_model, hp_c3325, toy_disk
from repro.disk.seek import SeekModel

__all__ = [
    "DiskFailedError",
    "DiskGeometry",
    "DiskIO",
    "DiskStats",
    "IoKind",
    "LatentSectorError",
    "MechanicalDisk",
    "SeekModel",
    "ServiceBreakdown",
    "Zone",
    "c3325_geometry",
    "c3325_seek_model",
    "hp_c3325",
    "toy_disk",
]
