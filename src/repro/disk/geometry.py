"""Zoned disk geometry and logical-to-physical address mapping.

Modern (well, 1995-modern) drives record more sectors on outer tracks than
inner ones.  Geometry is described as a list of :class:`Zone` bands, each a
run of cylinders sharing a sectors-per-track count.  Logical block addresses
(LBAs) map to (cylinder, head, sector) in the conventional order: all
sectors of a track, all tracks (heads) of a cylinder, all cylinders of a
zone, zones outermost-first.
"""

from __future__ import annotations

import bisect
import dataclasses


@dataclasses.dataclass(frozen=True)
class Zone:
    """A band of cylinders sharing one sectors-per-track count."""

    cylinders: int
    sectors_per_track: int

    def __post_init__(self) -> None:
        if self.cylinders < 1:
            raise ValueError(f"zone must span >= 1 cylinder, got {self.cylinders}")
        if self.sectors_per_track < 1:
            raise ValueError(f"zone needs >= 1 sector/track, got {self.sectors_per_track}")


@dataclasses.dataclass(frozen=True)
class PhysicalAddress:
    """A decoded LBA: which cylinder, head and sector holds the block."""

    cylinder: int
    head: int
    sector: int
    sectors_per_track: int


class DiskGeometry:
    """Immutable zoned geometry with LBA ↔ physical mapping.

    Parameters
    ----------
    heads:
        Number of recording surfaces (tracks per cylinder).
    zones:
        Outermost-first zone list.
    sector_bytes:
        Bytes per sector (512 throughout the paper era).
    track_skew / cylinder_skew:
        Sector offsets applied between consecutive tracks/cylinders so a
        sequential transfer keeps streaming after a head or cylinder switch.
        Expressed in sectors of the local zone.
    """

    def __init__(
        self,
        heads: int,
        zones: list[Zone] | tuple[Zone, ...],
        sector_bytes: int = 512,
        track_skew: int = 8,
        cylinder_skew: int = 16,
    ) -> None:
        if heads < 1:
            raise ValueError(f"need >= 1 head, got {heads}")
        if not zones:
            raise ValueError("need >= 1 zone")
        if sector_bytes < 1:
            raise ValueError(f"sector_bytes must be positive, got {sector_bytes}")
        if track_skew < 0 or cylinder_skew < 0:
            raise ValueError("skews must be >= 0")
        self.heads = heads
        self.zones = tuple(zones)
        self.sector_bytes = sector_bytes
        self.track_skew = track_skew
        self.cylinder_skew = cylinder_skew

        # Cumulative cylinder / LBA starts per zone, for O(log z) lookup.
        self._zone_first_cyl: list[int] = []
        self._zone_first_lba: list[int] = []
        cylinder = 0
        lba = 0
        for zone in self.zones:
            self._zone_first_cyl.append(cylinder)
            self._zone_first_lba.append(lba)
            cylinder += zone.cylinders
            lba += zone.cylinders * heads * zone.sectors_per_track
        self.cylinders = cylinder
        self.total_sectors = lba

    # -- capacity -------------------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        """Formatted capacity in bytes."""
        return self.total_sectors * self.sector_bytes

    # -- zone lookup -----------------------------------------------------------

    def zone_of_cylinder(self, cylinder: int) -> Zone:
        """The zone containing ``cylinder``."""
        if not 0 <= cylinder < self.cylinders:
            raise ValueError(f"cylinder {cylinder} out of range [0, {self.cylinders})")
        index = bisect.bisect_right(self._zone_first_cyl, cylinder) - 1
        return self.zones[index]

    def sectors_per_track_at(self, cylinder: int) -> int:
        """Sectors per track on ``cylinder``."""
        return self.zone_of_cylinder(cylinder).sectors_per_track

    # -- address mapping ---------------------------------------------------------

    def lba_to_physical(self, lba: int) -> PhysicalAddress:
        """Decode an LBA into cylinder/head/sector."""
        if not 0 <= lba < self.total_sectors:
            raise ValueError(f"lba {lba} out of range [0, {self.total_sectors})")
        index = bisect.bisect_right(self._zone_first_lba, lba) - 1
        zone = self.zones[index]
        offset = lba - self._zone_first_lba[index]
        sectors_per_cylinder = self.heads * zone.sectors_per_track
        cylinder = self._zone_first_cyl[index] + offset // sectors_per_cylinder
        within = offset % sectors_per_cylinder
        head = within // zone.sectors_per_track
        sector = within % zone.sectors_per_track
        return PhysicalAddress(cylinder, head, sector, zone.sectors_per_track)

    def physical_to_lba(self, cylinder: int, head: int, sector: int) -> int:
        """Encode cylinder/head/sector back into an LBA."""
        if not 0 <= head < self.heads:
            raise ValueError(f"head {head} out of range [0, {self.heads})")
        index = bisect.bisect_right(self._zone_first_cyl, cylinder) - 1
        if index < 0 or cylinder >= self.cylinders:
            raise ValueError(f"cylinder {cylinder} out of range [0, {self.cylinders})")
        zone = self.zones[index]
        if not 0 <= sector < zone.sectors_per_track:
            raise ValueError(f"sector {sector} out of range for zone with {zone.sectors_per_track} spt")
        offset = (cylinder - self._zone_first_cyl[index]) * self.heads * zone.sectors_per_track
        return self._zone_first_lba[index] + offset + head * zone.sectors_per_track + sector

    def cylinder_of(self, lba: int) -> int:
        """Just the cylinder number of ``lba`` (seek-distance helper)."""
        return self.lba_to_physical(lba).cylinder

    # -- track iteration ------------------------------------------------------------

    def iter_segments(self, lba: int, nsectors: int) -> list[tuple[int, int, int, int, int]]:
        """Split ``[lba, lba + nsectors)`` into flat per-track segments.

        Returns ``(cylinder, head, sector, sectors_per_track, run)`` tuples
        in order.  This is the allocation-lean core of
        :meth:`track_segments`: one zone lookup at entry, then the position
        is advanced track by track arithmetically instead of re-decoding
        every segment's LBA through :meth:`lba_to_physical`.  The
        service-time model calls this once per disk I/O, which made the
        repeated bisect + :class:`PhysicalAddress` construction one of the
        largest line items in whole-trace profiles.
        """
        if nsectors < 1:
            raise ValueError(f"nsectors must be >= 1, got {nsectors}")
        if lba < 0 or lba + nsectors > self.total_sectors:
            raise ValueError("access extends past end of disk")
        zone_first_lba = self._zone_first_lba
        index = bisect.bisect_right(zone_first_lba, lba) - 1
        zone = self.zones[index]
        spt = zone.sectors_per_track
        heads = self.heads
        offset = lba - zone_first_lba[index]
        sectors_per_cylinder = heads * spt
        cylinder = self._zone_first_cyl[index] + offset // sectors_per_cylinder
        within = offset % sectors_per_cylinder
        head = within // spt
        sector = within % spt
        zone_end_cyl = self._zone_first_cyl[index] + zone.cylinders
        remaining = nsectors
        segments: list[tuple[int, int, int, int, int]] = []
        append = segments.append
        while True:
            run = spt - sector
            if run > remaining:
                run = remaining
            append((cylinder, head, sector, spt, run))
            remaining -= run
            if not remaining:
                return segments
            sector = 0
            head += 1
            if head == heads:
                head = 0
                cylinder += 1
                if cylinder == zone_end_cyl:
                    index += 1
                    zone = self.zones[index]
                    spt = zone.sectors_per_track
                    zone_end_cyl += zone.cylinders

    def track_segments(self, lba: int, nsectors: int):
        """Split ``[lba, lba + nsectors)`` into per-track runs.

        Yields ``(physical_address_of_first_sector, run_length)`` tuples in
        order, so transfer-time computation can account for each head or
        cylinder switch along a long sequential access.
        """
        for cylinder, head, sector, spt, run in self.iter_segments(lba, nsectors):
            yield PhysicalAddress(cylinder, head, sector, spt), run

    def __repr__(self) -> str:
        return (
            f"<DiskGeometry {self.cylinders} cyls x {self.heads} heads, "
            f"{len(self.zones)} zones, {self.capacity_bytes / 2**30:.2f} GiB>"
        )
