"""Seek-time model.

[Ruemmler94] models seek time as a+b·√d for short seeks (the arm is still
accelerating) and c+e·d for long ones (the arm coasts at full speed), with
the two pieces meeting at a crossover distance.  :meth:`SeekModel.fit`
derives the coefficients from the three numbers a datasheet actually quotes:
single-cylinder, average (≈ one-third stroke), and full-stroke seek times.
"""

from __future__ import annotations

import math


class SeekModel:
    """Piecewise √/linear seek-time curve.

    ``seek_time(d)`` is 0 for d == 0, ``a + b*sqrt(d)`` for
    ``0 < d < crossover`` and ``c + e*d`` beyond.
    """

    def __init__(self, a: float, b: float, c: float, e: float, crossover: int) -> None:
        if crossover < 1:
            raise ValueError(f"crossover must be >= 1, got {crossover}")
        self.a = a
        self.b = b
        self.c = c
        self.e = e
        self.crossover = crossover

    def seek_time(self, distance: int) -> float:
        """Seconds to move the arm ``distance`` cylinders."""
        if distance < 0:
            raise ValueError(f"distance must be >= 0, got {distance}")
        if distance == 0:
            return 0.0
        if distance < self.crossover:
            return self.a + self.b * math.sqrt(distance)
        return self.c + self.e * distance

    @classmethod
    def fit(
        cls,
        single_cylinder_s: float,
        average_s: float,
        full_stroke_s: float,
        cylinders: int,
        crossover_fraction: float = 0.25,
    ) -> "SeekModel":
        """Fit the curve to datasheet anchor points.

        The √ branch passes through (1, single) and (crossover, t_x); the
        linear branch through (crossover, t_x) and (max_distance, full).
        t_x is chosen so that the mean seek over the uniform-random-pair
        distance distribution matches ``average_s``.  A closed-form fit of
        that integral is messy, so we use the standard approximation that
        the average seek occurs at one-third of the stroke, pinning the
        curve at (cylinders/3, average_s) and interpolating the crossover
        value from the two branches' meeting point.
        """
        if not single_cylinder_s < average_s < full_stroke_s:
            raise ValueError(
                "expected single < average < full stroke, got "
                f"{single_cylinder_s}, {average_s}, {full_stroke_s}"
            )
        if cylinders < 16:
            raise ValueError(f"need a realistic cylinder count, got {cylinders}")
        max_distance = cylinders - 1
        third = max_distance / 3.0
        # √ branch through (1, single) and (third, average):
        b = (average_s - single_cylinder_s) / (math.sqrt(third) - 1.0)
        a = single_cylinder_s - b
        # linear branch through (third, average) and (max, full):
        e = (full_stroke_s - average_s) / (max_distance - third)
        c = full_stroke_s - e * max_distance
        # Both branches are anchored at (third, average), and because √ is
        # concave they meet exactly once more below it.  Switch at that
        # lower meeting point: the √ branch is the lower (faster) one only
        # up to there, so the piecewise curve stays continuous and
        # monotone.  A fixed-fraction switch point would put a step into
        # the curve; the fraction survives only as the fallback for
        # degenerate fits whose branches never cross below `third`.
        crossover = max(2, min(int(max_distance * crossover_fraction), int(third)))
        for d in range(2, int(third) + 1):
            if a + b * math.sqrt(d) >= c + e * d:
                crossover = d
                break
        return cls(a=a, b=b, c=c, e=e, crossover=crossover)

    def mean_seek_time(self, cylinders: int, samples: int = 2048) -> float:
        """Numerically average seek time over uniform random start/end pairs.

        For two independent uniform cylinder positions the seek-distance
        density is f(d) = 2(1 - d/C)/C; we integrate against it.
        """
        max_distance = cylinders - 1
        total = 0.0
        weight = 0.0
        for i in range(1, samples + 1):
            d = i * max_distance / samples
            w = 2.0 * (1.0 - d / max_distance) / max_distance
            total += self.seek_time(int(d)) * w
            weight += w
        return total / weight

    def __repr__(self) -> str:
        return (
            f"<SeekModel sqrt: {self.a * 1e3:.2f}+{self.b * 1e3:.3f}sqrt(d) ms, "
            f"linear: {self.c * 1e3:.2f}+{self.e * 1e6:.2f}e-3*d ms, x={self.crossover}>"
        )
