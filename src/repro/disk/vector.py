"""Vectorised disk-service timing for runs of queued FCFS commands.

When the back-end driver finds several commands queued at once (a drain
run), their service times are a pure function of the disk state at the
start of the run: FCFS issues them back to back, each starting at the
previous completion instant.  This module precomputes the whole run —
the per-command *independent* quantities (zone decode, seek-distance
lookup, rotational target fraction, media transfer) as numpy array ops,
and the clock-coupled rotational-latency chain as a tight scalar loop
whose floating-point operations replicate
:meth:`~repro.disk.disk.MechanicalDisk._service_parts` *in the same
order*, so every returned float is bit-identical to what sequential
scalar execution would produce.  The golden replay gate depends on that.

Commands that do not fit the single-track fast path (multi-track
accesses, zone-boundary crossers) are computed by calling the exact
scalar ``_service_parts`` at their position in the chain — correctness
never depends on the vector decode covering every shape.

numpy is optional: without it (or for short runs, where array-op
overhead exceeds the win) the same chain runs entirely through the
scalar path, producing identical results.
"""

from __future__ import annotations

import typing

try:  # pragma: no cover - exercised implicitly by the import machinery
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain bakes numpy in
    _np = None

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.disk.disk import DiskIO, MechanicalDisk
    from repro.disk.geometry import DiskGeometry

#: Minimum run length before the numpy decode pays for its call overhead;
#: shorter runs use the scalar chain (identical results either way).
VECTOR_MIN = 8

#: Per-geometry int64 views of the zone tables, keyed by id().  The
#: geometry object itself is pinned in the value so the id stays valid.
_GEOMETRY_ARRAYS: dict[int, tuple] = {}


def _geometry_arrays(geometry: "DiskGeometry") -> tuple:
    key = id(geometry)
    cached = _GEOMETRY_ARRAYS.get(key)
    if cached is None or cached[0] is not geometry:
        cached = (
            geometry,
            _np.asarray(geometry._zone_first_lba, dtype=_np.int64),
            _np.asarray(geometry._zone_first_cyl, dtype=_np.int64),
            _np.asarray([zone.sectors_per_track for zone in geometry.zones], dtype=_np.int64),
        )
        _GEOMETRY_ARRAYS[key] = cached
    return cached


def _vector_decode(disk: "MechanicalDisk", ios: "list[DiskIO]"):
    """Array-op decode of the per-command independent quantities.

    Returns ``(ok, cyl, head, target_fraction, transfer)`` as plain
    Python lists (``tolist()`` converts float64 elements to bit-equal
    Python floats).  ``ok[i]`` is the single-track fast-path condition of
    ``_service_parts``; entries failing it are computed scalar later.
    """
    geometry = disk.geometry
    _geo, zone_first_lba, zone_first_cyl, zone_spt = _geometry_arrays(geometry)
    lba = _np.array([io.lba for io in ios], dtype=_np.int64)
    nsectors = _np.array([io.nsectors for io in ios], dtype=_np.int64)
    index = _np.searchsorted(zone_first_lba, lba, side="right") - 1
    spt = zone_spt[index]
    offset = lba - zone_first_lba[index]
    sectors_per_cylinder = geometry.heads * spt
    cylinder = zone_first_cyl[index] + offset // sectors_per_cylinder
    within = offset % sectors_per_cylinder
    head = within // spt
    sector = within % spt
    # Single-track fast path + in-bounds (DiskIO guarantees lba >= 0 and
    # nsectors >= 1), exactly the guard in _service_parts.
    ok = (spt - sector >= nsectors) & (lba + nsectors <= geometry.total_sectors)
    # int64/int64 and int64*float64 match CPython's int/int and int*float
    # bit for bit while the integers are exact in float64 (they are:
    # sectors-per-track and transfer lengths are tiny).
    sector_period = disk.rotation_period / spt
    target_fraction = sector / spt
    transfer = nsectors * sector_period
    return (
        ok.tolist(),
        cylinder.tolist(),
        head.tolist(),
        target_fraction.tolist(),
        transfer.tolist(),
    )


def batch_service_parts(
    disk: "MechanicalDisk", ios: "list[DiskIO]", start_time: float
) -> list[tuple[float, float, float, int, int, float]]:
    """Timing for ``ios`` issued back to back from the current disk state.

    Returns one ``(seek, rotational_latency, transfer, end_cylinder,
    end_head, total)`` tuple per command, where command ``i + 1`` starts
    at command ``i``'s completion instant — bit-identical to calling
    ``execute`` sequentially.  No disk state is modified: the caller
    applies state and stats progressively as the simulated instants are
    actually reached, so mid-run observers (and mid-run fallback to the
    scalar path) see exactly the sequential world.
    """
    overhead = disk.controller_overhead_s
    rotation_period = disk.rotation_period
    head_switch_s = disk.head_switch_s
    phase = disk.spindle_phase
    seek_table = disk._seek_table
    vec = None
    if _np is not None and len(ios) >= VECTOR_MIN:
        ok, v_cyl, v_head, v_target, v_transfer = _vector_decode(disk, ios)
        vec = True
    orig_cylinder = disk._current_cylinder
    orig_head = disk._current_head
    current_cylinder = orig_cylinder
    current_head = orig_head
    start = start_time
    results = []
    try:
        for i, io in enumerate(ios):
            if vec is not None and ok[i]:
                cylinder = v_cyl[i]
                head = v_head[i]
                distance = cylinder - current_cylinder
                if distance < 0:
                    distance = -distance
                seek = seek_table[distance]
                if seek == 0.0 and head != current_head:
                    seek = head_switch_s
                # Same op order as _service_parts' single-track branch.
                clock = start + overhead + seek
                now_fraction = (clock / rotation_period + phase) % 1.0
                rotational_latency = ((v_target[i] - now_fraction) % 1.0) * rotation_period
                transfer = v_transfer[i]
            else:
                # Exact scalar path at this chain position: _service_parts
                # reads the head position from the disk, so lend it the
                # chain state for the call (restored in the finally).
                disk._current_cylinder = current_cylinder
                disk._current_head = current_head
                seek, rotational_latency, transfer, cylinder, head = disk._service_parts(
                    io.lba, io.nsectors, start
                )
            # Same addition order as execute() / ServiceBreakdown.total.
            total = overhead + seek + rotational_latency + transfer
            results.append((seek, rotational_latency, transfer, cylinder, head, total))
            current_cylinder = cylinder
            current_head = head
            # The next command is issued at this completion's dispatch,
            # whose heap key is exactly now + total.
            start = start + total
    finally:
        disk._current_cylinder = orig_cylinder
        disk._current_head = orig_head
    return results
