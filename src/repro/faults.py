"""Fault injection: disk deaths and marking-memory loss during a run.

These exercise the failure modes §3 analyses:

* a **single disk failure** while stripes are dirty loses exactly one
  stripe unit per dirty stripe (unless the lost unit was parity);
* a **marking-memory failure** forces a conservative whole-array parity
  rebuild (§3.1).

Injectors operate on arrays built with a functional twin
(``with_functional=True``), so losses are measured in actual bytes, not
just predicted by the formulas — letting tests check formula against fact.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.array.controller import DiskArray
from repro.sim import Simulator

if typing.TYPE_CHECKING:  # pragma: no cover - optional observability
    from repro.obs import MetricsRegistry, Tracer


@dataclasses.dataclass(frozen=True)
class DiskFailureReport:
    """What a single injected disk failure cost."""

    disk: int
    at_time: float
    dirty_stripes_at_failure: int
    parity_lag_bytes_at_failure: float
    lost_data_bytes: int

    @property
    def any_loss(self) -> bool:
        return self.lost_data_bytes > 0


class FaultInjector:
    """Schedules failures against one array."""

    def __init__(self, sim: Simulator, array: DiskArray) -> None:
        self.sim = sim
        self.array = array
        self.reports: list[DiskFailureReport] = []
        #: Optional fault-event tracer and metrics registry; both inherit
        #: whatever the array has at construction time, overridable after.
        self.tracer: "Tracer | None" = array.tracer
        self.registry: "MetricsRegistry | None" = array.registry

    def fail_disk_at(self, disk: int, at_time: float) -> None:
        """Kill member ``disk`` at simulated time ``at_time``.

        The mechanical disk starts erroring and, if a functional twin is
        attached, its contents are destroyed; a loss report is recorded.
        """
        if not 0 <= disk < self.array.ndisks:
            raise ValueError(f"disk {disk} out of range")
        if at_time < self.sim.now:
            raise ValueError("cannot schedule a failure in the past")

        def strike(_event) -> None:
            self.array.disks[disk].fail()
            dirty = self.array.dirty_stripe_count
            lag = self.array.parity_lag_bytes
            lost = 0
            if self.array.functional is not None:
                lost = self.array.functional.lost_data_bytes(disk)
                self.array.functional.fail_disk(disk)
            self.reports.append(
                DiskFailureReport(
                    disk=disk,
                    at_time=self.sim.now,
                    dirty_stripes_at_failure=dirty,
                    parity_lag_bytes_at_failure=lag,
                    lost_data_bytes=lost,
                )
            )
            if self.tracer is not None:
                self.tracer.instant(
                    "disk_failure", track="faults", category="fault",
                    disk=disk, dirty=dirty, lag_bytes=lag, lost_bytes=lost,
                )
            if self.registry is not None:
                self.registry.counter(
                    "disk_failures_total", "injected member-disk failures"
                ).inc()

        self.sim.timeout(at_time - self.sim.now, name=f"fail.d{disk}").add_callback(strike)

    def fail_mark_memory_at(self, at_time: float, auto_recover: bool = True) -> None:
        """Lose the NVRAM marks at ``at_time``.

        With ``auto_recover`` the array immediately starts the §3.1
        recovery: mark everything, rebuild parity array-wide.
        """
        if at_time < self.sim.now:
            raise ValueError("cannot schedule a failure in the past")

        def strike(_event) -> None:
            self.array.marks.fail()
            if self.tracer is not None:
                self.tracer.instant(
                    "nvram_failure", track="faults", category="fault",
                    auto_recover=auto_recover,
                )
            if self.registry is not None:
                self.registry.counter(
                    "nvram_failures_total", "injected marking-memory failures"
                ).inc()
            if auto_recover:
                self.array.recover_mark_memory()

        self.sim.timeout(at_time - self.sim.now, name="fail.nvram").add_callback(strike)


def predicted_loss_bytes(array: DiskArray, failed_disk: int) -> int:
    """Eq.-(4)-style prediction of loss for a failure of ``failed_disk`` now.

    One stripe unit per dirty stripe whose parity does *not* live on the
    failed disk.  Compare with :class:`DiskFailureReport.lost_data_bytes`
    (the functional twin's ground truth).
    """
    layout = array.layout
    return array.unit_bytes * sum(
        1
        for stripe in array.marks.marked_stripes
        if layout.parity_disk(stripe) != failed_disk
    )
