"""Setup shim.

The normal route is ``pip install -e .``, but this environment has no
network and no ``wheel`` package, so PEP 660 editable builds fail.
``python setup.py develop`` (driven by the metadata in pyproject.toml)
works offline and is what the test/bench instructions use here.
"""

from setuptools import setup

setup()
