#!/usr/bin/env python3
"""Failure injection: what a disk death actually costs under each model.

Runs a write burst against AFRAID and RAID 5 arrays carrying *real data*
(the functional twin), kills a disk at the worst possible moment — right
after the burst, before any idle time — and reports exactly which bytes
were lost, checking the measurement against the paper's §3.2 loss model.
Also demonstrates the NVRAM marking-memory failure path: the array marks
everything and rebuilds parity across all stripes.
"""

from repro.array import ArrayRequest, toy_array
from repro.blocks import DataLostError
from repro.disk import IoKind
from repro.faults import FaultInjector, predicted_loss_bytes
from repro.policy import AlwaysRaid5Policy, BaselineAfraidPolicy
from repro.sim import AllOf, Simulator


def payload(array, nsectors, seed):
    return bytes((seed * 71 + i) % 256 for i in range(nsectors * array.sector_bytes))


def burst_then_kill(policy, idle_threshold_s, kill_delay_s, label):
    sim = Simulator()
    array = toy_array(sim, policy=policy, idle_threshold_s=idle_threshold_s)
    injector = FaultInjector(sim, array)

    # A burst of writes across several stripes, each carrying real bytes.
    stride = array.layout.stripe_data_sectors
    events = []
    for stripe in range(6):
        data = payload(array, 4, seed=stripe)
        events.append(
            array.submit(ArrayRequest(IoKind.WRITE, stripe * stride, 4, data=data))
        )
    sim.run_until_triggered(AllOf(sim, events))

    predicted = predicted_loss_bytes(array, failed_disk=0)
    injector.fail_disk_at(disk=0, at_time=sim.now + kill_delay_s)
    sim.run(until=sim.now + kill_delay_s + 1.0)
    report = injector.reports[0]

    print(f"\n{label}:")
    print(f"  dirty stripes when disk 0 died: {report.dirty_stripes_at_failure}")
    print(f"  predicted loss (sec. 3.2 model): {predicted} bytes")
    print(f"  actual loss (functional twin):   {report.lost_data_bytes} bytes")

    # Show which reads survive: clean stripes reconstruct through parity.
    recovered = lost = 0
    for stripe in range(6):
        try:
            array.functional.read(stripe * stride, 4)
            recovered += 1
        except DataLostError:
            lost += 1
    print(f"  readable after failure: {recovered}/6 bursts ({lost} unrecoverable)")
    return report


def nvram_failure_demo():
    print("\n=== NVRAM marking-memory failure (paper section 3.1) ===")
    sim = Simulator()
    array = toy_array(sim, ndisks=3, stripe_unit_sectors=4, with_functional=False)
    injector = FaultInjector(sim, array)
    injector.fail_mark_memory_at(at_time=0.5)
    sim.run(until=0.5 + 1e-6)
    print(f"  marks lost: array conservatively marks all {array.dirty_stripe_count} stripes")
    sim.run(until=180.0)
    print(f"  after background rebuild: {array.dirty_stripe_count} dirty stripes, "
          f"{array.stats.stripes_scrubbed} scrubbed")


def main():
    print("=== Single disk failure immediately after a write burst ===")
    burst_then_kill(
        AlwaysRaid5Policy(), idle_threshold_s=0.1, kill_delay_s=0.01,
        label="RAID 5 (parity always fresh: nothing to lose)",
    )
    burst_then_kill(
        BaselineAfraidPolicy(), idle_threshold_s=1e9, kill_delay_s=0.01,
        label="AFRAID, failure wins the race (scrubber never ran)",
    )
    burst_then_kill(
        BaselineAfraidPolicy(), idle_threshold_s=0.05, kill_delay_s=5.0,
        label="AFRAID, idle time first (scrubber wins the race)",
    )
    nvram_failure_demo()
    print("\nThe exposure is real but bounded — one stripe unit per dirty stripe —")
    print("and it exists only in the window between a write burst and the next idle period.")


if __name__ == "__main__":
    main()
